//! Per-(vantage, resolver) probe context: everything about a pair that is
//! constant across its whole probe series, computed once per campaign and
//! borrowed by every probe and retry attempt.
//!
//! The reference probe path ([`Prober::probe_with_faults`]) rebuilds, per
//! probe: the routed path, the fault target, the DNS query message and its
//! wire image, the DoH URL (base64url of the query), the HTTP/2 request
//! frames (HPACK on a fresh connection), the server's response message and
//! its wire image, and the HTTP response frames. None of that work draws
//! from the RNG, and on a fresh-connection-per-probe tool every one of
//! those byte strings is a pure function of pair-constant inputs — so all
//! of it hoists into a [`PairContext`]:
//!
//! * **Path constants** — the routed site and [`Path`] (home-extra peering
//!   penalty already applied), and the [`FaultTarget`] borrowed from
//!   `'static` catalog strings.
//! * **Fault scope mask** — the indices of the plan events whose scope
//!   matches this pair ([`FaultPlan::scope_mask`]); each attempt resolves
//!   faults via [`FaultPlan::effects_at_masked`], skipping the (typically
//!   large) majority of events aimed at other pairs.
//! * **Wire templates** — per domain, the query [`Message`] + wire and the
//!   DoH request wire lengths ([`DomainTemplate`]); per observed response
//!   shape, the response wire and its per-HTTP-status framing lengths
//!   ([`ResponseVariant`], discovered lazily as the resolver's health
//!   produces them).
//! * **An [`Arena`]** — pooled buffers for the remaining (cold-path) wire
//!   assembly, reset between probes, so the steady state of `run_pair`
//!   performs no per-probe heap allocation.
//!
//! Determinism: hoisting is restricted to RNG-free computations, so the
//! context path consumes the RNG stream identically to the reference path
//! and produces byte-identical records — property-tested across seeds,
//! fault plans and retry policies in `tests/arena_differential.rs`, and
//! pinned by the golden fixtures.

use bytes::Bytes;
use catalog::ResolverEntry;
use detlint_macros::deny_alloc;
use dns_wire::{base64url, Message, MessageBuilder, Name, RData, Rcode};
use netsim::faults::{FaultPlan, FaultTarget};
use netsim::{Arena, Host, Path, SimDuration};
use transport::{doh_headers, H2Connection, H2Request};

use crate::probe::{encode_cost, ProbeConfig, ProbeTarget, Prober};
use crate::results::Protocol;
use crate::vantage::Vantage;

/// Pair-constant state for one (vantage, resolver) probe series.
#[derive(Debug)]
pub(crate) struct PairContext {
    /// The vantage's simulated host (id 0, as the reference path builds).
    pub(crate) client: Host,
    /// The site this vantage routes to (constant: routing is RNG-free).
    pub(crate) site: usize,
    /// The routed path with the residential peering penalty already
    /// applied when the vantage is a home network.
    pub(crate) path: Path,
    /// Fault-plan identity, borrowed from `'static` catalog strings.
    pub(crate) ftarget: FaultTarget<'static>,
    /// Original indices of the plan events whose scope matches this pair.
    pub(crate) scope_mask: Vec<u32>,
    /// One wire template per campaign domain, in campaign domain order.
    pub(crate) domains: Vec<DomainTemplate>,
    /// Pooled buffers for cold-path wire assembly; reset between probes.
    pub(crate) arena: Arena,
}

impl PairContext {
    /// Builds the context for one pair. Everything here is RNG-free.
    pub(crate) fn build<'a>(
        prober: &Prober,
        vantage: &Vantage,
        target: &ProbeTarget,
        cfg: ProbeConfig,
        faults: &FaultPlan,
        domains: impl IntoIterator<Item = &'a Name>,
    ) -> Self {
        let client = vantage.host(0);
        let (site, mut path) = target.instance.route(&client);
        if vantage.is_home() {
            path.extra_latency_ms += target.entry.home_extra_ms;
        }
        let ftarget = FaultTarget {
            resolver: target.entry.hostname,
            region: target.entry.region(),
            vantage: vantage.label,
        };
        let scope_mask = faults.scope_mask(&ftarget);
        let mut arena = Arena::new();
        let domains = domains
            .into_iter()
            .map(|name| DomainTemplate::build(prober, &target.entry, name, cfg, &mut arena))
            .collect();
        PairContext {
            client,
            site,
            path,
            ftarget,
            scope_mask,
            domains,
            arena,
        }
    }
}

/// Pair-constant wire templates for one queried domain.
#[derive(Debug)]
pub(crate) struct DomainTemplate {
    /// The parsed domain (owned so the template is self-contained).
    pub(crate) name: Name,
    /// The query message the reference path would build per probe.
    pub(crate) query: Message,
    /// Its wire image (drives request sizes on non-HTTP transports).
    pub(crate) query_wire: Vec<u8>,
    /// Client-side codec cost of encoding `query_wire` (deterministic).
    pub(crate) dns_encode: SimDuration,
    /// DoH request template; `None` on other protocols.
    pub(crate) doh: Option<DohTemplate>,
    /// Response shapes observed so far, discovered lazily.
    pub(crate) variants: Vec<ResponseVariant>,
}

impl DomainTemplate {
    fn build(
        prober: &Prober,
        entry: &ResolverEntry,
        name: &Name,
        cfg: ProbeConfig,
        arena: &mut Arena,
    ) -> Self {
        let encrypted = cfg.protocol != Protocol::Do53;
        let query = prober.build_query(name, cfg, encrypted);
        // detlint:allow(unwrap, queries built by build_query are well-formed; encoding cannot fail)
        let query_wire = query.encode_into(arena.alloc()).expect("query encodes");
        let dns_encode = encode_cost(query_wire.len());
        let doh =
            (cfg.protocol == Protocol::DoH).then(|| DohTemplate::build(entry, &query_wire, cfg));
        DomainTemplate {
            name: name.clone(),
            query,
            query_wire,
            dns_encode,
            doh,
            variants: Vec::new(),
        }
    }

    /// Looks up the cached response variant for a served result. The hot
    /// lookup: in steady state every probe lands here and allocates
    /// nothing.
    #[deny_alloc]
    pub(crate) fn find_variant(
        &self,
        shed: bool,
        rcode: Rcode,
        records: &[RData],
    ) -> Option<usize> {
        self.variants
            .iter()
            .position(|v| v.shed == shed && v.rcode == rcode && (shed || v.records == records))
    }

    /// Builds and caches a response variant (cold path: runs once per
    /// distinct response shape per pair). Mirrors the reference `serve`
    /// byte-for-byte: same builder, same answer records, same encoder.
    pub(crate) fn add_variant(
        &mut self,
        shed: bool,
        rcode: Rcode,
        records: Vec<RData>,
        arena: &mut Arena,
    ) -> usize {
        let mut response = MessageBuilder::response_to(&self.query, rcode)
            .recursion_available(true)
            .build();
        if !shed {
            for rdata in &records {
                response.answers.push(dns_wire::ResourceRecord::new(
                    self.name.clone(),
                    300,
                    rdata.clone(),
                ));
            }
        }
        let wire = response
            .encode_into(arena.alloc())
            // detlint:allow(unwrap, responses assembled by the simulated resolver are well-formed)
            .expect("response encodes");
        let decoded_rcode = Message::decode(&wire).ok().map(|m| m.rcode());
        self.variants.push(ResponseVariant {
            shed,
            rcode,
            records: if shed { Vec::new() } else { records },
            dns_response: wire,
            decoded_rcode,
            status_lens: Vec::new(),
        });
        self.variants.len() - 1
    }

    /// The on-wire length of the HTTP response carrying `variant` with
    /// `status`, computed once per (variant, status) and cached.
    pub(crate) fn resp_len_for(&mut self, variant: usize, status: u16) -> usize {
        if let Some(len) = self.variants[variant].cached_status_len(status) {
            return len;
        }
        // detlint:allow(unwrap, resp_len_for is only reached on the DoH path, which builds the template)
        let doh = self.doh.as_ref().expect("DoH template");
        let v = &mut self.variants[variant];
        let content_type = transport::HeaderField::new("content-type", "application/dns-message");
        let len = if doh.http1 {
            transport::h1_encode_response(
                status,
                std::slice::from_ref(&content_type),
                &v.dns_response,
            )
            .len()
        } else {
            H2Connection::encode_response_fresh(
                doh.stream_id,
                status,
                std::slice::from_ref(&content_type),
                &v.dns_response,
            )
            .len()
        };
        v.status_lens.push((status, len));
        len
    }
}

/// The pair-constant DoH request template. Only lengths survive: the
/// simulated transport moves byte *counts*, and both request and response
/// wires are pure functions of pair-constant inputs on a fresh connection.
#[derive(Debug)]
pub(crate) struct DohTemplate {
    /// Stream id of the first request on a fresh HTTP/2 connection.
    pub(crate) stream_id: u32,
    /// Encoded request length (HTTP/1.1 when `http1`, else HTTP/2 with
    /// connection preface, exactly as the reference path sends it).
    pub(crate) req_len: usize,
    /// Encoded request length for a follow-up request on a kept-alive
    /// connection: no connection preface, and HPACK dynamic-table hits
    /// shrink the header block. Equal to `req_len` on HTTP/1.1, whose
    /// requests are stateless. The HTTP/2 frame header carries the stream
    /// id in a fixed-width field, so the *response* length is independent
    /// of the stream id and `resp_len_for` serves both cold and reused
    /// exchanges.
    pub(crate) req_len_reused: usize,
    /// The resolver only speaks HTTP/1.1 (no h2 in its ALPN).
    pub(crate) http1: bool,
}

impl DohTemplate {
    fn build(entry: &ResolverEntry, query_wire: &[u8], cfg: ProbeConfig) -> Self {
        let (http_path, body) = if cfg.doh_get {
            (
                format!("{}?dns={}", entry.doh_path, base64url::encode(query_wire)),
                Bytes::new(),
            )
        } else {
            (entry.doh_path.to_string(), Bytes::from(query_wire.to_vec()))
        };
        let req = H2Request {
            headers: doh_headers(entry.hostname, &http_path, !cfg.doh_get, body.len()),
            body,
        };
        let mut conn = H2Connection::new();
        let (stream_id, h2_wire) = conn.encode_request(&req);
        // The same request re-encoded on the warm connection: stream id 3,
        // stateful HPACK, no preface. RNG-free, so safe to hoist.
        let (_, h2_wire_reused) = conn.encode_request(&req);
        let (req_len, req_len_reused) = if entry.http1_only {
            let len = transport::h1_encode_request(&req.headers, &req.body).len();
            (len, len)
        } else {
            (h2_wire.len(), h2_wire_reused.len())
        };
        DohTemplate {
            stream_id,
            req_len,
            req_len_reused,
            http1: entry.http1_only,
        }
    }
}

/// One response shape: the served (shed, rcode, answer set) triple and the
/// wire images derived from it.
#[derive(Debug)]
pub(crate) struct ResponseVariant {
    /// The frontend shed this query (SERVFAIL with no answers).
    shed: bool,
    /// Response code the server put on the wire.
    pub(crate) rcode: Rcode,
    /// Answer records (empty when shed; the key ignores them then).
    records: Vec<RData>,
    /// The encoded DNS response message.
    pub(crate) dns_response: Vec<u8>,
    /// Memoized client-side decode of `dns_response`: `None` means the
    /// decode failed (the reference path's per-probe `Message::decode`).
    pub(crate) decoded_rcode: Option<Rcode>,
    /// Cached HTTP framing lengths per status code.
    status_lens: Vec<(u16, usize)>,
}

impl ResponseVariant {
    /// Cached HTTP response length for `status`, if already computed. The
    /// hot lookup: a handful of statuses per variant, scanned linearly.
    #[deny_alloc]
    fn cached_status_len(&self, status: u16) -> Option<usize> {
        self.status_lens
            .iter()
            .find(|(s, _)| *s == status)
            .map(|(_, len)| *len)
    }
}
