//! The probe engine: one `dig`-style measurement of one resolver from one
//! vantage point — exactly the paper's §3.2 procedure:
//!
//! 1. perform a DNS query over the encrypted transport, measuring the
//!    end-to-end response time (fresh connection, as `dig` does);
//! 2. issue an ICMP echo probe and record the round-trip latency.
//!
//! Besides DoH (the paper's focus) the engine speaks Do53, DoT and DoQ —
//! "our tool enables researchers to issue traditional DNS, DoT, and DoH
//! queries".

use bytes::Bytes;
use catalog::ResolverEntry;
use dns_wire::{base64url, Message, MessageBuilder, Name, Rcode, RecordType};
use netsim::faults::{FaultEffects, FaultPlan, FaultTarget};
use netsim::{icmp, Arena, Host, Path, SimDuration, SimRng, SimTime};
use obs::{Nanos, Phase, SpanLog};
use resolver_sim::{AuthorityTree, ProbeHealth, ResolverInstance};
use transport::{
    doh_headers, FaultHooks, H2Connection, H2Request, HeaderField, QuicConfig, QuicConnection,
    SessionTicket, TcpConfig, TcpConnection, TlsConfig, TlsServerBehavior, TlsSession,
    TransportErrorKind,
};

use crate::context::{DomainTemplate, PairContext};
use crate::errors::ProbeErrorKind;
use crate::population::{LoadModel, PairLoad};
use crate::results::{ConnectionMode, ProbeOutcome, ProbeTimings, Protocol};
use crate::retry::{RetryInfo, RetryPolicy};
use crate::session::{SessionConfig, SessionState};

/// Deterministic client-side cost of building and encoding a DNS query:
/// a fixed setup term plus a per-byte term. Microsecond-scale, so it shows
/// up in the phase breakdown without moving the calibrated response-time
/// distributions; crucially it draws nothing from the RNG, so enabling the
/// phase accounting cannot perturb a seeded run.
pub(crate) fn encode_cost(wire_len: usize) -> SimDuration {
    SimDuration::from_nanos(2_000 + 25 * wire_len as u64)
}

/// Deterministic client-side cost of decoding and validating a DNS
/// response. Slightly above the encode cost: parsing walks unknown input.
fn decode_cost(wire_len: usize) -> SimDuration {
    SimDuration::from_nanos(3_000 + 35 * wire_len as u64)
}

/// Records a codec phase as a span and returns the advanced clock.
fn record_codec_span(log: &mut SpanLog, t0: Nanos, phase: Phase, cost: SimDuration) -> Nanos {
    log.enter(t0, phase.name());
    let t = t0 + cost.as_nanos();
    log.exit(t, phase.name());
    t
}

/// How a probe starts its transport. Non-session campaigns always start
/// [`WarmStart::Cold`]; a live session layer maps the pair's
/// [`ConnectionMode`] decision onto a warm start.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WarmStart {
    /// Fresh connection, full handshake — the legacy fresh-`dig` path.
    Cold,
    /// Fresh transport connect plus an abbreviated handshake: TLS 1.3
    /// ticket resumption on TCP transports, 0-RTT on QUIC.
    Resumed { ticket: SessionTicket },
    /// Connection pulled from the keepalive pool: no connect, no
    /// handshake; the TCP RTT estimator is re-seeded from the pooled hint.
    Reused {
        ticket: SessionTicket,
        srtt_hint: SimDuration,
    },
}

impl WarmStart {
    fn is_reused(self) -> bool {
        matches!(self, WarmStart::Reused { .. })
    }

    /// TCP + TLS establishment for the TCP-carried transports (DoH, DoT):
    /// cold pays the full handshake pair; resumed pays the TCP handshake
    /// plus the ticket-abbreviated TLS flight; reused touches the wire not
    /// at all (the pooled connection is reconstructed from metadata).
    /// Advances `t` past whatever was paid. When `self` is `Cold` this is
    /// call-for-call identical to the legacy connect + handshake sequence.
    fn tcp_tls_setup(
        self,
        path: &Path,
        hooks: FaultHooks,
        rng: &mut SimRng,
        t: &mut Nanos,
        log: &mut SpanLog,
    ) -> Result<(TcpConnection, SimDuration, SimDuration), ProbeOutcome> {
        let ticket = match self {
            WarmStart::Cold => None,
            WarmStart::Resumed { ticket } => Some(ticket),
            WarmStart::Reused { srtt_hint, .. } => {
                return Ok((
                    TcpConnection::resumed(TcpConfig::default(), srtt_hint),
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                ))
            }
        };
        let (mut tcp, connect) = match TcpConnection::connect_traced(
            path,
            hooks.refuse_connect,
            rng,
            TcpConfig::default(),
            *t,
            log,
        ) {
            Ok(ok) => ok,
            Err(e) => {
                return Err(ProbeOutcome::Failure {
                    kind: e.into(),
                    elapsed: e.elapsed,
                })
            }
        };
        *t += connect.as_nanos();
        let tls = match TlsSession::handshake_traced(
            &mut tcp,
            path,
            TlsConfig::default(),
            hooks.tls_behavior,
            ticket,
            rng,
            *t,
            log,
        ) {
            Ok(s) => s,
            Err(e) => {
                return Err(ProbeOutcome::Failure {
                    kind: e.into(),
                    elapsed: connect + e.elapsed,
                })
            }
        };
        *t += tls.handshake_time.as_nanos();
        Ok((tcp, connect, tls.handshake_time))
    }

    /// QUIC establishment: cold pays the combined handshake; resumed sends
    /// 0-RTT (no handshake flight, no RNG draws — the first stream flight
    /// is amplification-padded by the connection); reused rides an open
    /// pooled connection, which behaves like 0-RTT minus the padding.
    fn quic_setup(
        self,
        path: &Path,
        rng: &mut SimRng,
        t: &mut Nanos,
        log: &mut SpanLog,
    ) -> Result<(QuicConnection, SimDuration), ProbeOutcome> {
        match self {
            WarmStart::Cold => {
                match QuicConnection::connect_traced(path, QuicConfig::default(), rng, *t, log) {
                    Ok((quic, connect)) => {
                        *t += connect.as_nanos();
                        Ok((quic, connect))
                    }
                    Err(e) => Err(ProbeOutcome::Failure {
                        kind: e.into(),
                        elapsed: e.elapsed,
                    }),
                }
            }
            WarmStart::Resumed { ticket } => Ok((
                QuicConnection::resume_zero_rtt(path, QuicConfig::default(), ticket),
                SimDuration::ZERO,
            )),
            WarmStart::Reused { ticket, .. } => {
                let mut quic = QuicConnection::resume_zero_rtt(path, QuicConfig::default(), ticket);
                quic.zero_rtt = false;
                Ok((quic, SimDuration::ZERO))
            }
        }
    }
}

/// A resolver as seen by the prober: catalog metadata plus live simulated
/// state.
#[derive(Debug)]
pub struct ProbeTarget {
    /// Catalog metadata.
    pub entry: ResolverEntry,
    /// Simulated deployment (owns per-site caches and engines).
    pub instance: ResolverInstance,
}

impl ProbeTarget {
    /// Instantiates a target from a catalog entry.
    pub fn from_entry(entry: ResolverEntry) -> Self {
        let instance = entry.instantiate();
        ProbeTarget { entry, instance }
    }
}

/// Probe-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// Protocol to measure.
    pub protocol: Protocol,
    /// ICMP echo timeout.
    pub ping_timeout: SimDuration,
    /// Use DoH GET (RFC 8484 §4.1) rather than POST.
    pub doh_get: bool,
    /// Pad queries to 128 octets (RFC 8467) on encrypted transports.
    pub padding: bool,
    /// Client retry schedule. [`RetryPolicy::none`] (the default) keeps
    /// the probe single-attempt and its output byte-identical to the
    /// pre-retry tool.
    pub retry: RetryPolicy,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            protocol: Protocol::DoH,
            ping_timeout: SimDuration::from_secs(1),
            doh_get: true,
            padding: true,
            retry: RetryPolicy::none(),
        }
    }
}

/// The probe engine. Holds the authoritative hierarchy all resolvers
/// recurse against.
#[derive(Debug)]
pub struct Prober {
    authorities: AuthorityTree,
}

impl Default for Prober {
    fn default() -> Self {
        Self::new()
    }
}

impl Prober {
    /// Creates a prober with the standard authority tree.
    pub fn new() -> Self {
        Prober {
            authorities: AuthorityTree::standard(),
        }
    }

    /// Creates a prober resolving against a custom authority tree (e.g.
    /// zones loaded from files via [`resolver_sim::zonefile`]).
    pub fn with_authorities(authorities: AuthorityTree) -> Self {
        Prober { authorities }
    }

    /// Runs one measurement: the DNS probe plus the paired ICMP ping.
    ///
    /// `is_home` marks residential vantage points, which some resolvers
    /// serve over worse peering (the catalog's `home_extra_ms`).
    #[allow(clippy::too_many_arguments)]
    pub fn probe(
        &self,
        client: &Host,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        is_home: bool,
        cfg: ProbeConfig,
        rng: &mut SimRng,
    ) -> (ProbeOutcome, Option<SimDuration>) {
        // A disabled log allocates nothing and costs one branch per
        // recording site, so the untraced path stays the hot path.
        let mut log = SpanLog::disabled();
        self.probe_traced(client, target, domain, now, is_home, cfg, rng, &mut log)
    }

    /// [`probe`](Self::probe) with span tracing: every phase of the probe
    /// is recorded into `log` as a span in simulated time. Tracing never
    /// touches the RNG, so a traced run produces bit-identical outcomes to
    /// an untraced one under the same seed.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_traced(
        &self,
        client: &Host,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        is_home: bool,
        cfg: ProbeConfig,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> (ProbeOutcome, Option<SimDuration>) {
        let (outcome, ping, _) = self.probe_with_faults_traced(
            client,
            target,
            domain,
            now,
            is_home,
            cfg,
            &FaultPlan::EMPTY,
            rng,
            log,
        );
        (outcome, ping)
    }

    /// One measurement under a fault plan, with per-attempt retry
    /// accounting. This is the full probe engine; [`probe`](Self::probe)
    /// is this with the empty plan.
    ///
    /// Each attempt re-resolves the plan at the attempt's start time and
    /// re-samples the resolver's health, so a transient window can end
    /// between attempts — that is exactly the recovery the paper's `dig`
    /// retries provide. The returned [`RetryInfo`] is `Some` iff the
    /// configured policy is [enabled](RetryPolicy::enabled).
    #[allow(clippy::too_many_arguments)]
    pub fn probe_with_faults(
        &self,
        client: &Host,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        is_home: bool,
        cfg: ProbeConfig,
        faults: &FaultPlan,
        rng: &mut SimRng,
    ) -> (ProbeOutcome, Option<SimDuration>, Option<RetryInfo>) {
        let mut log = SpanLog::disabled();
        self.probe_with_faults_traced(
            client, target, domain, now, is_home, cfg, faults, rng, &mut log,
        )
    }

    /// [`probe_with_faults`](Self::probe_with_faults) with span tracing.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_with_faults_traced(
        &self,
        client: &Host,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        is_home: bool,
        cfg: ProbeConfig,
        faults: &FaultPlan,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> (ProbeOutcome, Option<SimDuration>, Option<RetryInfo>) {
        let (site, mut path) = target.instance.route(client);
        if is_home {
            path.extra_latency_ms += target.entry.home_extra_ms;
        }

        // Paired ICMP probe (§3.1 "Latency"). Pings travel the base path:
        // like the paper's tooling, the ICMP companion is a reachability
        // signal, not a fault-injection subject.
        let ping = icmp::ping(&path, target.instance.icmp, cfg.ping_timeout, rng).rtt();
        match ping {
            Some(rtt) => log.instant(now.as_nanos() + rtt.as_nanos(), "icmp_echo_reply"),
            None => log.instant(now.as_nanos(), "icmp_filtered"),
        }

        let ftarget = FaultTarget {
            resolver: target.entry.hostname,
            region: target.entry.region(),
            vantage: &client.label,
        };
        let (outcome, info) = Self::run_attempts(cfg.retry, now, rng, |attempt_now, rng| {
            let effects = faults.effects_at(attempt_now, &ftarget);
            let health = Self::effective_health(target, attempt_now, &effects, rng);
            self.dns_probe(
                WarmStart::Cold,
                client,
                target,
                domain,
                attempt_now,
                site,
                &path,
                health,
                &effects,
                cfg,
                rng,
                log,
            )
        });
        (outcome, ping, info)
    }

    /// Samples the resolver's health for one attempt and applies the
    /// plan-driven overrides: an injected site outage blackholes the
    /// service outright; an expired certificate surfaces unless the
    /// service is unreachable anyway.
    fn effective_health(
        target: &ProbeTarget,
        attempt_now: SimTime,
        effects: &FaultEffects,
        rng: &mut SimRng,
    ) -> ProbeHealth {
        let mut health = target.instance.sample_health_at(attempt_now, rng);
        if effects.site_outage {
            health = ProbeHealth::Blackholed;
        } else if effects.bad_certificate && health != ProbeHealth::Blackholed {
            health = ProbeHealth::BadCertificate;
        }
        health
    }

    /// The per-probe retry driver shared by the reference and context
    /// paths: runs `attempt` under `policy`, accumulating elapsed time and
    /// backoff waits so later attempts see later fault-plan windows.
    fn run_attempts(
        policy: RetryPolicy,
        now: SimTime,
        rng: &mut SimRng,
        mut attempt: impl FnMut(SimTime, &mut SimRng) -> ProbeOutcome,
    ) -> (ProbeOutcome, Option<RetryInfo>) {
        let mut attempts = 0u32;
        let mut attempt_errors: Vec<ProbeErrorKind> = Vec::new();
        // Simulated time since probe start: failed attempts and backoff
        // waits accumulate here, so retries see later plan windows.
        let mut offset = SimDuration::ZERO;
        let mut prev_backoff = SimDuration::ZERO;

        loop {
            attempts += 1;
            let attempt_now = now + offset;
            let outcome = attempt(attempt_now, rng);

            // Apply the per-attempt timeout: a "successful" exchange that
            // outlives the client's patience is a timeout from the
            // client's point of view, exactly as with `dig`.
            let attempt_result = match outcome {
                ProbeOutcome::Success { timings, .. }
                    if policy
                        .attempt_timeout
                        .is_some_and(|to| timings.total() > to) =>
                {
                    Err((
                        ProbeErrorKind::QueryTimeout,
                        // detlint:allow(unwrap, the match guard checked attempt_timeout is Some)
                        policy.attempt_timeout.expect("guard checked"),
                    ))
                }
                ProbeOutcome::Success {
                    timings,
                    cache_hit,
                    site,
                } => Ok((timings, cache_hit, site)),
                ProbeOutcome::Failure { kind, elapsed } => {
                    let spent = match policy.attempt_timeout {
                        Some(to) => elapsed.min(to),
                        None => elapsed,
                    };
                    Err((kind, spent))
                }
            };

            match attempt_result {
                Ok((timings, cache_hit, site)) => {
                    let ttlb = offset + timings.total();
                    let info = RetryInfo {
                        attempts,
                        attempt_errors,
                        ttfb: ttlb.saturating_sub(timings.dns_decode),
                        ttlb,
                    };
                    return (
                        ProbeOutcome::Success {
                            timings,
                            cache_hit,
                            site,
                        },
                        policy.enabled().then_some(info),
                    );
                }
                Err((kind, spent)) => {
                    attempt_errors.push(kind);
                    if attempts >= policy.tries {
                        let elapsed = offset + spent;
                        let info = RetryInfo {
                            attempts,
                            attempt_errors,
                            ttfb: elapsed,
                            ttlb: elapsed,
                        };
                        return (
                            ProbeOutcome::Failure { kind, elapsed },
                            policy.enabled().then_some(info),
                        );
                    }
                    // Burned attempt plus the (possibly jittered) wait.
                    prev_backoff = policy.backoff_after(attempts, prev_backoff, rng);
                    offset = offset + spent + prev_backoff;
                }
            }
        }
    }

    /// [`probe_with_faults`](Self::probe_with_faults) over a prebuilt
    /// [`PairContext`] — the campaign fast path. Behaviour and RNG
    /// consumption are byte-identical to the reference path: every hoisted
    /// quantity is RNG-free and every cached wire is a pure function of
    /// pair-constant inputs (fresh connection per probe). Pinned by the
    /// `arena_differential` proptest and the golden fixtures.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_pair(
        &self,
        ctx: &mut PairContext,
        target: &mut ProbeTarget,
        domain_idx: usize,
        now: SimTime,
        cfg: ProbeConfig,
        faults: &FaultPlan,
        rng: &mut SimRng,
    ) -> (ProbeOutcome, Option<SimDuration>, Option<RetryInfo>) {
        let mut log = SpanLog::disabled();
        let PairContext {
            client,
            site,
            path,
            ftarget,
            scope_mask,
            domains,
            arena,
        } = ctx;
        let site = *site;
        let tmpl = &mut domains[domain_idx];

        let ping = icmp::ping(path, target.instance.icmp, cfg.ping_timeout, rng).rtt();
        match ping {
            Some(rtt) => log.instant(now.as_nanos() + rtt.as_nanos(), "icmp_echo_reply"),
            None => log.instant(now.as_nanos(), "icmp_filtered"),
        }

        let (outcome, info) = Self::run_attempts(cfg.retry, now, rng, |attempt_now, rng| {
            let effects = faults.effects_at_masked(attempt_now, ftarget, scope_mask);
            let health = Self::effective_health(target, attempt_now, &effects, rng);
            self.dns_probe_ctx(
                WarmStart::Cold,
                client,
                target,
                tmpl,
                attempt_now,
                site,
                path,
                health,
                &effects,
                cfg,
                arena,
                rng,
                &mut log,
            )
        });
        (outcome, ping, info)
    }

    /// [`probe_pair`](Self::probe_pair) under a client-population load
    /// model: each attempt resolves its serving site through the
    /// [`PairLoad`]'s load-sensitive selection (an overloaded nearest site
    /// spills the vantage to the next-nearest), overlays the site's
    /// offered-load rate onto the fault effects (queueing delay via the
    /// frontend's `QueueModel`) and makes the hash-based shed decision —
    /// a shed attempt rides the existing rate-limit machinery, so it
    /// surfaces as HTTP 429 on DoH and SERVFAIL on bare transports. All
    /// load inputs are pure functions of `(model, pair, attempt time)`:
    /// the probe RNG stream is consumed exactly as on the unloaded path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_pair_loaded(
        &self,
        ctx: &mut PairContext,
        pair_load: &mut PairLoad,
        model: &LoadModel,
        target: &mut ProbeTarget,
        domain_idx: usize,
        now: SimTime,
        cfg: ProbeConfig,
        faults: &FaultPlan,
        rng: &mut SimRng,
    ) -> (ProbeOutcome, Option<SimDuration>, Option<RetryInfo>) {
        let mut log = SpanLog::disabled();
        let PairContext {
            client,
            ftarget,
            scope_mask,
            domains,
            arena,
            ..
        } = ctx;
        let tmpl = &mut domains[domain_idx];

        let first = pair_load.pick(model, ftarget, now);
        let ping = icmp::ping(
            pair_load.path(first.site),
            target.instance.icmp,
            cfg.ping_timeout,
            rng,
        )
        .rtt();
        match ping {
            Some(rtt) => log.instant(now.as_nanos() + rtt.as_nanos(), "icmp_echo_reply"),
            None => log.instant(now.as_nanos(), "icmp_filtered"),
        }

        let (outcome, info) = Self::run_attempts(cfg.retry, now, rng, |attempt_now, rng| {
            let mut effects = faults.effects_at_masked(attempt_now, ftarget, scope_mask);
            let pick = pair_load.pick(model, ftarget, attempt_now);
            effects.offered_load_qps = pick.offered_qps;
            if pick.shed {
                effects.rate_limited = true;
            }
            let health = Self::effective_health(target, attempt_now, &effects, rng);
            let path = pair_load.path(pick.site).clone();
            self.dns_probe_ctx(
                WarmStart::Cold,
                client,
                target,
                tmpl,
                attempt_now,
                pick.site,
                &path,
                health,
                &effects,
                cfg,
                arena,
                rng,
                &mut log,
            )
        });
        (outcome, ping, info)
    }

    /// True when the sampled health and fault effects would let a client
    /// establish (or keep) a transport connection. Any connection-layer
    /// fault — blackhole/outage, refused, broken TLS, expired certificate,
    /// link down — invalidates all warm session state before the attempt
    /// runs. `HttpError` is connection-healthy: the transport works, only
    /// the application layer misbehaves, so warm connections survive it.
    fn connection_healthy(health: ProbeHealth, effects: &FaultEffects) -> bool {
        !(matches!(
            health,
            ProbeHealth::Blackholed
                | ProbeHealth::Refusing
                | ProbeHealth::TlsBroken
                | ProbeHealth::BadCertificate
        ) || effects.link_down)
    }

    /// Maps the session layer's decision onto the transport start. Ticket
    /// identities never influence timing (the TLS model distinguishes only
    /// `Some`/`None`), so the zero ticket stands in for a pooled QUIC
    /// connection that outlived its ticket.
    fn warm_start(session: &SessionState, mode: ConnectionMode) -> WarmStart {
        match mode {
            ConnectionMode::Cold => WarmStart::Cold,
            ConnectionMode::Resumed => WarmStart::Resumed {
                ticket: session.ticket().unwrap_or(SessionTicket { id: 0 }),
            },
            ConnectionMode::Reused => WarmStart::Reused {
                ticket: session.ticket().unwrap_or(SessionTicket { id: 0 }),
                srtt_hint: session.pool_srtt_hint().unwrap_or(SimDuration::ZERO),
            },
        }
    }

    /// Applies one attempt's outcome to the session state, mirroring
    /// [`run_attempts`](Self::run_attempts)' attempt-timeout conversion: an
    /// exchange that outlives the client's patience is a failure from the
    /// client's point of view, and the client tears the connection down
    /// with it.
    fn update_session(
        session: &mut SessionState,
        policy: RetryPolicy,
        attempt_now: SimTime,
        protocol: Protocol,
        mode: ConnectionMode,
        outcome: &ProbeOutcome,
    ) {
        match outcome {
            ProbeOutcome::Success { timings, .. }
                if policy
                    .attempt_timeout
                    .is_none_or(|to| timings.total() <= to) =>
            {
                session.on_success(attempt_now, protocol, mode, timings.connect);
            }
            _ => session.on_failure(),
        }
    }

    /// [`probe_pair`](Self::probe_pair) with a live session layer: the
    /// pair's [`SessionState`] decides per attempt whether the transport
    /// starts cold, resumes a TLS/QUIC session, or reuses a pooled
    /// connection, and the attempt's outcome feeds back into the state.
    /// Returns the [`ConnectionMode`] of the probe's final attempt, for
    /// recording — a warm probe whose retry fell back cold reports `Cold`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_pair_session(
        &self,
        ctx: &mut PairContext,
        session: &mut SessionState,
        scfg: &SessionConfig,
        target: &mut ProbeTarget,
        domain_idx: usize,
        now: SimTime,
        cfg: ProbeConfig,
        faults: &FaultPlan,
        rng: &mut SimRng,
    ) -> (
        ProbeOutcome,
        Option<SimDuration>,
        Option<RetryInfo>,
        ConnectionMode,
    ) {
        let mut log = SpanLog::disabled();
        let PairContext {
            client,
            site,
            path,
            ftarget,
            scope_mask,
            domains,
            arena,
        } = ctx;
        let site = *site;
        let tmpl = &mut domains[domain_idx];

        let ping = icmp::ping(path, target.instance.icmp, cfg.ping_timeout, rng).rtt();
        match ping {
            Some(rtt) => log.instant(now.as_nanos() + rtt.as_nanos(), "icmp_echo_reply"),
            None => log.instant(now.as_nanos(), "icmp_filtered"),
        }

        // One schedule draw per probe, before any attempt: the stream
        // position is the probe ordinal, independent of outcomes.
        let forced_cold = session.draw_forced_cold(scfg);
        let mut last_mode = ConnectionMode::Cold;
        let session = &mut *session;
        let (outcome, info) = Self::run_attempts(cfg.retry, now, rng, |attempt_now, rng| {
            let effects = faults.effects_at_masked(attempt_now, ftarget, scope_mask);
            let health = Self::effective_health(target, attempt_now, &effects, rng);
            let conn_healthy = Self::connection_healthy(health, &effects);
            let mode = session.decide(attempt_now, cfg.protocol, conn_healthy, forced_cold);
            last_mode = mode;
            let outcome = self.dns_probe_ctx(
                Self::warm_start(session, mode),
                client,
                target,
                tmpl,
                attempt_now,
                site,
                path,
                health,
                &effects,
                cfg,
                arena,
                rng,
                &mut log,
            );
            Self::update_session(
                session,
                cfg.retry,
                attempt_now,
                cfg.protocol,
                mode,
                &outcome,
            );
            outcome
        });
        (outcome, ping, info, last_mode)
    }

    /// [`probe_with_faults`](Self::probe_with_faults) with a live session
    /// layer — the reference twin of
    /// [`probe_pair_session`](Self::probe_pair_session), rebuilding every
    /// wire per probe, so the session differential tests can anchor the
    /// fast path against it.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_with_faults_session(
        &self,
        client: &Host,
        session: &mut SessionState,
        scfg: &SessionConfig,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        is_home: bool,
        cfg: ProbeConfig,
        faults: &FaultPlan,
        rng: &mut SimRng,
    ) -> (
        ProbeOutcome,
        Option<SimDuration>,
        Option<RetryInfo>,
        ConnectionMode,
    ) {
        let mut disabled = SpanLog::disabled();
        let log = &mut disabled;
        let (site, mut path) = target.instance.route(client);
        if is_home {
            path.extra_latency_ms += target.entry.home_extra_ms;
        }

        let ping = icmp::ping(&path, target.instance.icmp, cfg.ping_timeout, rng).rtt();
        match ping {
            Some(rtt) => log.instant(now.as_nanos() + rtt.as_nanos(), "icmp_echo_reply"),
            None => log.instant(now.as_nanos(), "icmp_filtered"),
        }

        let ftarget = FaultTarget {
            resolver: target.entry.hostname,
            region: target.entry.region(),
            vantage: &client.label,
        };
        let forced_cold = session.draw_forced_cold(scfg);
        let mut last_mode = ConnectionMode::Cold;
        let session = &mut *session;
        let (outcome, info) = Self::run_attempts(cfg.retry, now, rng, |attempt_now, rng| {
            let effects = faults.effects_at(attempt_now, &ftarget);
            let health = Self::effective_health(target, attempt_now, &effects, rng);
            let conn_healthy = Self::connection_healthy(health, &effects);
            let mode = session.decide(attempt_now, cfg.protocol, conn_healthy, forced_cold);
            last_mode = mode;
            let outcome = self.dns_probe(
                Self::warm_start(session, mode),
                client,
                target,
                domain,
                attempt_now,
                site,
                &path,
                health,
                &effects,
                cfg,
                rng,
                log,
            );
            Self::update_session(
                session,
                cfg.retry,
                attempt_now,
                cfg.protocol,
                mode,
                &outcome,
            );
            outcome
        });
        (outcome, ping, info, last_mode)
    }

    /// Context-path twin of [`dns_probe`](Self::dns_probe): identical
    /// fault/health shaping, dispatching to the template-backed protocol
    /// probes. ODoH falls through to the reference path — its per-probe
    /// KEM entropy draw leaves nothing pair-constant to hoist.
    #[allow(clippy::too_many_arguments)]
    fn dns_probe_ctx(
        &self,
        warm: WarmStart,
        client: &Host,
        target: &mut ProbeTarget,
        tmpl: &mut DomainTemplate,
        now: SimTime,
        site: usize,
        path: &Path,
        health: ProbeHealth,
        effects: &FaultEffects,
        cfg: ProbeConfig,
        arena: &mut Arena,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        let mut path = path.clone();
        if health == ProbeHealth::Blackholed || effects.link_down {
            path.extra_loss = 1.0;
        }
        if effects.extra_loss > 0.0 {
            path.extra_loss = (path.extra_loss + effects.extra_loss).min(1.0);
        }
        path.extra_latency_ms += effects.extra_latency_ms;
        let refused = health == ProbeHealth::Refusing;
        let tls_behavior = match health {
            ProbeHealth::TlsBroken => TlsServerBehavior::Stall,
            ProbeHealth::BadCertificate => TlsServerBehavior::BadCertificate,
            _ => TlsServerBehavior::Normal,
        };
        let hooks = FaultHooks {
            refuse_connect: refused,
            tls_behavior,
            http_status_override: if effects.rate_limited {
                Some(429)
            } else {
                None
            },
        };

        match cfg.protocol {
            Protocol::DoH => self.doh_probe_ctx(
                warm, target, tmpl, now, site, &path, hooks, health, effects, arena, rng, log,
            ),
            Protocol::DoT => self.dot_probe_ctx(
                warm, target, tmpl, now, site, &path, hooks, health, effects, arena, rng, log,
            ),
            Protocol::Do53 => self.do53_probe_ctx(
                target, tmpl, now, site, &path, health, effects, arena, rng, log,
            ),
            Protocol::DoQ => self.doq_probe_ctx(
                warm, target, tmpl, now, site, &path, hooks, health, effects, arena, rng, log,
            ),
            Protocol::ODoH => self.odoh_probe(
                client, target, &tmpl.name, now, site, health, effects, cfg, rng, log,
            ),
        }
    }

    /// [`serve`](Self::serve) against the pair's response-variant cache:
    /// the resolver engine runs exactly as on the reference path (same RNG
    /// draws), but the response message is only *assembled and encoded*
    /// the first time each (shed, rcode, answers) shape appears. Returns
    /// the variant index instead of wire bytes.
    #[allow(clippy::too_many_arguments)]
    fn serve_cached(
        &self,
        target: &mut ProbeTarget,
        tmpl: &mut DomainTemplate,
        now: SimTime,
        site: usize,
        effects: &FaultEffects,
        http_layer: bool,
        rng: &mut SimRng,
        arena: &mut Arena,
    ) -> (SimDuration, bool, usize) {
        let (server_time, resolution) = target.instance.server_mut(site).handle_query_loaded(
            &tmpl.name,
            RecordType::A,
            &self.authorities,
            now,
            effects.slowdown,
            effects.offered_load_qps,
            rng,
        );
        let shed = effects.servfail || (!http_layer && effects.rate_limited);
        let rcode = if shed {
            Rcode::ServFail
        } else {
            resolution.rcode
        };
        let variant = match tmpl.find_variant(shed, rcode, &resolution.records) {
            Some(i) => i,
            None => tmpl.add_variant(shed, rcode, resolution.records, arena),
        };
        (server_time, resolution.cache_hit, variant)
    }

    /// [`doh_probe`](Self::doh_probe) over cached wire lengths: the query
    /// encode, DoH URL, HPACK request frames and response frames are all
    /// template lookups; the transport legs (the only RNG consumers) run
    /// unchanged with identical byte counts, so outcomes and span traces
    /// are byte-identical to the reference path.
    #[allow(clippy::too_many_arguments)]
    fn doh_probe_ctx(
        &self,
        warm: WarmStart,
        target: &mut ProbeTarget,
        tmpl: &mut DomainTemplate,
        now: SimTime,
        site: usize,
        path: &Path,
        hooks: FaultHooks,
        health: ProbeHealth,
        effects: &FaultEffects,
        arena: &mut Arena,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        let dns_encode = tmpl.dns_encode;
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);

        let (mut tcp, connect, tls_time) = match warm.tcp_tls_setup(path, hooks, rng, &mut t, log) {
            Ok(ok) => ok,
            Err(fail) => return fail,
        };

        let (server_time, cache_hit, variant) =
            self.serve_cached(target, tmpl, now, site, effects, true, rng, arena);
        let base_status = if health == ProbeHealth::HttpError {
            500
        } else {
            200
        };
        let http_status = hooks.http_status(base_status);
        // detlint:allow(unwrap, dns_probe_ctx only dispatches DoH when the template was built for DoH)
        let doh = tmpl.doh.as_ref().expect("DoH template");
        // A follow-up request on a kept-alive connection skips the preface
        // and benefits from warm HPACK state; the response length is
        // stream-id-independent, so the cold cache serves both.
        let req_len = if warm.is_reused() {
            doh.req_len_reused
        } else {
            doh.req_len
        };
        let resp_len = tmpl.resp_len_for(variant, http_status);

        // Both the HTTP/1.1 and HTTP/2 reference branches bottom out in
        // this same traced TCP exchange with the same span pattern; only
        // the byte counts differ, and those are cached above.
        let out =
            match tcp.request_response_traced(path, req_len, resp_len, server_time, rng, t, log) {
                Ok(out) => out,
                Err(e) => {
                    return ProbeOutcome::Failure {
                        kind: e.into(),
                        elapsed: connect + tls_time + e.elapsed,
                    }
                }
            };
        let query_time = out.elapsed;
        t += query_time.as_nanos();

        let body_len = tmpl.variants[variant].dns_response.len();
        let dns_decode = decode_cost(body_len);
        record_codec_span(log, t, Phase::DnsDecode, dns_decode);
        let timings = ProbeTimings::from_legs(
            dns_encode,
            connect,
            tls_time,
            query_time,
            server_time,
            dns_decode,
        );
        if http_status != 200 {
            return ProbeOutcome::Failure {
                kind: if http_status == 429 {
                    ProbeErrorKind::RateLimited
                } else {
                    ProbeErrorKind::HttpStatus
                },
                elapsed: timings.total(),
            };
        }
        match tmpl.variants[variant].decoded_rcode {
            Some(rcode) => Self::check_rcode(rcode, timings, cache_hit, site),
            None => ProbeOutcome::Failure {
                kind: ProbeErrorKind::DnsError,
                elapsed: timings.total(),
            },
        }
    }

    /// [`dot_probe`](Self::dot_probe) over the query template. The RFC
    /// 7858 length-prefix framing adds exactly 2 octets per message, so
    /// the framed sizes are computed without materializing the frames.
    #[allow(clippy::too_many_arguments)]
    fn dot_probe_ctx(
        &self,
        warm: WarmStart,
        target: &mut ProbeTarget,
        tmpl: &mut DomainTemplate,
        now: SimTime,
        site: usize,
        path: &Path,
        hooks: FaultHooks,
        health: ProbeHealth,
        effects: &FaultEffects,
        arena: &mut Arena,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        let dns_encode = tmpl.dns_encode;
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);

        let (mut tcp, connect, tls_time) = match warm.tcp_tls_setup(path, hooks, rng, &mut t, log) {
            Ok(ok) => ok,
            Err(fail) => return fail,
        };
        let (server_time, cache_hit, variant) =
            self.serve_cached(target, tmpl, now, site, effects, false, rng, arena);
        if health == ProbeHealth::HttpError {
            let out = tcp.request_response_traced(
                path,
                2 + tmpl.query_wire.len(),
                2 + 12,
                server_time,
                rng,
                t,
                log,
            );
            return match out {
                Ok(o) => ProbeOutcome::Failure {
                    kind: ProbeErrorKind::DnsError,
                    elapsed: connect + tls_time + o.elapsed,
                },
                Err(e) => ProbeOutcome::Failure {
                    kind: e.into(),
                    elapsed: connect + tls_time + e.elapsed,
                },
            };
        }
        let resp_len = tmpl.variants[variant].dns_response.len();
        match tcp.request_response_traced(
            path,
            2 + tmpl.query_wire.len(),
            2 + resp_len,
            server_time,
            rng,
            t,
            log,
        ) {
            Ok(out) => {
                t += out.elapsed.as_nanos();
                let dns_decode = decode_cost(resp_len);
                record_codec_span(log, t, Phase::DnsDecode, dns_decode);
                let timings = ProbeTimings::from_legs(
                    dns_encode,
                    connect,
                    tls_time,
                    out.elapsed,
                    server_time,
                    dns_decode,
                );
                Self::check_rcode(tmpl.variants[variant].rcode, timings, cache_hit, site)
            }
            Err(e) => ProbeOutcome::Failure {
                kind: e.into(),
                elapsed: connect + tls_time + e.elapsed,
            },
        }
    }

    /// [`do53_probe`](Self::do53_probe) over the query template.
    #[allow(clippy::too_many_arguments)]
    fn do53_probe_ctx(
        &self,
        target: &mut ProbeTarget,
        tmpl: &mut DomainTemplate,
        now: SimTime,
        site: usize,
        path: &Path,
        health: ProbeHealth,
        effects: &FaultEffects,
        arena: &mut Arena,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        let dead = matches!(
            health,
            ProbeHealth::Refusing | ProbeHealth::TlsBroken | ProbeHealth::BadCertificate
        );
        let mut path = path.clone();
        if dead {
            path.extra_loss = 1.0;
        }
        let dns_encode = tmpl.dns_encode;
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);
        let (server_time, cache_hit, variant) =
            self.serve_cached(target, tmpl, now, site, effects, false, rng, arena);
        let resp_len = tmpl.variants[variant].dns_response.len();
        let policy = RetryPolicy::dig_defaults().as_flight_policy();
        match transport::exchange_traced(
            &path,
            tmpl.query_wire.len(),
            resp_len,
            server_time,
            policy,
            TransportErrorKind::RequestTimeout,
            rng,
            t,
            log,
        ) {
            Ok(out) => {
                t += out.elapsed.as_nanos();
                let dns_decode = decode_cost(resp_len);
                record_codec_span(log, t, Phase::DnsDecode, dns_decode);
                let timings = ProbeTimings::from_legs(
                    dns_encode,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    out.elapsed,
                    server_time,
                    dns_decode,
                );
                if health == ProbeHealth::HttpError {
                    return ProbeOutcome::Failure {
                        kind: ProbeErrorKind::DnsError,
                        elapsed: timings.total(),
                    };
                }
                Self::check_rcode(tmpl.variants[variant].rcode, timings, cache_hit, site)
            }
            Err(e) => ProbeOutcome::Failure {
                kind: ProbeErrorKind::QueryTimeout,
                elapsed: e.elapsed,
            },
        }
    }

    /// [`doq_probe`](Self::doq_probe) over the query template.
    #[allow(clippy::too_many_arguments)]
    fn doq_probe_ctx(
        &self,
        warm: WarmStart,
        target: &mut ProbeTarget,
        tmpl: &mut DomainTemplate,
        now: SimTime,
        site: usize,
        path: &Path,
        hooks: FaultHooks,
        health: ProbeHealth,
        effects: &FaultEffects,
        arena: &mut Arena,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        if hooks.refuse_connect {
            let rtt = path
                .sample_rtt(1200, 60, rng)
                .unwrap_or(SimDuration::from_millis(300));
            log.instant(now.as_nanos() + rtt.as_nanos(), "connection_refused");
            return ProbeOutcome::Failure {
                kind: ProbeErrorKind::ConnectionRefused,
                elapsed: rtt,
            };
        }
        let dns_encode = tmpl.dns_encode;
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);
        let (mut quic, connect) = match warm.quic_setup(path, rng, &mut t, log) {
            Ok(ok) => ok,
            Err(fail) => return fail,
        };
        if hooks.tls_behavior == TlsServerBehavior::BadCertificate {
            // QUIC folds TLS 1.3 into its handshake: the certificate
            // arrives with the combined connect flight, so the client pays
            // the connect round trip and then aborts — same shape as the
            // TCP-carried transports.
            log.instant(t, "certificate_rejected");
            return ProbeOutcome::Failure {
                kind: ProbeErrorKind::CertificateError,
                elapsed: connect,
            };
        }
        let (server_time, cache_hit, variant) =
            self.serve_cached(target, tmpl, now, site, effects, false, rng, arena);
        let resp_len = tmpl.variants[variant].dns_response.len();
        match quic.stream_exchange_traced(
            path,
            2 + tmpl.query_wire.len(),
            2 + resp_len,
            server_time,
            rng,
            t,
            log,
        ) {
            Ok(out) => {
                t += out.elapsed.as_nanos();
                let dns_decode = decode_cost(resp_len);
                record_codec_span(log, t, Phase::DnsDecode, dns_decode);
                let timings = ProbeTimings::from_legs(
                    dns_encode,
                    connect,
                    SimDuration::ZERO,
                    out.elapsed,
                    server_time,
                    dns_decode,
                );
                if health == ProbeHealth::HttpError {
                    return ProbeOutcome::Failure {
                        kind: ProbeErrorKind::DnsError,
                        elapsed: timings.total(),
                    };
                }
                Self::check_rcode(tmpl.variants[variant].rcode, timings, cache_hit, site)
            }
            Err(e) => ProbeOutcome::Failure {
                kind: e.into(),
                elapsed: connect + e.elapsed,
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dns_probe(
        &self,
        warm: WarmStart,
        _client: &Host,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        site: usize,
        path: &Path,
        health: ProbeHealth,
        effects: &FaultEffects,
        cfg: ProbeConfig,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        // Outage states and link-layer faults shape the path / transport
        // behaviour.
        let mut path = path.clone();
        if health == ProbeHealth::Blackholed || effects.link_down {
            path.extra_loss = 1.0;
        }
        if effects.extra_loss > 0.0 {
            path.extra_loss = (path.extra_loss + effects.extra_loss).min(1.0);
        }
        path.extra_latency_ms += effects.extra_latency_ms;
        let refused = health == ProbeHealth::Refusing;
        let tls_behavior = match health {
            ProbeHealth::TlsBroken => TlsServerBehavior::Stall,
            ProbeHealth::BadCertificate => TlsServerBehavior::BadCertificate,
            _ => TlsServerBehavior::Normal,
        };
        let hooks = FaultHooks {
            refuse_connect: refused,
            tls_behavior,
            // HTTP-level rate limiting surfaces as a 429 on HTTP-carried
            // protocols; `serve` folds it into a SERVFAIL elsewhere.
            http_status_override: if effects.rate_limited {
                Some(429)
            } else {
                None
            },
        };

        match cfg.protocol {
            Protocol::DoH => self.doh_probe(
                warm, target, domain, now, site, &path, hooks, health, effects, cfg, rng, log,
            ),
            Protocol::DoT => self.dot_probe(
                warm, target, domain, now, site, &path, hooks, health, effects, cfg, rng, log,
            ),
            Protocol::Do53 => self.do53_probe(
                target, domain, now, site, &path, health, effects, cfg, rng, log,
            ),
            Protocol::DoQ => self.doq_probe(
                warm, target, domain, now, site, &path, hooks, health, effects, cfg, rng, log,
            ),
            Protocol::ODoH => self.odoh_probe(
                _client, target, domain, now, site, health, effects, cfg, rng, log,
            ),
        }
    }

    /// Builds the query message (id 0 per RFC 8484 cache friendliness).
    pub(crate) fn build_query(&self, domain: &Name, cfg: ProbeConfig, encrypted: bool) -> Message {
        let mut b = MessageBuilder::query(
            if encrypted { 0 } else { 0x2b2b },
            domain.clone(),
            RecordType::A,
        )
        .recursion_desired(true)
        .edns_udp_size(1232);
        if cfg.padding && encrypted {
            b = b.padding_to(128);
        }
        b.build()
    }

    /// Runs the server side and builds the DNS response message bytes.
    ///
    /// `http_layer` says whether the carrying protocol has an HTTP layer:
    /// there an injected rate limit surfaces as a 429 before any DNS
    /// payload matters, while on bare transports (Do53/DoT/DoQ) the
    /// overloaded frontend sheds load by answering SERVFAIL instead.
    #[allow(clippy::too_many_arguments)]
    fn serve(
        &self,
        target: &mut ProbeTarget,
        query: &Message,
        domain: &Name,
        now: SimTime,
        site: usize,
        effects: &FaultEffects,
        http_layer: bool,
        rng: &mut SimRng,
    ) -> (SimDuration, bool, Rcode, Vec<u8>) {
        let (server_time, resolution) = target.instance.server_mut(site).handle_query_loaded(
            domain,
            RecordType::A,
            &self.authorities,
            now,
            effects.slowdown,
            effects.offered_load_qps,
            rng,
        );
        let shed = effects.servfail || (!http_layer && effects.rate_limited);
        let rcode = if shed {
            Rcode::ServFail
        } else {
            resolution.rcode
        };
        let mut response = MessageBuilder::response_to(query, rcode)
            .recursion_available(true)
            .build();
        if !shed {
            for rdata in &resolution.records {
                response.answers.push(dns_wire::ResourceRecord::new(
                    domain.clone(),
                    300,
                    rdata.clone(),
                ));
            }
        }
        // detlint:allow(unwrap, responses assembled by the simulated resolver are well-formed)
        let wire = response.encode().expect("response encodes");
        (server_time, resolution.cache_hit, rcode, wire)
    }

    fn check_rcode(
        rcode: Rcode,
        timings: ProbeTimings,
        cache_hit: bool,
        site: usize,
    ) -> ProbeOutcome {
        if rcode.is_success() {
            ProbeOutcome::Success {
                timings,
                cache_hit,
                site,
            }
        } else {
            ProbeOutcome::Failure {
                kind: ProbeErrorKind::DnsError,
                elapsed: timings.total(),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn doh_probe(
        &self,
        warm: WarmStart,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        site: usize,
        path: &Path,
        hooks: FaultHooks,
        health: ProbeHealth,
        effects: &FaultEffects,
        cfg: ProbeConfig,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        // Encode the query first: the phase timeline starts with the
        // client-side codec work. Building the message draws no randomness,
        // so hoisting it above the transport legs leaves the RNG stream —
        // and therefore every calibrated distribution — untouched.
        let query = self.build_query(domain, cfg, true);
        // detlint:allow(unwrap, queries built by build_query are well-formed; encoding cannot fail)
        let query_wire = query.encode().expect("query encodes");
        let dns_encode = encode_cost(query_wire.len());
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);

        // TCP + TLS (skipped entirely on a pooled connection).
        let (mut tcp, connect, tls_time) = match warm.tcp_tls_setup(path, hooks, rng, &mut t, log) {
            Ok(ok) => ok,
            Err(fail) => return fail,
        };

        // Build the HTTP/2 request with real wire bytes.
        let (http_path, body) = if cfg.doh_get {
            (
                format!(
                    "{}?dns={}",
                    target.entry.doh_path,
                    base64url::encode(&query_wire)
                ),
                Bytes::new(),
            )
        } else {
            (
                target.entry.doh_path.to_string(),
                Bytes::from(query_wire.clone()),
            )
        };
        let req = H2Request {
            headers: doh_headers(target.entry.hostname, &http_path, !cfg.doh_get, body.len()),
            body,
        };

        // Server side. The authoritative rcode travels inside the encoded
        // response; the client re-derives it by decoding the HTTP body.
        let (server_time, cache_hit, _rcode, dns_response) =
            self.serve(target, &query, domain, now, site, effects, true, rng);
        let base_status = if health == ProbeHealth::HttpError {
            500
        } else {
            200
        };
        let http_status = hooks.http_status(base_status);
        let content_type = HeaderField::new("content-type", "application/dns-message");

        // HTTP/1.1-only servers don't offer h2 in their ALPN; the client
        // falls back to serialised HTTP/1.1 over the same TLS connection.
        let (status, body, query_time) = if target.entry.http1_only {
            let req_wire = transport::h1_encode_request(&req.headers, &req.body);
            let resp_wire =
                transport::h1_encode_response(http_status, &[content_type], &dns_response);
            let out = match tcp.request_response_traced(
                path,
                req_wire.len(),
                resp_wire.len(),
                server_time,
                rng,
                t,
                log,
            ) {
                Ok(out) => out,
                Err(e) => {
                    return ProbeOutcome::Failure {
                        kind: e.into(),
                        elapsed: connect + tls_time + e.elapsed,
                    }
                }
            };
            match transport::h1_parse_response(&resp_wire) {
                Ok(resp) => (resp.status, resp.body, out.elapsed),
                Err(e) => {
                    return ProbeOutcome::Failure {
                        kind: e.into(),
                        elapsed: connect + tls_time + out.elapsed,
                    }
                }
            }
        } else {
            let mut h2 = H2Connection::new();
            if warm.is_reused() {
                // A pooled connection already carried one request: burn an
                // encode so the HPACK tables are warm and the preface is
                // spent — the round trip below then produces exactly the
                // follow-up request the fast path's `req_len_reused` cached.
                let _ = h2.encode_request(&req);
            }
            let result = h2.round_trip_traced(
                &mut tcp,
                path,
                &req,
                |sid, enc| {
                    H2Connection::encode_response(
                        enc,
                        sid,
                        http_status,
                        std::slice::from_ref(&content_type),
                        &dns_response,
                    )
                },
                server_time,
                rng,
                t,
                log,
            );
            match result {
                Ok((resp, elapsed)) => (resp.status, resp.body, elapsed),
                Err(e) => {
                    return ProbeOutcome::Failure {
                        kind: e.into(),
                        elapsed: connect + tls_time + e.elapsed,
                    }
                }
            }
        };
        t += query_time.as_nanos();

        let dns_decode = decode_cost(body.len());
        record_codec_span(log, t, Phase::DnsDecode, dns_decode);
        let timings = ProbeTimings::from_legs(
            dns_encode,
            connect,
            tls_time,
            query_time,
            server_time,
            dns_decode,
        );
        if status != 200 {
            return ProbeOutcome::Failure {
                kind: if status == 429 {
                    ProbeErrorKind::RateLimited
                } else {
                    ProbeErrorKind::HttpStatus
                },
                elapsed: timings.total(),
            };
        }
        // Decode and validate the DNS payload.
        match Message::decode(&body) {
            Ok(msg) => Self::check_rcode(msg.rcode(), timings, cache_hit, site),
            Err(_) => ProbeOutcome::Failure {
                kind: ProbeErrorKind::DnsError,
                elapsed: timings.total(),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dot_probe(
        &self,
        warm: WarmStart,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        site: usize,
        path: &Path,
        hooks: FaultHooks,
        health: ProbeHealth,
        effects: &FaultEffects,
        cfg: ProbeConfig,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        let query = self.build_query(domain, cfg, true);
        // detlint:allow(unwrap, queries built by build_query are well-formed; encoding cannot fail)
        let query_wire = query.encode().expect("query encodes");
        let dns_encode = encode_cost(query_wire.len());
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);

        let (mut tcp, connect, tls_time) = match warm.tcp_tls_setup(path, hooks, rng, &mut t, log) {
            Ok(ok) => ok,
            Err(fail) => return fail,
        };
        let (server_time, cache_hit, rcode, dns_response) =
            self.serve(target, &query, domain, now, site, effects, false, rng);
        if health == ProbeHealth::HttpError {
            // DoT has no HTTP layer; the analogous failure is a ServFail.
            let out = tcp.request_response_traced(
                path,
                2 + query_wire.len(),
                2 + 12,
                server_time,
                rng,
                t,
                log,
            );
            return match out {
                Ok(o) => ProbeOutcome::Failure {
                    kind: ProbeErrorKind::DnsError,
                    elapsed: connect + tls_time + o.elapsed,
                },
                Err(e) => ProbeOutcome::Failure {
                    kind: e.into(),
                    elapsed: connect + tls_time + e.elapsed,
                },
            };
        }
        // RFC 7858: each DNS message is TCP-framed with a length prefix.
        // detlint:allow(unwrap, probe queries are far below the 64 KiB TCP framing limit)
        let framed_query = dns_wire::tcp_frame::frame(&query_wire).expect("query frames");
        // detlint:allow(unwrap, simulated responses are far below the 64 KiB TCP framing limit)
        let framed_response = dns_wire::tcp_frame::frame(&dns_response).expect("response frames");
        match tcp.request_response_traced(
            path,
            framed_query.len(),
            framed_response.len(),
            server_time,
            rng,
            t,
            log,
        ) {
            Ok(out) => {
                t += out.elapsed.as_nanos();
                let dns_decode = decode_cost(dns_response.len());
                record_codec_span(log, t, Phase::DnsDecode, dns_decode);
                let timings = ProbeTimings::from_legs(
                    dns_encode,
                    connect,
                    tls_time,
                    out.elapsed,
                    server_time,
                    dns_decode,
                );
                Self::check_rcode(rcode, timings, cache_hit, site)
            }
            Err(e) => ProbeOutcome::Failure {
                kind: e.into(),
                elapsed: connect + tls_time + e.elapsed,
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do53_probe(
        &self,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        site: usize,
        path: &Path,
        health: ProbeHealth,
        effects: &FaultEffects,
        cfg: ProbeConfig,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        // Plain DNS has no connection; refused/TLS failures manifest as
        // silence (dig retries then times out).
        let dead = matches!(
            health,
            ProbeHealth::Refusing | ProbeHealth::TlsBroken | ProbeHealth::BadCertificate
        );
        let mut path = path.clone();
        if dead {
            path.extra_loss = 1.0;
        }
        let query = self.build_query(domain, cfg, false);
        // detlint:allow(unwrap, queries built by build_query are well-formed; encoding cannot fail)
        let query_wire = query.encode().expect("query encodes");
        let dns_encode = encode_cost(query_wire.len());
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);
        let (server_time, cache_hit, rcode, dns_response) =
            self.serve(target, &query, domain, now, site, effects, false, rng);
        // The datagram-level retransmit schedule is `dig`'s: one home for
        // the constants, shared with the probe-level retry layer.
        let policy = RetryPolicy::dig_defaults().as_flight_policy();
        match transport::exchange_traced(
            &path,
            query_wire.len(),
            dns_response.len(),
            server_time,
            policy,
            TransportErrorKind::RequestTimeout,
            rng,
            t,
            log,
        ) {
            Ok(out) => {
                t += out.elapsed.as_nanos();
                let dns_decode = decode_cost(dns_response.len());
                record_codec_span(log, t, Phase::DnsDecode, dns_decode);
                let timings = ProbeTimings::from_legs(
                    dns_encode,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    out.elapsed,
                    server_time,
                    dns_decode,
                );
                if health == ProbeHealth::HttpError {
                    return ProbeOutcome::Failure {
                        kind: ProbeErrorKind::DnsError,
                        elapsed: timings.total(),
                    };
                }
                Self::check_rcode(rcode, timings, cache_hit, site)
            }
            Err(e) => ProbeOutcome::Failure {
                kind: ProbeErrorKind::QueryTimeout,
                elapsed: e.elapsed,
            },
        }
    }

    /// Oblivious DoH (RFC 9230): the query is sealed to the target's key
    /// and carried through a relay. The client pays a cold DoH transaction
    /// to its nearest relay plus one relay→target round trip (relays hold
    /// warm connections to targets) plus the target's processing.
    #[allow(clippy::too_many_arguments)]
    fn odoh_probe(
        &self,
        client: &Host,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        site: usize,
        health: ProbeHealth,
        effects: &FaultEffects,
        cfg: ProbeConfig,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        use dns_wire::odoh;
        use netsim::AccessProfile;

        let relay = catalog::relays::nearest_relay(&client.location);
        // Client → relay leg inherits the client's access network.
        let client_relay = Path::between(
            client.location,
            client.access,
            relay.city.point,
            AccessProfile::datacenter(),
        );
        // Relay → target leg between datacenters; target outages blackhole it.
        let target_city = target.instance.servers[site].location();
        let mut relay_target = Path::between(
            relay.city.point,
            AccessProfile::datacenter(),
            target_city.point,
            AccessProfile::datacenter(),
        );
        if health == ProbeHealth::Blackholed {
            relay_target.extra_loss = 1.0;
        }

        // Seal the query to the target's key configuration.
        let key = odoh::TargetKey::from_seed(netsim::rng::derive_seed(
            0x0D0A_0D0A,
            target.entry.hostname,
        ));
        let query = self.build_query(domain, cfg, true);
        // detlint:allow(unwrap, queries built by build_query are well-formed; encoding cannot fail)
        let query_wire = query.encode().expect("query encodes");
        let kem_entropy = (rng.uniform() * u64::MAX as f64) as u64;
        let sealed_query = odoh::seal_query(&key, &query_wire, kem_entropy);
        // detlint:allow(unwrap, sealed ODoH messages built here are well-formed by construction)
        let sealed_query_wire = sealed_query.encode().expect("odoh encodes");
        // The encode phase covers building the query and sealing it to the
        // target's key (the sealed message is what goes on the wire).
        let dns_encode = encode_cost(sealed_query_wire.len());
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);

        // Connect to the relay (TCP + TLS).
        let refused_relay = false; // relays are modelled reliable
        let (mut tcp, connect) = match TcpConnection::connect_traced(
            &client_relay,
            refused_relay,
            rng,
            TcpConfig::default(),
            t,
            log,
        ) {
            Ok(ok) => ok,
            Err(e) => {
                return ProbeOutcome::Failure {
                    kind: e.into(),
                    elapsed: e.elapsed,
                }
            }
        };
        t += connect.as_nanos();
        let tls_behavior = TlsServerBehavior::Normal;
        let tls = match TlsSession::handshake_traced(
            &mut tcp,
            &client_relay,
            TlsConfig::default(),
            tls_behavior,
            None,
            rng,
            t,
            log,
        ) {
            Ok(s) => s,
            Err(e) => {
                return ProbeOutcome::Failure {
                    kind: e.into(),
                    elapsed: connect + e.elapsed,
                }
            }
        };
        t += tls.handshake_time.as_nanos();

        // Target side: resolve and seal the response.
        let (server_time, cache_hit, rcode, dns_response) =
            self.serve(target, &query, domain, now, site, effects, true, rng);
        let (_plain, kem) = match odoh::open_query(&key, &sealed_query) {
            Ok(ok) => ok,
            Err(_) => {
                return ProbeOutcome::Failure {
                    kind: ProbeErrorKind::DnsError,
                    elapsed: connect + tls.handshake_time,
                }
            }
        };
        let sealed_response = odoh::seal_response(&key, &kem, &dns_response);
        // detlint:allow(unwrap, sealed ODoH messages built here are well-formed by construction)
        let sealed_response_wire = sealed_response.encode().expect("odoh encodes");

        // Relay forwards over its warm target connection: one round trip.
        let relay_forward =
            match relay_target.sample_rtt(sealed_query_wire.len(), sealed_response_wire.len(), rng)
            {
                Some(rtt) => rtt + server_time,
                None => {
                    // Relay retries once, then reports 502 to the client after
                    // a 2-second upstream timeout.
                    match relay_target.sample_rtt(
                        sealed_query_wire.len(),
                        sealed_response_wire.len(),
                        rng,
                    ) {
                        Some(rtt) => SimDuration::from_secs(2) + rtt + server_time,
                        None => {
                            let elapsed = connect + tls.handshake_time + SimDuration::from_secs(4);
                            return ProbeOutcome::Failure {
                                kind: ProbeErrorKind::HttpStatus,
                                elapsed,
                            };
                        }
                    }
                }
            };

        // Client ↔ relay HTTP exchange, with the relay's forwarding time as
        // its "server time".
        let req = H2Request {
            headers: {
                let mut h = doh_headers(relay.hostname, "/proxy", true, sealed_query_wire.len());
                h.push(HeaderField::new(
                    "content-type",
                    "application/oblivious-dns-message",
                ));
                h
            },
            body: Bytes::from(sealed_query_wire),
        };
        // A rate-limited target answers the relay with a 429, which the
        // relay forwards to the client.
        let http_status = if effects.rate_limited {
            429
        } else if health == ProbeHealth::HttpError {
            500
        } else {
            200
        };
        let mut h2 = H2Connection::new();
        let result = h2.round_trip_traced(
            &mut tcp,
            &client_relay,
            &req,
            |sid, enc| {
                H2Connection::encode_response(
                    enc,
                    sid,
                    http_status,
                    &[HeaderField::new(
                        "content-type",
                        "application/oblivious-dns-message",
                    )],
                    &sealed_response_wire,
                )
            },
            relay_forward,
            rng,
            t,
            log,
        );
        let (resp, query_time) = match result {
            Ok(ok) => ok,
            Err(e) => {
                return ProbeOutcome::Failure {
                    kind: e.into(),
                    elapsed: connect + tls.handshake_time + e.elapsed,
                }
            }
        };
        t += query_time.as_nanos();
        // The decode phase covers decapsulating the sealed response and
        // parsing the DNS message inside it.
        let dns_decode = decode_cost(resp.body.len());
        record_codec_span(log, t, Phase::DnsDecode, dns_decode);
        // Through a relay, everything past the client↔relay wire exchange —
        // the relay→target leg plus the target's own processing — is
        // "server" time from the client's point of view.
        let timings = ProbeTimings::from_legs(
            dns_encode,
            connect,
            tls.handshake_time,
            query_time,
            relay_forward,
            dns_decode,
        );
        if resp.status != 200 {
            return ProbeOutcome::Failure {
                kind: if resp.status == 429 {
                    ProbeErrorKind::RateLimited
                } else {
                    ProbeErrorKind::HttpStatus
                },
                elapsed: timings.total(),
            };
        }
        // Client decapsulates and validates the DNS payload.
        let opened = dns_wire::odoh::ObliviousMessage::decode(&resp.body)
            .and_then(|m| odoh::open_response(&key, &kem, &m))
            .and_then(|plain| Message::decode(&plain));
        match opened {
            Ok(msg) if msg.rcode() == rcode => {
                Self::check_rcode(msg.rcode(), timings, cache_hit, site)
            }
            Ok(msg) => Self::check_rcode(msg.rcode(), timings, cache_hit, site),
            Err(_) => ProbeOutcome::Failure {
                kind: ProbeErrorKind::DnsError,
                elapsed: timings.total(),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn doq_probe(
        &self,
        warm: WarmStart,
        target: &mut ProbeTarget,
        domain: &Name,
        now: SimTime,
        site: usize,
        path: &Path,
        hooks: FaultHooks,
        health: ProbeHealth,
        effects: &FaultEffects,
        cfg: ProbeConfig,
        rng: &mut SimRng,
        log: &mut SpanLog,
    ) -> ProbeOutcome {
        if hooks.refuse_connect {
            // QUIC: a closed port answers with ICMP unreachable ≈ one RTT.
            let rtt = path
                .sample_rtt(1200, 60, rng)
                .unwrap_or(SimDuration::from_millis(300));
            log.instant(now.as_nanos() + rtt.as_nanos(), "connection_refused");
            return ProbeOutcome::Failure {
                kind: ProbeErrorKind::ConnectionRefused,
                elapsed: rtt,
            };
        }
        let query = self.build_query(domain, cfg, true);
        // detlint:allow(unwrap, queries built by build_query are well-formed; encoding cannot fail)
        let query_wire = query.encode().expect("query encodes");
        let dns_encode = encode_cost(query_wire.len());
        let mut t = record_codec_span(log, now.as_nanos(), Phase::DnsEncode, dns_encode);
        let (mut quic, connect) = match warm.quic_setup(path, rng, &mut t, log) {
            Ok(ok) => ok,
            Err(fail) => return fail,
        };
        if hooks.tls_behavior == TlsServerBehavior::BadCertificate {
            // QUIC folds TLS 1.3 into its handshake: the certificate
            // arrives with the combined connect flight, so the client pays
            // the connect round trip and then aborts — same shape as the
            // TCP-carried transports.
            log.instant(t, "certificate_rejected");
            return ProbeOutcome::Failure {
                kind: ProbeErrorKind::CertificateError,
                elapsed: connect,
            };
        }
        let (server_time, cache_hit, rcode, dns_response) =
            self.serve(target, &query, domain, now, site, effects, false, rng);
        match quic.stream_exchange_traced(
            path,
            2 + query_wire.len(),
            2 + dns_response.len(),
            server_time,
            rng,
            t,
            log,
        ) {
            Ok(out) => {
                t += out.elapsed.as_nanos();
                let dns_decode = decode_cost(dns_response.len());
                record_codec_span(log, t, Phase::DnsDecode, dns_decode);
                // The QUIC handshake folds transport and crypto setup into
                // one leg, so `tls_handshake` is structurally zero.
                let timings = ProbeTimings::from_legs(
                    dns_encode,
                    connect,
                    SimDuration::ZERO,
                    out.elapsed,
                    server_time,
                    dns_decode,
                );
                if health == ProbeHealth::HttpError {
                    return ProbeOutcome::Failure {
                        kind: ProbeErrorKind::DnsError,
                        elapsed: timings.total(),
                    };
                }
                Self::check_rcode(rcode, timings, cache_hit, site)
            }
            Err(e) => ProbeOutcome::Failure {
                kind: e.into(),
                elapsed: connect + e.elapsed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::resolvers;
    use netsim::geo::cities;
    use netsim::{AccessProfile, HostId};

    fn client() -> Host {
        Host::in_city(
            HostId(0),
            "ec2-ohio",
            cities::COLUMBUS_OH,
            AccessProfile::cloud_vm(),
        )
    }

    fn target(hostname: &str) -> ProbeTarget {
        ProbeTarget::from_entry(resolvers::find(hostname).unwrap())
    }

    fn domain() -> Name {
        Name::parse("google.com").unwrap()
    }

    #[test]
    fn doh_probe_of_mainstream_succeeds_fast() {
        let prober = Prober::new();
        let mut t = target("dns.google");
        let mut rng = SimRng::from_seed(1);
        let mut times = Vec::new();
        for i in 0..50 {
            let (outcome, ping) = prober.probe(
                &client(),
                &mut t,
                &domain(),
                SimTime::from_nanos(i * 3_600_000_000_000),
                false,
                ProbeConfig::default(),
                &mut rng,
            );
            if let Some(rt) = outcome.response_time() {
                times.push(rt.as_millis_f64());
            }
            if let Some(p) = ping {
                assert!(p.as_millis_f64() < 60.0, "ping {p}");
            }
        }
        assert!(times.len() >= 48, "mainstream should almost always succeed");
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        // Cold DoH ≈ 3 round trips Ohio→Chicago/Ashburn ≈ 20-50 ms.
        assert!((10.0..60.0).contains(&median), "median {median}");
    }

    #[test]
    fn remote_unicast_resolver_is_much_slower() {
        let prober = Prober::new();
        let mut near = target("dns.google");
        let mut far = target("dns.bebasid.com"); // Bandung, Indonesia
        let mut rng = SimRng::from_seed(2);
        let mut near_median = Vec::new();
        let mut far_median = Vec::new();
        for i in 0..40 {
            let now = SimTime::from_nanos(i * 3_600_000_000_000);
            let (o, _) = prober.probe(
                &client(),
                &mut near,
                &domain(),
                now,
                false,
                ProbeConfig::default(),
                &mut rng,
            );
            if let Some(rt) = o.response_time() {
                near_median.push(rt.as_millis_f64());
            }
            let (o, _) = prober.probe(
                &client(),
                &mut far,
                &domain(),
                now,
                false,
                ProbeConfig::default(),
                &mut rng,
            );
            if let Some(rt) = o.response_time() {
                far_median.push(rt.as_millis_f64());
            }
        }
        near_median.sort_by(|a, b| a.partial_cmp(b).unwrap());
        far_median.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (n, f) = (
            near_median[near_median.len() / 2],
            far_median[far_median.len() / 2],
        );
        assert!(f > n * 5.0, "near {n} ms vs far {f} ms");
    }

    #[test]
    fn icmp_filtered_resolver_has_no_ping() {
        let prober = Prober::new();
        let mut t = target("dns.njal.la");
        let mut rng = SimRng::from_seed(3);
        let (_, ping) = prober.probe(
            &client(),
            &mut t,
            &domain(),
            SimTime::ZERO,
            false,
            ProbeConfig::default(),
            &mut rng,
        );
        assert_eq!(ping, None);
    }

    #[test]
    fn mostly_down_resolver_yields_connection_errors() {
        let prober = Prober::new();
        let mut t = target("chewbacca.meganerd.nl");
        let mut rng = SimRng::from_seed(4);
        let mut failures = 0;
        let mut conn_failures = 0;
        for i in 0..60 {
            let (outcome, _) = prober.probe(
                &client(),
                &mut t,
                &domain(),
                SimTime::from_nanos(i * 3_600_000_000_000),
                false,
                ProbeConfig::default(),
                &mut rng,
            );
            if let ProbeOutcome::Failure { kind, elapsed } = outcome {
                failures += 1;
                if kind.is_connection_failure() {
                    conn_failures += 1;
                }
                assert!(elapsed > SimDuration::ZERO);
            }
        }
        assert!(failures > 40, "mostly-down should mostly fail: {failures}");
        assert!(
            conn_failures * 10 > failures * 8,
            "errors should be dominated by connection failures: {conn_failures}/{failures}"
        );
    }

    #[test]
    fn home_extra_latency_applies_only_at_home() {
        let prober = Prober::new();
        let mut rng = SimRng::from_seed(5);
        let cfg = ProbeConfig::default();
        let mut t = target("dns.twnic.tw");
        let home_client = Host::in_city(
            HostId(1),
            "home-1",
            cities::CHICAGO,
            AccessProfile::home_cable(),
        );
        let mut home_times = Vec::new();
        let mut cloud_times = Vec::new();
        for i in 0..30 {
            let now = SimTime::from_nanos(i * 3_600_000_000_000);
            let (o, _) = prober.probe(&home_client, &mut t, &domain(), now, true, cfg, &mut rng);
            if let Some(rt) = o.response_time() {
                home_times.push(rt.as_millis_f64());
            }
            let (o, _) = prober.probe(&client(), &mut t, &domain(), now, false, cfg, &mut rng);
            if let Some(rt) = o.response_time() {
                cloud_times.push(rt.as_millis_f64());
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let hm = med(&mut home_times);
        let cm = med(&mut cloud_times);
        // 70 ms extra one-way over 3 round trips = several hundred ms more.
        assert!(hm > cm + 200.0, "home {hm} vs cloud {cm}");
    }

    #[test]
    fn all_protocols_succeed_against_healthy_target() {
        let prober = Prober::new();
        let mut rng = SimRng::from_seed(6);
        for protocol in [Protocol::Do53, Protocol::DoT, Protocol::DoH, Protocol::DoQ] {
            let mut t = target("dns.quad9.net");
            let cfg = ProbeConfig {
                protocol,
                ..ProbeConfig::default()
            };
            let mut successes = 0;
            for i in 0..20 {
                let (o, _) = prober.probe(
                    &client(),
                    &mut t,
                    &domain(),
                    SimTime::from_nanos(i * 3_600_000_000_000),
                    false,
                    cfg,
                    &mut rng,
                );
                if o.is_success() {
                    successes += 1;
                }
            }
            assert!(successes >= 18, "{protocol}: {successes}/20");
        }
    }

    #[test]
    fn do53_is_fastest_cold_doh_slowest() {
        // Böttger et al.'s ordering: DNS < DoT ≈ DoH on cold connections.
        let prober = Prober::new();
        let mut rng = SimRng::from_seed(7);
        let mut medians = std::collections::HashMap::new();
        for protocol in [Protocol::Do53, Protocol::DoT, Protocol::DoH] {
            let mut t = target("dns.google");
            let cfg = ProbeConfig {
                protocol,
                ..ProbeConfig::default()
            };
            let mut times = Vec::new();
            for i in 0..60 {
                let (o, _) = prober.probe(
                    &client(),
                    &mut t,
                    &domain(),
                    SimTime::from_nanos(i * 3_600_000_000_000),
                    false,
                    cfg,
                    &mut rng,
                );
                if let Some(rt) = o.response_time() {
                    times.push(rt.as_millis_f64());
                }
            }
            times.sort_by(|a, b| a.partial_cmp(b).unwrap());
            medians.insert(protocol, times[times.len() / 2]);
        }
        assert!(
            medians[&Protocol::Do53] < medians[&Protocol::DoT],
            "do53 {} vs dot {}",
            medians[&Protocol::Do53],
            medians[&Protocol::DoT]
        );
        assert!(
            medians[&Protocol::Do53] * 2.0 < medians[&Protocol::DoH],
            "cold DoH should cost ≈3x a UDP exchange"
        );
    }

    #[test]
    fn http1_only_resolver_probes_succeed() {
        let prober = Prober::new();
        let mut t = target("ibksturm.synology.me"); // http1_only, flaky
        assert!(t.entry.http1_only);
        let mut rng = SimRng::from_seed(12);
        let mut ok = 0;
        for i in 0..30 {
            let (o, _) = prober.probe(
                &client(),
                &mut t,
                &domain(),
                SimTime::from_nanos(i * 3_600_000_000_000),
                false,
                ProbeConfig::default(),
                &mut rng,
            );
            if o.is_success() {
                ok += 1;
            }
        }
        // Flaky health: most but not all succeed, over HTTP/1.1.
        assert!(ok >= 20, "{ok}/30");
    }

    #[test]
    fn odoh_cost_depends_on_target_distance() {
        // Near target (Frankfurt client, Amsterdam target + Amsterdam
        // relay): the relay hop is pure overhead. Far target (Ohio client):
        // the cold handshakes terminate at the nearby relay, whose *warm*
        // connection crosses the ocean once — so ODoH can beat cold direct
        // DoH. Both regimes are asserted.
        let prober = Prober::new();
        let mut med = std::collections::HashMap::new();
        for (case, city, access) in [
            ("near", cities::FRANKFURT, AccessProfile::cloud_vm()),
            ("far", cities::COLUMBUS_OH, AccessProfile::cloud_vm()),
        ] {
            let probe_client = Host::in_city(HostId(0), "c", city, access);
            for protocol in [Protocol::DoH, Protocol::ODoH] {
                let mut t = target("odoh-target.alekberg.net");
                let mut rng = SimRng::from_seed(8);
                let cfg = ProbeConfig {
                    protocol,
                    ..ProbeConfig::default()
                };
                let mut times = Vec::new();
                for i in 0..40 {
                    let (o, _) = prober.probe(
                        &probe_client,
                        &mut t,
                        &domain(),
                        SimTime::from_nanos(i * 3_600_000_000_000),
                        false,
                        cfg,
                        &mut rng,
                    );
                    if let Some(rt) = o.response_time() {
                        times.push(rt.as_millis_f64());
                    }
                }
                assert!(times.len() >= 35, "{case}/{protocol}: {} ok", times.len());
                times.sort_by(|a, b| a.partial_cmp(b).unwrap());
                med.insert((case, protocol), times[times.len() / 2]);
            }
        }
        assert!(
            med[&("near", Protocol::ODoH)] > med[&("near", Protocol::DoH)] + 1.0,
            "near: odoh {} vs doh {}",
            med[&("near", Protocol::ODoH)],
            med[&("near", Protocol::DoH)]
        );
        assert!(
            med[&("far", Protocol::ODoH)] < med[&("far", Protocol::DoH)],
            "far: odoh {} vs doh {}",
            med[&("far", Protocol::ODoH)],
            med[&("far", Protocol::DoH)]
        );
    }

    #[test]
    fn odoh_blackholed_target_surfaces_as_http_error() {
        let prober = Prober::new();
        let mut t = target("chewbacca.meganerd.nl"); // mostly blackholed
        let mut rng = SimRng::from_seed(9);
        let cfg = ProbeConfig {
            protocol: Protocol::ODoH,
            ..ProbeConfig::default()
        };
        let mut http_errors = 0;
        for i in 0..40 {
            let (o, _) = prober.probe(
                &client(),
                &mut t,
                &domain(),
                SimTime::from_nanos(i * 3_600_000_000_000),
                false,
                cfg,
                &mut rng,
            );
            if let ProbeOutcome::Failure { kind, .. } = o {
                if kind == ProbeErrorKind::HttpStatus {
                    http_errors += 1;
                }
            }
        }
        // Through a relay, a dead target looks like a 5xx from the relay.
        assert!(http_errors > 10, "{http_errors}/40 relay 5xx");
    }

    #[test]
    fn deterministic_probes() {
        let prober = Prober::new();
        let run = |seed: u64| {
            let mut t = target("dns.google");
            let mut rng = SimRng::from_seed(seed);
            let (o, p) = prober.probe(
                &client(),
                &mut t,
                &domain(),
                SimTime::ZERO,
                false,
                ProbeConfig::default(),
                &mut rng,
            );
            (o, p)
        };
        assert_eq!(run(11), run(11));
    }
}
