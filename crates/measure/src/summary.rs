//! Streaming campaign analysis: per-(vantage, resolver) medians and
//! moments computed in one pass with O(1) memory per cell — how the tool
//! digests a paper-scale (multi-million-probe) campaign without holding
//! every record.

use std::collections::BTreeMap;

use edns_stats::{P2Quantile, RunningMoments};
use obs::Label;

use crate::results::{ProbeOutcome, ProbeRecord};

/// Streaming statistics for one (vantage, resolver) cell.
#[derive(Debug)]
pub struct CellStats {
    /// Successful probes.
    pub successes: u64,
    /// Failed probes.
    pub failures: u64,
    /// Streaming median of response times, ms.
    pub median: P2Quantile,
    /// Streaming p95 of response times, ms.
    pub p95: P2Quantile,
    /// Running moments of response times, ms.
    pub moments: RunningMoments,
    /// Running moments of ping RTTs, ms.
    pub ping: RunningMoments,
}

impl Default for CellStats {
    fn default() -> Self {
        CellStats {
            successes: 0,
            failures: 0,
            median: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            moments: RunningMoments::new(),
            ping: RunningMoments::new(),
        }
    }
}

impl CellStats {
    /// Probe availability for the cell.
    pub fn availability(&self) -> f64 {
        let total = self.successes + self.failures;
        if total == 0 {
            1.0
        } else {
            self.successes as f64 / total as f64
        }
    }
}

/// One-pass analyzer over probe records. Cells are keyed by interned
/// labels ([`Label`] orders like its string), so observing a record
/// allocates nothing once its cell exists.
#[derive(Debug, Default)]
pub struct StreamingSummary {
    cells: BTreeMap<(Label, Label), CellStats>,
}

impl StreamingSummary {
    /// Creates an empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one record.
    pub fn observe(&mut self, record: &ProbeRecord) {
        let key = (record.vantage_id(), record.resolver_id());
        let cell = self.cells.entry(key).or_default();
        match &record.outcome {
            ProbeOutcome::Success { timings, .. } => {
                cell.successes += 1;
                let ms = timings.total().as_millis_f64();
                cell.median.observe(ms);
                cell.p95.observe(ms);
                cell.moments.observe(ms);
            }
            ProbeOutcome::Failure { .. } => cell.failures += 1,
        }
        if let Some(p) = record.ping {
            cell.ping.observe(p.as_millis_f64());
        }
    }

    /// Consumes many records.
    pub fn observe_all<'a>(&mut self, records: impl IntoIterator<Item = &'a ProbeRecord>) {
        for r in records {
            self.observe(r);
        }
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell for (vantage, resolver), if populated. Never interns:
    /// labels this summary has not seen cannot name a populated cell.
    pub fn cell(&self, vantage: &str, resolver: &str) -> Option<&CellStats> {
        let key = (Label::find(vantage)?, Label::find(resolver)?);
        self.cells.get(&key)
    }

    /// Iterates `(vantage, resolver, stats)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &CellStats)> {
        self.cells
            .iter()
            .map(|((v, r), c)| (v.as_str(), r.as_str(), c))
    }

    /// The streaming median for a cell, ms.
    pub fn median_ms(&self, vantage: &str, resolver: &str) -> Option<f64> {
        self.cell(vantage, resolver)?.median.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignResult};
    use crate::config::CampaignConfig;

    fn result() -> CampaignResult {
        let entries = ["dns.google", "doh.ffmuc.net", "chewbacca.meganerd.nl"]
            .into_iter()
            .map(|h| catalog::resolvers::find(h).unwrap())
            .collect();
        Campaign::with_resolvers(CampaignConfig::quick(3, 20), entries).run()
    }

    #[test]
    fn streaming_median_matches_batch_median_closely() {
        let result = result();
        let mut s = StreamingSummary::new();
        s.observe_all(&result.records);

        // Batch median for comparison.
        let batch: Vec<f64> = result
            .records
            .iter()
            .filter(|r| r.vantage() == "ec2-ohio" && r.resolver() == "dns.google")
            .filter_map(|r| r.outcome.response_time())
            .map(|d| d.as_millis_f64())
            .collect();
        let batch_median = edns_stats::median(&batch).unwrap();
        let streaming = s.median_ms("ec2-ohio", "dns.google").unwrap();
        assert!(
            (streaming - batch_median).abs() / batch_median < 0.10,
            "streaming {streaming} vs batch {batch_median}"
        );
    }

    #[test]
    fn availability_per_cell() {
        let result = result();
        let mut s = StreamingSummary::new();
        s.observe_all(&result.records);
        let good = s.cell("ec2-ohio", "dns.google").unwrap();
        assert!(good.availability() > 0.95);
        let dead = s.cell("ec2-ohio", "chewbacca.meganerd.nl").unwrap();
        assert!(dead.availability() < 0.5);
        // 7 vantages × 3 resolvers.
        assert_eq!(s.len(), 21);
    }

    #[test]
    fn ping_moments_populated_for_responders() {
        let result = result();
        let mut s = StreamingSummary::new();
        s.observe_all(&result.records);
        let cell = s.cell("ec2-frankfurt", "dns.google").unwrap();
        assert!(cell.ping.count() > 0);
        assert!(cell.ping.mean().unwrap() > 0.0);
    }

    #[test]
    fn p95_at_least_median() {
        let result = result();
        let mut s = StreamingSummary::new();
        s.observe_all(&result.records);
        for (v, r, cell) in s.iter() {
            if let (Some(m), Some(p)) = (cell.median.estimate(), cell.p95.estimate()) {
                assert!(p >= m - 1e-6, "{v}/{r}: p95 {p} < median {m}");
            }
        }
    }

    #[test]
    fn empty_summary() {
        let s = StreamingSummary::new();
        assert!(s.is_empty());
        assert!(s.median_ms("x", "y").is_none());
    }
}
