//! The 12-octet DNS message header (RFC 1035 §4.1.1).

use crate::constants::{Opcode, Rcode};
use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// The flag bits and 4-bit fields packed into the header's second 16-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// QR: false for queries, true for responses.
    pub response: bool,
    /// The operation requested.
    pub opcode: Opcode,
    /// AA: the responding server is authoritative for the zone.
    pub authoritative: bool,
    /// TC: the message was truncated to fit the transport.
    pub truncated: bool,
    /// RD: the client asks the server to recurse.
    pub recursion_desired: bool,
    /// RA: the server offers recursion.
    pub recursion_available: bool,
    /// AD: all data was authenticated (DNSSEC, RFC 4035).
    pub authentic_data: bool,
    /// CD: the client disables DNSSEC validation at the server.
    pub checking_disabled: bool,
    /// The 4-bit response code carried in the basic header. Extended rcode
    /// bits, if any, live in the OPT record and are merged by
    /// [`crate::Message::rcode`].
    pub rcode: Rcode,
}

impl Flags {
    /// Packs the flags into the wire's 16-bit representation.
    pub fn to_u16(self) -> u16 {
        let mut v = 0u16;
        if self.response {
            v |= 1 << 15;
        }
        v |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            v |= 1 << 10;
        }
        if self.truncated {
            v |= 1 << 9;
        }
        if self.recursion_desired {
            v |= 1 << 8;
        }
        if self.recursion_available {
            v |= 1 << 7;
        }
        // bit 6 is Z, must be zero.
        if self.authentic_data {
            v |= 1 << 5;
        }
        if self.checking_disabled {
            v |= 1 << 4;
        }
        v |= self.rcode.low_bits() as u16;
        v
    }

    /// Unpacks the wire's 16-bit representation.
    pub fn from_u16(v: u16) -> Self {
        Flags {
            response: v & (1 << 15) != 0,
            opcode: Opcode::from_u8(((v >> 11) & 0x0F) as u8),
            authoritative: v & (1 << 10) != 0,
            truncated: v & (1 << 9) != 0,
            recursion_desired: v & (1 << 8) != 0,
            recursion_available: v & (1 << 7) != 0,
            authentic_data: v & (1 << 5) != 0,
            checking_disabled: v & (1 << 4) != 0,
            rcode: Rcode::from_u16(v & 0x0F),
        }
    }
}

/// The full 12-octet header: transaction id, flags, and section counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction identifier echoed by the server.
    ///
    /// RFC 8484 §4.1 recommends DoH clients set this to 0 to maximise HTTP
    /// cache hits; our DoH client does exactly that.
    pub id: u16,
    /// Flag bits.
    pub flags: Flags,
    /// Number of questions.
    pub qdcount: u16,
    /// Number of answer records.
    pub ancount: u16,
    /// Number of authority records.
    pub nscount: u16,
    /// Number of additional records (including OPT).
    pub arcount: u16,
}

/// Wire size of the header.
pub const HEADER_LEN: usize = 12;

impl Header {
    /// Encodes the header.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        w.write_u16(self.id)?;
        w.write_u16(self.flags.to_u16())?;
        w.write_u16(self.qdcount)?;
        w.write_u16(self.ancount)?;
        w.write_u16(self.nscount)?;
        w.write_u16(self.arcount)
    }

    /// Decodes the header.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Header {
            id: r.read_u16("header id")?,
            flags: Flags::from_u16(r.read_u16("header flags")?),
            qdcount: r.read_u16("header qdcount")?,
            ancount: r.read_u16("header ancount")?,
            nscount: r.read_u16("header nscount")?,
            arcount: r.read_u16("header arcount")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_round_trip_all_bits() {
        // Every assignable bit pattern must survive the round trip
        // (bit 6 / Z is reserved and always zero).
        for v in 0u16..=0xFFFF {
            let v = v & !(1 << 6); // mask the Z bit
            let f = Flags::from_u16(v);
            assert_eq!(f.to_u16(), v, "flags {v:#06x} failed round trip");
        }
    }

    #[test]
    fn typical_query_flags() {
        let f = Flags {
            recursion_desired: true,
            ..Flags::default()
        };
        assert_eq!(f.to_u16(), 0x0100);
    }

    #[test]
    fn typical_response_flags() {
        let f = Flags {
            response: true,
            recursion_desired: true,
            recursion_available: true,
            ..Flags::default()
        };
        assert_eq!(f.to_u16(), 0x8180);
    }

    #[test]
    fn header_encode_decode() {
        let h = Header {
            id: 0xBEEF,
            flags: Flags::from_u16(0x8180),
            qdcount: 1,
            ancount: 2,
            nscount: 3,
            arcount: 4,
        };
        let mut w = Writer::new();
        h.encode(&mut w).unwrap();
        assert_eq!(w.len(), HEADER_LEN);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn header_decode_truncated() {
        let mut r = Reader::new(&[0u8; 11]);
        assert!(Header::decode(&mut r).is_err());
    }

    #[test]
    fn servfail_rcode_survives() {
        let f = Flags {
            response: true,
            rcode: Rcode::ServFail,
            ..Flags::default()
        };
        let back = Flags::from_u16(f.to_u16());
        assert_eq!(back.rcode, Rcode::ServFail);
    }
}
