//! Error type shared by every encoder and decoder in the crate.

use std::fmt;

/// An error raised while encoding or decoding DNS wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete field could be read.
    Truncated {
        /// What was being decoded when the input ran out.
        expected: &'static str,
    },
    /// A domain-name label exceeded 63 octets.
    LabelTooLong(usize),
    /// A domain name exceeded 255 octets in wire form.
    NameTooLong(usize),
    /// A compression pointer pointed forward or formed a loop.
    BadPointer {
        /// Offset of the offending pointer.
        at: usize,
        /// Target offset of the pointer.
        target: usize,
    },
    /// Too many compression pointers were followed for one name.
    PointerLimit,
    /// An unknown label type (high bits `01` or `10`) was encountered.
    BadLabelType(u8),
    /// A text field contained a byte that is not permitted there.
    InvalidText {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// The rdata length prefix disagreed with the decoded rdata size.
    RdataLengthMismatch {
        /// Declared RDLENGTH.
        declared: usize,
        /// Number of octets actually consumed.
        consumed: usize,
    },
    /// The message would exceed the 65,535-octet DNS message limit.
    MessageTooLong(usize),
    /// A count field in the header promised more records than the body holds.
    CountMismatch {
        /// The section whose count was wrong.
        section: &'static str,
    },
    /// base64url input contained an invalid character or impossible length.
    BadBase64 {
        /// Byte offset of the first invalid character, if known.
        at: Option<usize>,
    },
    /// Trailing bytes remained after the structure was fully decoded.
    TrailingBytes(usize),
    /// An EDNS OPT record appeared somewhere other than the additional section,
    /// or more than one OPT record was present.
    MalformedEdns(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { expected } => {
                write!(f, "input truncated while reading {expected}")
            }
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadPointer { at, target } => {
                write!(f, "bad compression pointer at {at} targeting {target}")
            }
            WireError::PointerLimit => write!(f, "too many compression pointers in one name"),
            WireError::BadLabelType(b) => write!(f, "unsupported label type {b:#04x}"),
            WireError::InvalidText { reason } => write!(f, "invalid text field: {reason}"),
            WireError::RdataLengthMismatch { declared, consumed } => write!(
                f,
                "rdata length mismatch: declared {declared}, consumed {consumed}"
            ),
            WireError::MessageTooLong(n) => {
                write!(f, "message of {n} octets exceeds 65535-octet limit")
            }
            WireError::CountMismatch { section } => {
                write!(f, "header count disagrees with {section} section")
            }
            WireError::BadBase64 { at: Some(i) } => {
                write!(f, "invalid base64url character at offset {i}")
            }
            WireError::BadBase64 { at: None } => write!(f, "invalid base64url input length"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::MalformedEdns(why) => write!(f, "malformed EDNS: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated { expected: "header" };
        assert!(e.to_string().contains("header"));
        let e = WireError::RdataLengthMismatch {
            declared: 10,
            consumed: 8,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('8'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WireError::PointerLimit, WireError::PointerLimit);
        assert_ne!(
            WireError::LabelTooLong(64),
            WireError::NameTooLong(64),
            "variants with equal payloads must still differ"
        );
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(WireError::PointerLimit);
        assert!(e.to_string().contains("pointer"));
    }
}
