//! DNS-over-TCP/TLS message framing (RFC 1035 §4.2.2, RFC 7858): each
//! message is prefixed with a two-octet big-endian length. Used by the DoT
//! client and by anything streaming DNS messages over a byte pipe.

use crate::error::WireError;

/// Frames one DNS message for a stream transport.
pub fn frame(message: &[u8]) -> Result<Vec<u8>, WireError> {
    if message.len() > u16::MAX as usize {
        return Err(WireError::MessageTooLong(message.len()));
    }
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&(message.len() as u16).to_be_bytes());
    out.extend_from_slice(message);
    Ok(out)
}

/// The result of attempting to deframe from a stream buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Deframed {
    /// A complete message, plus the number of octets consumed.
    Complete {
        /// The message body (without the length prefix).
        message: Vec<u8>,
        /// Octets consumed from the buffer (2 + message length).
        consumed: usize,
    },
    /// More octets are needed before a full message is available.
    NeedMore {
        /// How many more octets (a lower bound).
        needed: usize,
    },
}

/// Attempts to extract one framed message from the front of `buf`.
pub fn deframe(buf: &[u8]) -> Deframed {
    if buf.len() < 2 {
        return Deframed::NeedMore {
            needed: 2 - buf.len(),
        };
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    if buf.len() < 2 + len {
        return Deframed::NeedMore {
            needed: 2 + len - buf.len(),
        };
    }
    Deframed::Complete {
        message: buf[2..2 + len].to_vec(),
        consumed: 2 + len,
    }
}

/// A stateful stream deframer: feed it arbitrary chunks, get messages out.
#[derive(Debug, Default)]
pub struct StreamDeframer {
    buf: Vec<u8>,
}

impl StreamDeframer {
    /// Creates an empty deframer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Octets currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends received octets and drains every complete message.
    pub fn feed(&mut self, chunk: &[u8]) -> Vec<Vec<u8>> {
        self.buf.extend_from_slice(chunk);
        let mut out = Vec::new();
        while let Deframed::Complete { message, consumed } = deframe(&self.buf) {
            self.buf.drain(..consumed);
            out.push(message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageBuilder, Name, RecordType};

    fn sample() -> Vec<u8> {
        MessageBuilder::query(7, Name::parse("example.com").unwrap(), RecordType::A)
            .build()
            .encode()
            .unwrap()
    }

    #[test]
    fn frame_deframe_round_trip() {
        let msg = sample();
        let framed = frame(&msg).unwrap();
        assert_eq!(framed.len(), msg.len() + 2);
        match deframe(&framed) {
            Deframed::Complete { message, consumed } => {
                assert_eq!(message, msg);
                assert_eq!(consumed, framed.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_input_reports_needed() {
        let framed = frame(&sample()).unwrap();
        assert_eq!(deframe(&framed[..1]), Deframed::NeedMore { needed: 1 });
        match deframe(&framed[..5]) {
            Deframed::NeedMore { needed } => assert_eq!(needed, framed.len() - 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_length_message_allowed() {
        // A zero-length frame is wire-legal (though a protocol error upstack).
        let framed = frame(&[]).unwrap();
        assert_eq!(
            deframe(&framed),
            Deframed::Complete {
                message: vec![],
                consumed: 2
            }
        );
    }

    #[test]
    fn oversized_message_rejected() {
        assert!(frame(&vec![0u8; 70_000]).is_err());
    }

    #[test]
    fn stream_deframer_handles_fragmentation_and_coalescing() {
        let m1 = sample();
        let m2 = {
            let mut m = sample();
            m[0] = 9; // different id
            m
        };
        let mut wire = frame(&m1).unwrap();
        wire.extend(frame(&m2).unwrap());

        // Feed one byte at a time: messages pop out exactly when complete.
        let mut d = StreamDeframer::new();
        let mut got = Vec::new();
        for &b in &wire {
            got.extend(d.feed(&[b]));
        }
        assert_eq!(got, vec![m1.clone(), m2.clone()]);
        assert_eq!(d.buffered(), 0);

        // Feed everything at once: both messages in one call.
        let mut d = StreamDeframer::new();
        assert_eq!(d.feed(&wire), vec![m1, m2]);
    }
}
