//! The question section entry (RFC 1035 §4.1.2).

use std::fmt;

use crate::constants::{RecordClass, RecordType};
use crate::error::WireError;
use crate::name::{Name, NameCompressor};
use crate::wire::{Reader, Writer};

/// One entry of the question section: what the client is asking.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// The name being queried.
    pub name: Name,
    /// The requested record type.
    pub rtype: RecordType,
    /// The requested class, almost always `IN`.
    pub rclass: RecordClass,
}

impl Question {
    /// Convenience constructor for the common `IN` case.
    pub fn new(name: Name, rtype: RecordType) -> Self {
        Question {
            name,
            rtype,
            rclass: RecordClass::IN,
        }
    }

    /// Encodes with name compression.
    pub fn encode(&self, w: &mut Writer, c: &mut NameCompressor) -> Result<(), WireError> {
        self.name.encode_compressed(w, c)?;
        w.write_u16(self.rtype.to_u16())?;
        w.write_u16(self.rclass.to_u16())
    }

    /// Decodes one question.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = Name::decode(r)?;
        let rtype = RecordType::from_u16(r.read_u16("question type")?);
        let rclass = RecordClass::from_u16(r.read_u16("question class")?);
        Ok(Question {
            name,
            rtype,
            rclass,
        })
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.rclass, self.rtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let q = Question::new(Name::parse("example.com").unwrap(), RecordType::AAAA);
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        q.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Question::decode(&mut r).unwrap(), q);
        assert!(r.is_empty());
    }

    #[test]
    fn display_matches_dig_style() {
        let q = Question::new(Name::parse("google.com").unwrap(), RecordType::A);
        assert_eq!(q.to_string(), "google.com. IN A");
    }

    #[test]
    fn decode_truncated_fails() {
        // Name but no type/class.
        let bytes = b"\x03com\x00\x00";
        let mut r = Reader::new(bytes);
        assert!(Question::decode(&mut r).is_err());
    }
}
