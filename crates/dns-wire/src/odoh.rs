//! Oblivious DoH message framing (RFC 9230 §6).
//!
//! The four `odoh-target-*.alekberg.net` rows of the paper's figures are
//! ODoH targets: clients encrypt queries to the target's public key and
//! send them through an oblivious relay, so the relay sees the client but
//! not the query, and the target sees the query but not the client.
//!
//! This module implements the `ObliviousDoHMessage` wire structure exactly:
//!
//! ```text
//! struct {
//!     uint8  message_type;      // 1 = query, 2 = response
//!     opaque key_id<0..2^16-1>;
//!     opaque encrypted_message<0..2^16-1>;
//! } ObliviousDoHMessage;
//! ```
//!
//! The *encapsulation* uses a size-faithful stand-in for HPKE: ciphertext =
//! KEM share (32 octets, queries only) ‖ payload ⊕ keystream ‖ 16-octet tag.
//! It preserves every length a real implementation puts on the wire —
//! which is what the latency simulation needs — but it is **not
//! cryptographically secure** and must never be used outside simulation.

use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// Message type octet for an encrypted query.
pub const MESSAGE_TYPE_QUERY: u8 = 1;
/// Message type octet for an encrypted response.
pub const MESSAGE_TYPE_RESPONSE: u8 = 2;

/// X25519 KEM encapsulated-share size carried in query ciphertexts.
pub const KEM_SHARE_LEN: usize = 32;
/// AEAD tag size.
pub const AEAD_TAG_LEN: usize = 16;

/// A (de)framed ODoH message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObliviousMessage {
    /// `MESSAGE_TYPE_QUERY` or `MESSAGE_TYPE_RESPONSE`.
    pub message_type: u8,
    /// Identifies the target key configuration used.
    pub key_id: Vec<u8>,
    /// The sealed payload.
    pub encrypted_message: Vec<u8>,
}

impl ObliviousMessage {
    /// Encodes to wire form.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = Writer::with_capacity(5 + self.key_id.len() + self.encrypted_message.len());
        w.write_u8(self.message_type)?;
        if self.key_id.len() > u16::MAX as usize {
            return Err(WireError::InvalidText {
                reason: "ODoH key_id exceeds 65535 octets",
            });
        }
        w.write_u16(self.key_id.len() as u16)?;
        w.write_slice(&self.key_id)?;
        if self.encrypted_message.len() > u16::MAX as usize {
            return Err(WireError::InvalidText {
                reason: "ODoH encrypted_message exceeds 65535 octets",
            });
        }
        w.write_u16(self.encrypted_message.len() as u16)?;
        w.write_slice(&self.encrypted_message)?;
        Ok(w.into_bytes())
    }

    /// Decodes from wire form, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let message_type = r.read_u8("ODoH message type")?;
        let kid_len = r.read_u16("ODoH key_id length")? as usize;
        let key_id = r.read_slice(kid_len, "ODoH key_id")?.to_vec();
        let enc_len = r.read_u16("ODoH message length")? as usize;
        let encrypted_message = r.read_slice(enc_len, "ODoH encrypted message")?.to_vec();
        if !r.is_empty() {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(ObliviousMessage {
            message_type,
            key_id,
            encrypted_message,
        })
    }

    /// Total wire size.
    pub fn wire_len(&self) -> usize {
        1 + 2 + self.key_id.len() + 2 + self.encrypted_message.len()
    }
}

/// A target key configuration (simulation stand-in: the key *is* the seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetKey {
    /// Key identifier advertised in DNS (ODoH HTTPS records).
    pub key_id: [u8; 8],
    /// Keystream seed (stand-in for the HPKE private key).
    pub seed: u64,
}

impl TargetKey {
    /// Derives a key configuration from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut key_id = [0u8; 8];
        key_id.copy_from_slice(&seed.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes());
        TargetKey { key_id, seed }
    }
}

/// Size-faithful keystream; see the module docs for the security caveat.
fn keystream_byte(seed: u64, kem: &[u8], i: usize) -> u8 {
    let mut x = seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    for (j, &b) in kem.iter().enumerate() {
        x = x.wrapping_add((b as u64) << (8 * (j % 8)));
    }
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x ^ (x >> 27)) as u8
}

fn seal(seed: u64, kem: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + AEAD_TAG_LEN);
    for (i, &b) in plaintext.iter().enumerate() {
        out.push(b ^ keystream_byte(seed, kem, i));
    }
    // Stand-in tag: a keyed checksum so tampering is detectable in tests.
    let mut tag = [0u8; AEAD_TAG_LEN];
    for (i, &b) in out.iter().enumerate() {
        tag[i % AEAD_TAG_LEN] = tag[i % AEAD_TAG_LEN]
            .wrapping_mul(31)
            .wrapping_add(b ^ keystream_byte(seed, kem, usize::MAX - i));
    }
    out.extend_from_slice(&tag);
    out
}

fn open(seed: u64, kem: &[u8], sealed: &[u8]) -> Result<Vec<u8>, WireError> {
    if sealed.len() < AEAD_TAG_LEN {
        return Err(WireError::Truncated {
            expected: "ODoH AEAD tag",
        });
    }
    let (body, tag) = sealed.split_at(sealed.len() - AEAD_TAG_LEN);
    let mut expect = [0u8; AEAD_TAG_LEN];
    for (i, &b) in body.iter().enumerate() {
        expect[i % AEAD_TAG_LEN] = expect[i % AEAD_TAG_LEN]
            .wrapping_mul(31)
            .wrapping_add(b ^ keystream_byte(seed, kem, usize::MAX - i));
    }
    if expect != tag {
        return Err(WireError::InvalidText {
            reason: "ODoH authentication failed",
        });
    }
    Ok(body
        .iter()
        .enumerate()
        .map(|(i, &b)| b ^ keystream_byte(seed, kem, i))
        .collect())
}

/// Seals a DNS query for `key`, producing the client→target message.
/// `kem_entropy` stands in for the ephemeral KEM share.
pub fn seal_query(key: &TargetKey, dns_query: &[u8], kem_entropy: u64) -> ObliviousMessage {
    let mut kem = vec![0u8; KEM_SHARE_LEN];
    for (i, b) in kem.iter_mut().enumerate() {
        *b = keystream_byte(kem_entropy, &[], i);
    }
    let mut encrypted_message = kem.clone();
    encrypted_message.extend_from_slice(&seal(key.seed, &kem, dns_query));
    ObliviousMessage {
        message_type: MESSAGE_TYPE_QUERY,
        key_id: key.key_id.to_vec(),
        encrypted_message,
    }
}

/// Opens a client→target message at the target.
/// Returns the DNS query and the KEM share (needed to seal the response).
pub fn open_query(
    key: &TargetKey,
    msg: &ObliviousMessage,
) -> Result<(Vec<u8>, Vec<u8>), WireError> {
    if msg.message_type != MESSAGE_TYPE_QUERY {
        return Err(WireError::InvalidText {
            reason: "not an ODoH query",
        });
    }
    if msg.key_id != key.key_id {
        return Err(WireError::InvalidText {
            reason: "unknown ODoH key id",
        });
    }
    if msg.encrypted_message.len() < KEM_SHARE_LEN {
        return Err(WireError::Truncated {
            expected: "ODoH KEM share",
        });
    }
    let (kem, sealed) = msg.encrypted_message.split_at(KEM_SHARE_LEN);
    let plain = open(key.seed, kem, sealed)?;
    Ok((plain, kem.to_vec()))
}

/// Seals a DNS response at the target (keyed by the query's KEM share).
pub fn seal_response(key: &TargetKey, kem: &[u8], dns_response: &[u8]) -> ObliviousMessage {
    ObliviousMessage {
        message_type: MESSAGE_TYPE_RESPONSE,
        // Responses carry an empty key id (RFC 9230 §6.2).
        key_id: Vec::new(),
        encrypted_message: seal(key.seed ^ 0x5DEECE66D, kem, dns_response),
    }
}

/// Opens a target→client response at the client.
pub fn open_response(
    key: &TargetKey,
    kem: &[u8],
    msg: &ObliviousMessage,
) -> Result<Vec<u8>, WireError> {
    if msg.message_type != MESSAGE_TYPE_RESPONSE {
        return Err(WireError::InvalidText {
            reason: "not an ODoH response",
        });
    }
    open(key.seed ^ 0x5DEECE66D, kem, &msg.encrypted_message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageBuilder, Name, RecordType};

    fn query_bytes() -> Vec<u8> {
        MessageBuilder::query(0, Name::parse("example.com").unwrap(), RecordType::A)
            .recursion_desired(true)
            .build()
            .encode()
            .unwrap()
    }

    #[test]
    fn framing_round_trip() {
        let m = ObliviousMessage {
            message_type: MESSAGE_TYPE_QUERY,
            key_id: vec![1, 2, 3],
            encrypted_message: vec![9; 50],
        };
        let wire = m.encode().unwrap();
        assert_eq!(wire.len(), m.wire_len());
        assert_eq!(ObliviousMessage::decode(&wire).unwrap(), m);
    }

    #[test]
    fn framing_rejects_truncation_and_trailing() {
        let m = ObliviousMessage {
            message_type: MESSAGE_TYPE_RESPONSE,
            key_id: vec![],
            encrypted_message: vec![7; 20],
        };
        let mut wire = m.encode().unwrap();
        assert!(ObliviousMessage::decode(&wire[..wire.len() - 1]).is_err());
        wire.push(0);
        assert!(matches!(
            ObliviousMessage::decode(&wire),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn seal_open_query_round_trip() {
        let key = TargetKey::from_seed(42);
        let q = query_bytes();
        let msg = seal_query(&key, &q, 7);
        // Ciphertext hides the plaintext and carries KEM + tag overhead.
        assert_eq!(
            msg.encrypted_message.len(),
            KEM_SHARE_LEN + q.len() + AEAD_TAG_LEN
        );
        assert!(!msg
            .encrypted_message
            .windows(q.len().min(12))
            .any(|w| w == &q[..q.len().min(12)]));
        let (plain, kem) = open_query(&key, &msg).unwrap();
        assert_eq!(plain, q);
        assert_eq!(kem.len(), KEM_SHARE_LEN);
    }

    #[test]
    fn response_round_trip() {
        let key = TargetKey::from_seed(1);
        let q = query_bytes();
        let qmsg = seal_query(&key, &q, 99);
        let (_, kem) = open_query(&key, &qmsg).unwrap();
        let resp = b"fake-dns-response".to_vec();
        let rmsg = seal_response(&key, &kem, &resp);
        assert!(rmsg.key_id.is_empty(), "responses carry empty key id");
        assert_eq!(open_response(&key, &kem, &rmsg).unwrap(), resp);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let key = TargetKey::from_seed(1);
        let other = TargetKey::from_seed(2);
        let msg = seal_query(&key, &query_bytes(), 7);
        assert!(open_query(&other, &msg).is_err());
    }

    #[test]
    fn tampering_is_detected() {
        let key = TargetKey::from_seed(5);
        let mut msg = seal_query(&key, &query_bytes(), 7);
        let last = msg.encrypted_message.len() - 1;
        msg.encrypted_message[last] ^= 0xFF;
        assert!(open_query(&key, &msg).is_err());
    }

    #[test]
    fn type_confusion_is_rejected() {
        let key = TargetKey::from_seed(5);
        let mut msg = seal_query(&key, &query_bytes(), 7);
        msg.message_type = MESSAGE_TYPE_RESPONSE;
        assert!(open_query(&key, &msg).is_err());
        assert!(open_response(&key, &[0; 32], &msg).is_err());
    }

    #[test]
    fn distinct_kem_entropy_gives_distinct_ciphertexts() {
        let key = TargetKey::from_seed(11);
        let q = query_bytes();
        let a = seal_query(&key, &q, 1);
        let b = seal_query(&key, &q, 2);
        assert_ne!(a.encrypted_message, b.encrypted_message);
    }
}
