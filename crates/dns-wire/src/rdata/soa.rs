//! SOA rdata (RFC 1035 §3.3.13).

use std::fmt;

use crate::error::WireError;
use crate::name::Name;
use crate::wire::{Reader, Writer};

/// Start-of-authority record data: zone apex metadata and timers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaData {
    /// Primary name server for the zone.
    pub mname: Name,
    /// Mailbox of the person responsible (encoded as a name).
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval after failed refresh, seconds.
    pub retry: u32,
    /// Expiry of zone data at secondaries, seconds.
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308), seconds.
    pub minimum: u32,
}

impl SoaData {
    /// Encodes the SOA body.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        self.mname.encode_uncompressed(w)?;
        self.rname.encode_uncompressed(w)?;
        w.write_u32(self.serial)?;
        w.write_u32(self.refresh)?;
        w.write_u32(self.retry)?;
        w.write_u32(self.expire)?;
        w.write_u32(self.minimum)
    }

    /// Decodes the SOA body.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SoaData {
            mname: Name::decode(r)?,
            rname: Name::decode(r)?,
            serial: r.read_u32("SOA serial")?,
            refresh: r.read_u32("SOA refresh")?,
            retry: r.read_u32("SOA retry")?,
            expire: r.read_u32("SOA expire")?,
            minimum: r.read_u32("SOA minimum")?,
        })
    }
}

impl fmt::Display for SoaData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {}",
            self.mname,
            self.rname,
            self.serial,
            self.refresh,
            self.retry,
            self.expire,
            self.minimum
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SoaData {
        SoaData {
            mname: Name::parse("ns1.example.com").unwrap(),
            rname: Name::parse("hostmaster.example.com").unwrap(),
            serial: 2024050901,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }
    }

    #[test]
    fn round_trip() {
        let soa = sample();
        let mut w = Writer::new();
        soa.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(SoaData::decode(&mut r).unwrap(), soa);
        assert!(r.is_empty());
    }

    #[test]
    fn display_contains_all_fields() {
        let s = sample().to_string();
        assert!(s.contains("ns1.example.com."));
        assert!(s.contains("2024050901"));
        assert!(s.contains("300"));
    }

    #[test]
    fn truncated_decode_fails() {
        let soa = sample();
        let mut w = Writer::new();
        soa.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 2]);
        assert!(SoaData::decode(&mut r).is_err());
    }
}
