//! Typed record data (RDATA) for the record types the measurement stack
//! needs, plus an opaque fallback for everything else.

mod caa;
mod opt;
mod soa;
mod srv;
mod svcb;
mod txt;

pub use caa::CaaData;
pub use opt::{option_code, OptData, OptOption};
pub use soa::SoaData;
pub use srv::SrvData;
pub use svcb::{SvcParam, SvcbData};
pub use txt::TxtData;

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::constants::RecordType;
use crate::error::WireError;
use crate::name::{Name, NameCompressor};
use crate::wire::{Reader, Writer};

/// Typed record data.
///
/// Name-bearing rdata (CNAME, NS, PTR, MX, SOA, SRV) encodes its names
/// *without* compression, following RFC 3597 §4's rule that servers must not
/// compress rdata of types unknown to the peer; modern encoders compress only
/// owner names. Decoding still accepts compressed rdata names for
/// compatibility with legacy responders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Alias target.
    Cname(Name),
    /// Delegated name server.
    Ns(Name),
    /// Reverse-mapping pointer.
    Ptr(Name),
    /// Mail exchange: preference then exchange host.
    Mx {
        /// Lower values are preferred.
        preference: u16,
        /// The mail host.
        exchange: Name,
    },
    /// Start of authority.
    Soa(SoaData),
    /// One or more text strings.
    Txt(TxtData),
    /// Service locator.
    Srv(SrvData),
    /// Certification authority authorization.
    Caa(CaaData),
    /// EDNS(0) options (pseudo-record).
    Opt(OptData),
    /// Service binding (SVCB or HTTPS).
    Svcb(SvcbData),
    /// Unknown type carried opaquely (RFC 3597).
    Opaque {
        /// The record type whose rdata this is.
        rtype: RecordType,
        /// Raw rdata octets.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this rdata belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::AAAA,
            RData::Cname(_) => RecordType::CNAME,
            RData::Ns(_) => RecordType::NS,
            RData::Ptr(_) => RecordType::PTR,
            RData::Mx { .. } => RecordType::MX,
            RData::Soa(_) => RecordType::SOA,
            RData::Txt(_) => RecordType::TXT,
            RData::Srv(_) => RecordType::SRV,
            RData::Caa(_) => RecordType::CAA,
            RData::Opt(_) => RecordType::OPT,
            RData::Svcb(d) => {
                if d.https {
                    RecordType::HTTPS
                } else {
                    RecordType::SVCB
                }
            }
            RData::Opaque { rtype, .. } => *rtype,
        }
    }

    /// Encodes the rdata body (no RDLENGTH prefix — the caller patches it).
    pub fn encode(&self, w: &mut Writer, _c: &mut NameCompressor) -> Result<(), WireError> {
        match self {
            RData::A(ip) => w.write_slice(&ip.octets()),
            RData::Aaaa(ip) => w.write_slice(&ip.octets()),
            RData::Cname(n) | RData::Ns(n) | RData::Ptr(n) => n.encode_uncompressed(w),
            RData::Mx {
                preference,
                exchange,
            } => {
                w.write_u16(*preference)?;
                exchange.encode_uncompressed(w)
            }
            RData::Soa(s) => s.encode(w),
            RData::Txt(t) => t.encode(w),
            RData::Srv(s) => s.encode(w),
            RData::Caa(c2) => c2.encode(w),
            RData::Opt(o) => o.encode(w),
            RData::Svcb(s) => s.encode(w),
            RData::Opaque { data, .. } => w.write_slice(data),
        }
    }

    /// Decodes `rdlen` octets of rdata of type `rtype` from `r`.
    ///
    /// The reader must be positioned at the first rdata octet; on success the
    /// cursor sits exactly `rdlen` octets later.
    pub fn decode(r: &mut Reader<'_>, rtype: RecordType, rdlen: usize) -> Result<Self, WireError> {
        let start = r.position();
        if r.remaining() < rdlen {
            return Err(WireError::Truncated { expected: "rdata" });
        }
        let value = match rtype {
            RecordType::A => {
                let o = r.read_slice(4, "A rdata")?;
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RecordType::AAAA => {
                let o = r.read_slice(16, "AAAA rdata")?;
                let mut b = [0u8; 16];
                b.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(b))
            }
            RecordType::CNAME => RData::Cname(Name::decode(r)?),
            RecordType::NS => RData::Ns(Name::decode(r)?),
            RecordType::PTR => RData::Ptr(Name::decode(r)?),
            RecordType::MX => {
                let preference = r.read_u16("MX preference")?;
                let exchange = Name::decode(r)?;
                RData::Mx {
                    preference,
                    exchange,
                }
            }
            RecordType::SOA => RData::Soa(SoaData::decode(r)?),
            RecordType::TXT => RData::Txt(TxtData::decode(r, rdlen)?),
            RecordType::SRV => RData::Srv(SrvData::decode(r)?),
            RecordType::CAA => RData::Caa(CaaData::decode(r, rdlen)?),
            RecordType::OPT => RData::Opt(OptData::decode(r, rdlen)?),
            RecordType::SVCB => RData::Svcb(SvcbData::decode(r, rdlen, false)?),
            RecordType::HTTPS => RData::Svcb(SvcbData::decode(r, rdlen, true)?),
            other => {
                let data = r.read_slice(rdlen, "opaque rdata")?.to_vec();
                RData::Opaque { rtype: other, data }
            }
        };
        let consumed = r.position() - start;
        if consumed != rdlen {
            return Err(WireError::RdataLengthMismatch {
                declared: rdlen,
                consumed,
            });
        }
        Ok(value)
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(ip) => write!(f, "{ip}"),
            RData::Aaaa(ip) => write!(f, "{ip}"),
            RData::Cname(n) | RData::Ns(n) | RData::Ptr(n) => write!(f, "{n}"),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::Soa(s) => write!(f, "{s}"),
            RData::Txt(t) => write!(f, "{t}"),
            RData::Srv(s) => write!(f, "{s}"),
            RData::Caa(c) => write!(f, "{c}"),
            RData::Opt(_) => write!(f, "OPT"),
            RData::Svcb(s) => write!(f, "{s}"),
            RData::Opaque { data, .. } => {
                write!(f, "\\# {}", data.len())?;
                for b in data {
                    write!(f, " {b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rd: &RData) -> RData {
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        rd.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = RData::decode(&mut r, rd.rtype(), bytes.len()).unwrap();
        assert!(r.is_empty());
        back
    }

    #[test]
    fn a_record_round_trip() {
        let rd = RData::A(Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(round_trip(&rd), rd);
        assert_eq!(rd.to_string(), "8.8.8.8");
        assert_eq!(rd.rtype(), RecordType::A);
    }

    #[test]
    fn aaaa_record_round_trip() {
        let rd = RData::Aaaa("2606:4700:4700::1111".parse().unwrap());
        assert_eq!(round_trip(&rd), rd);
        assert_eq!(rd.rtype(), RecordType::AAAA);
    }

    #[test]
    fn cname_ns_ptr_round_trip() {
        for rd in [
            RData::Cname(Name::parse("alias.example.com").unwrap()),
            RData::Ns(Name::parse("ns1.example.com").unwrap()),
            RData::Ptr(Name::parse("host.example.com").unwrap()),
        ] {
            assert_eq!(round_trip(&rd), rd);
        }
    }

    #[test]
    fn mx_round_trip_and_display() {
        let rd = RData::Mx {
            preference: 10,
            exchange: Name::parse("mx.example.com").unwrap(),
        };
        assert_eq!(round_trip(&rd), rd);
        assert_eq!(rd.to_string(), "10 mx.example.com.");
    }

    #[test]
    fn opaque_round_trip() {
        let rd = RData::Opaque {
            rtype: RecordType::Unknown(4242),
            data: vec![1, 2, 3, 4],
        };
        assert_eq!(round_trip(&rd), rd);
        assert_eq!(rd.to_string(), "\\# 4 01 02 03 04");
    }

    #[test]
    fn length_mismatch_detected() {
        // A record with declared rdlen 5 (A consumes 4).
        let bytes = [1u8, 2, 3, 4, 99];
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            RData::decode(&mut r, RecordType::A, 5),
            Err(WireError::RdataLengthMismatch {
                declared: 5,
                consumed: 4
            })
        ));
    }

    #[test]
    fn truncated_rdata_detected() {
        let bytes = [1u8, 2];
        let mut r = Reader::new(&bytes);
        assert!(RData::decode(&mut r, RecordType::A, 4).is_err());
    }
}
