//! SRV rdata (RFC 2782).

use std::fmt;

use crate::error::WireError;
use crate::name::Name;
use crate::wire::{Reader, Writer};

/// Service locator record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrvData {
    /// Lower priority targets are tried first.
    pub priority: u16,
    /// Relative weight among equal-priority targets.
    pub weight: u16,
    /// TCP or UDP port of the service.
    pub port: u16,
    /// Host providing the service.
    pub target: Name,
}

impl SrvData {
    /// Encodes the SRV body.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        w.write_u16(self.priority)?;
        w.write_u16(self.weight)?;
        w.write_u16(self.port)?;
        self.target.encode_uncompressed(w)
    }

    /// Decodes the SRV body.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SrvData {
            priority: r.read_u16("SRV priority")?,
            weight: r.read_u16("SRV weight")?,
            port: r.read_u16("SRV port")?,
            target: Name::decode(r)?,
        })
    }
}

impl fmt::Display for SrvData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.priority, self.weight, self.port, self.target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let srv = SrvData {
            priority: 10,
            weight: 60,
            port: 853,
            target: Name::parse("dot.example.net").unwrap(),
        };
        let mut w = Writer::new();
        srv.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(SrvData::decode(&mut r).unwrap(), srv);
        assert!(r.is_empty());
    }

    #[test]
    fn display() {
        let srv = SrvData {
            priority: 0,
            weight: 5,
            port: 443,
            target: Name::parse("doh.example.net").unwrap(),
        };
        assert_eq!(srv.to_string(), "0 5 443 doh.example.net.");
    }
}
