//! TXT rdata (RFC 1035 §3.3.14): one or more length-prefixed strings.

use std::fmt;

use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// TXT record data: a sequence of `<character-string>`s, each at most 255
/// octets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxtData {
    strings: Vec<Vec<u8>>,
}

impl TxtData {
    /// Builds TXT data from strings, splitting any over-long input into
    /// 255-octet chunks (the convention used by zone-file tooling).
    pub fn new<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for s in strings {
            let bytes = s.as_ref();
            if bytes.is_empty() {
                out.push(Vec::new());
                continue;
            }
            for chunk in bytes.chunks(255) {
                out.push(chunk.to_vec());
            }
        }
        TxtData { strings: out }
    }

    /// The individual character-strings.
    pub fn strings(&self) -> impl Iterator<Item = &[u8]> {
        self.strings.iter().map(|s| s.as_slice())
    }

    /// All strings concatenated, which is how applications usually consume
    /// TXT data.
    pub fn joined(&self) -> Vec<u8> {
        self.strings.concat()
    }

    /// Encodes the TXT body.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        // An empty TXT record still carries one empty character-string.
        if self.strings.is_empty() {
            return w.write_u8(0);
        }
        for s in &self.strings {
            debug_assert!(s.len() <= 255);
            w.write_u8(s.len() as u8)?;
            w.write_slice(s)?;
        }
        Ok(())
    }

    /// Decodes exactly `rdlen` octets of TXT body.
    pub fn decode(r: &mut Reader<'_>, rdlen: usize) -> Result<Self, WireError> {
        let end = r.position() + rdlen;
        let mut strings = Vec::new();
        while r.position() < end {
            let len = r.read_u8("TXT string length")? as usize;
            if r.position() + len > end {
                return Err(WireError::Truncated {
                    expected: "TXT string",
                });
            }
            strings.push(r.read_slice(len, "TXT string")?.to_vec());
        }
        Ok(TxtData { strings })
    }
}

impl fmt::Display for TxtData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.strings {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "\"")?;
            for &b in s {
                if b == b'"' || b == b'\\' {
                    write!(f, "\\{}", b as char)?;
                } else if b.is_ascii_graphic() || b == b' ' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{b:03}")?;
                }
            }
            write!(f, "\"")?;
        }
        if first {
            write!(f, "\"\"")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(t: &TxtData) -> TxtData {
        let mut w = Writer::new();
        t.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = TxtData::decode(&mut r, bytes.len()).unwrap();
        assert!(r.is_empty());
        back
    }

    #[test]
    fn single_string_round_trip() {
        let t = TxtData::new(["v=spf1 -all"]);
        assert_eq!(round_trip(&t), t);
        assert_eq!(t.to_string(), "\"v=spf1 -all\"");
    }

    #[test]
    fn multiple_strings_round_trip() {
        let t = TxtData::new(["a", "b", "c"]);
        assert_eq!(round_trip(&t), t);
        assert_eq!(t.joined(), b"abc");
    }

    #[test]
    fn long_string_is_chunked() {
        let long = "x".repeat(600);
        let t = TxtData::new([long.as_str()]);
        let lens: Vec<usize> = t.strings().map(|s| s.len()).collect();
        assert_eq!(lens, vec![255, 255, 90]);
        assert_eq!(t.joined().len(), 600);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_txt_encodes_one_empty_string() {
        let t = TxtData::default();
        let mut w = Writer::new();
        t.encode(&mut w).unwrap();
        assert_eq!(w.as_slice(), &[0]);
        assert_eq!(t.to_string(), "\"\"");
    }

    #[test]
    fn decode_rejects_string_overrunning_rdlen() {
        // Declared rdlen 3 but the string claims 5 octets.
        let bytes = [5u8, b'a', b'b'];
        let mut r = Reader::new(&bytes);
        assert!(TxtData::decode(&mut r, 3).is_err());
    }

    #[test]
    fn display_escapes_quotes_and_binary() {
        let t = TxtData::new([&b"a\"b\\c\x01"[..]]);
        assert_eq!(t.to_string(), "\"a\\\"b\\\\c\\001\"");
    }
}
