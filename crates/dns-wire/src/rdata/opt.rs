//! EDNS(0) OPT pseudo-record rdata (RFC 6891): a sequence of TLV options.

use std::fmt;

use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// EDNS option codes this crate understands by name.
pub mod option_code {
    /// Name-server identifier (RFC 5001).
    pub const NSID: u16 = 3;
    /// Client subnet (RFC 7871).
    pub const CLIENT_SUBNET: u16 = 8;
    /// Cookie (RFC 7873).
    pub const COOKIE: u16 = 10;
    /// Padding (RFC 7830) — important for encrypted DNS traffic analysis
    /// resistance; RFC 8467 recommends padding DoT/DoH queries to 128 octets.
    pub const PADDING: u16 = 12;
}

/// One EDNS option: a code and opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptOption {
    /// Option code (see [`option_code`]).
    pub code: u16,
    /// Option payload.
    pub data: Vec<u8>,
}

impl OptOption {
    /// An RFC 7830 padding option of `len` zero octets.
    pub fn padding(len: usize) -> Self {
        OptOption {
            code: option_code::PADDING,
            data: vec![0u8; len],
        }
    }
}

/// The rdata of an OPT record: the option list. The fixed fields (payload
/// size, extended rcode, version, DO bit) are carried in the record's class
/// and TTL and live on [`crate::ResourceRecord`]'s wrapper — see
/// [`crate::MessageBuilder::edns_udp_size`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptData {
    /// The options in wire order.
    pub options: Vec<OptOption>,
}

impl OptData {
    /// Encodes the option list.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        for opt in &self.options {
            w.write_u16(opt.code)?;
            if opt.data.len() > u16::MAX as usize {
                return Err(WireError::MalformedEdns("option data exceeds 65535 octets"));
            }
            w.write_u16(opt.data.len() as u16)?;
            w.write_slice(&opt.data)?;
        }
        Ok(())
    }

    /// Decodes exactly `rdlen` octets of options.
    pub fn decode(r: &mut Reader<'_>, rdlen: usize) -> Result<Self, WireError> {
        let end = r.position() + rdlen;
        let mut options = Vec::new();
        while r.position() < end {
            let code = r.read_u16("OPT option code")?;
            let len = r.read_u16("OPT option length")? as usize;
            if r.position() + len > end {
                return Err(WireError::Truncated {
                    expected: "OPT option data",
                });
            }
            let data = r.read_slice(len, "OPT option data")?.to_vec();
            options.push(OptOption { code, data });
        }
        Ok(OptData { options })
    }

    /// Finds the first option with the given code.
    pub fn option(&self, code: u16) -> Option<&OptOption> {
        self.options.iter().find(|o| o.code == code)
    }

    /// Total wire length of the encoded options.
    pub fn wire_len(&self) -> usize {
        self.options.iter().map(|o| 4 + o.data.len()).sum()
    }
}

impl fmt::Display for OptData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} option(s)", self.options.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        let o = OptData::default();
        let mut w = Writer::new();
        o.encode(&mut w).unwrap();
        assert!(w.is_empty());
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(OptData::decode(&mut r, 0).unwrap(), o);
    }

    #[test]
    fn options_round_trip() {
        let o = OptData {
            options: vec![
                OptOption {
                    code: option_code::COOKIE,
                    data: vec![1, 2, 3, 4, 5, 6, 7, 8],
                },
                OptOption::padding(16),
            ],
        };
        let mut w = Writer::new();
        o.encode(&mut w).unwrap();
        assert_eq!(w.len(), o.wire_len());
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = OptData::decode(&mut r, bytes.len()).unwrap();
        assert_eq!(back, o);
        assert_eq!(back.option(option_code::PADDING).unwrap().data.len(), 16);
        assert!(back.option(option_code::NSID).is_none());
    }

    #[test]
    fn padding_is_zeroed() {
        let p = OptOption::padding(8);
        assert_eq!(p.code, option_code::PADDING);
        assert!(p.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn overrunning_option_rejected() {
        // Option claims 10 octets but rdlen only allows 4 more.
        let bytes = [0u8, 12, 0, 10, 1, 2, 3, 4];
        let mut r = Reader::new(&bytes);
        assert!(OptData::decode(&mut r, 8).is_err());
    }
}
