//! CAA rdata (RFC 8659).

use std::fmt;

use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// Certification-authority-authorization record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaaData {
    /// Flags; bit 7 is "issuer critical".
    pub flags: u8,
    /// Property tag, e.g. `issue`, `issuewild`, `iodef`.
    pub tag: Vec<u8>,
    /// Property value.
    pub value: Vec<u8>,
}

impl CaaData {
    /// Builds a CAA record, validating the tag length (1–255 octets).
    pub fn new(flags: u8, tag: &str, value: &str) -> Result<Self, WireError> {
        if tag.is_empty() || tag.len() > 255 {
            return Err(WireError::InvalidText {
                reason: "CAA tag must be 1-255 octets",
            });
        }
        Ok(CaaData {
            flags,
            tag: tag.as_bytes().to_vec(),
            value: value.as_bytes().to_vec(),
        })
    }

    /// True when the issuer-critical bit is set.
    pub fn critical(&self) -> bool {
        self.flags & 0x80 != 0
    }

    /// Encodes the CAA body.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        w.write_u8(self.flags)?;
        w.write_u8(self.tag.len() as u8)?;
        w.write_slice(&self.tag)?;
        w.write_slice(&self.value)
    }

    /// Decodes exactly `rdlen` octets of CAA body.
    pub fn decode(r: &mut Reader<'_>, rdlen: usize) -> Result<Self, WireError> {
        let end = r.position() + rdlen;
        let flags = r.read_u8("CAA flags")?;
        let tag_len = r.read_u8("CAA tag length")? as usize;
        if tag_len == 0 {
            return Err(WireError::InvalidText {
                reason: "CAA tag must be 1-255 octets",
            });
        }
        if r.position() + tag_len > end {
            return Err(WireError::Truncated {
                expected: "CAA tag",
            });
        }
        let tag = r.read_slice(tag_len, "CAA tag")?.to_vec();
        let value_len = end - r.position();
        let value = r.read_slice(value_len, "CAA value")?.to_vec();
        Ok(CaaData { flags, tag, value })
    }
}

impl fmt::Display for CaaData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} \"{}\"",
            self.flags,
            String::from_utf8_lossy(&self.tag),
            String::from_utf8_lossy(&self.value)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let caa = CaaData::new(0x80, "issue", "letsencrypt.org").unwrap();
        let mut w = Writer::new();
        caa.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(CaaData::decode(&mut r, bytes.len()).unwrap(), caa);
        assert!(caa.critical());
    }

    #[test]
    fn empty_value_allowed() {
        let caa = CaaData::new(0, "iodef", "").unwrap();
        let mut w = Writer::new();
        caa.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = CaaData::decode(&mut r, bytes.len()).unwrap();
        assert_eq!(back.value, b"");
        assert!(!back.critical());
    }

    #[test]
    fn rejects_empty_tag() {
        assert!(CaaData::new(0, "", "x").is_err());
        // Wire-level empty tag also rejected.
        let bytes = [0u8, 0];
        let mut r = Reader::new(&bytes);
        assert!(CaaData::decode(&mut r, 2).is_err());
    }

    #[test]
    fn display() {
        let caa = CaaData::new(0, "issue", "ca.example.net").unwrap();
        assert_eq!(caa.to_string(), "0 issue \"ca.example.net\"");
    }
}
