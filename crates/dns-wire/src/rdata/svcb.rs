//! SVCB / HTTPS rdata (RFC 9460), the record type browsers use to discover
//! encrypted-DNS-capable endpoints (and, via SvcParam `alpn`, HTTP/3).

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::WireError;
use crate::name::Name;
use crate::wire::{Reader, Writer};

/// SvcParam keys this crate understands by name.
pub mod param_key {
    /// ALPN protocol list.
    pub const ALPN: u16 = 1;
    /// Alternative port.
    pub const PORT: u16 = 3;
    /// IPv4 address hints.
    pub const IPV4HINT: u16 = 4;
    /// IPv6 address hints.
    pub const IPV6HINT: u16 = 6;
    /// DoH URI template path (RFC 9461 `dohpath`).
    pub const DOHPATH: u16 = 7;
}

/// One service parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcParam {
    /// ALPN identifiers, e.g. `h2`, `h3`, `dot`, `doq`.
    Alpn(Vec<Vec<u8>>),
    /// Alternative port.
    Port(u16),
    /// IPv4 address hints.
    Ipv4Hint(Vec<Ipv4Addr>),
    /// IPv6 address hints.
    Ipv6Hint(Vec<Ipv6Addr>),
    /// DoH path template, e.g. `/dns-query{?dns}` (RFC 9461).
    DohPath(Vec<u8>),
    /// Any other key, carried opaquely.
    Opaque {
        /// SvcParamKey.
        key: u16,
        /// SvcParamValue octets.
        value: Vec<u8>,
    },
}

impl SvcParam {
    /// The numeric SvcParamKey.
    pub fn key(&self) -> u16 {
        match self {
            SvcParam::Alpn(_) => param_key::ALPN,
            SvcParam::Port(_) => param_key::PORT,
            SvcParam::Ipv4Hint(_) => param_key::IPV4HINT,
            SvcParam::Ipv6Hint(_) => param_key::IPV6HINT,
            SvcParam::DohPath(_) => param_key::DOHPATH,
            SvcParam::Opaque { key, .. } => *key,
        }
    }

    fn encode_value(&self, w: &mut Writer) -> Result<(), WireError> {
        match self {
            SvcParam::Alpn(ids) => {
                for id in ids {
                    if id.is_empty() || id.len() > 255 {
                        return Err(WireError::InvalidText {
                            reason: "alpn id must be 1-255 octets",
                        });
                    }
                    w.write_u8(id.len() as u8)?;
                    w.write_slice(id)?;
                }
                Ok(())
            }
            SvcParam::Port(p) => w.write_u16(*p),
            SvcParam::Ipv4Hint(ips) => {
                for ip in ips {
                    w.write_slice(&ip.octets())?;
                }
                Ok(())
            }
            SvcParam::Ipv6Hint(ips) => {
                for ip in ips {
                    w.write_slice(&ip.octets())?;
                }
                Ok(())
            }
            SvcParam::DohPath(p) => w.write_slice(p),
            SvcParam::Opaque { value, .. } => w.write_slice(value),
        }
    }

    fn decode_value(key: u16, value: &[u8]) -> Result<Self, WireError> {
        match key {
            param_key::ALPN => {
                let mut r = Reader::new(value);
                let mut ids = Vec::new();
                while !r.is_empty() {
                    let len = r.read_u8("alpn length")? as usize;
                    ids.push(r.read_slice(len, "alpn id")?.to_vec());
                }
                Ok(SvcParam::Alpn(ids))
            }
            param_key::PORT => {
                if value.len() != 2 {
                    return Err(WireError::InvalidText {
                        reason: "port SvcParam must be 2 octets",
                    });
                }
                Ok(SvcParam::Port(u16::from_be_bytes([value[0], value[1]])))
            }
            param_key::IPV4HINT => {
                if !value.len().is_multiple_of(4) || value.is_empty() {
                    return Err(WireError::InvalidText {
                        reason: "ipv4hint must be a non-empty multiple of 4 octets",
                    });
                }
                Ok(SvcParam::Ipv4Hint(
                    value
                        .chunks(4)
                        .map(|c| Ipv4Addr::new(c[0], c[1], c[2], c[3]))
                        .collect(),
                ))
            }
            param_key::IPV6HINT => {
                if !value.len().is_multiple_of(16) || value.is_empty() {
                    return Err(WireError::InvalidText {
                        reason: "ipv6hint must be a non-empty multiple of 16 octets",
                    });
                }
                Ok(SvcParam::Ipv6Hint(
                    value
                        .chunks(16)
                        .map(|c| {
                            let mut b = [0u8; 16];
                            b.copy_from_slice(c);
                            Ipv6Addr::from(b)
                        })
                        .collect(),
                ))
            }
            param_key::DOHPATH => Ok(SvcParam::DohPath(value.to_vec())),
            other => Ok(SvcParam::Opaque {
                key: other,
                value: value.to_vec(),
            }),
        }
    }
}

/// SVCB or HTTPS record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvcbData {
    /// True when this rdata belongs to an HTTPS record rather than SVCB.
    pub https: bool,
    /// 0 = AliasMode; ≥1 = ServiceMode priority.
    pub priority: u16,
    /// Target name (`.` means "same as owner").
    pub target: Name,
    /// Service parameters, sorted by key on encode per RFC 9460 §2.2.
    pub params: Vec<SvcParam>,
}

impl SvcbData {
    /// Encodes the SVCB body, sorting parameters by key as the RFC requires.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        w.write_u16(self.priority)?;
        self.target.encode_uncompressed(w)?;
        let mut params: Vec<&SvcParam> = self.params.iter().collect();
        params.sort_by_key(|p| p.key());
        for p in params {
            w.write_u16(p.key())?;
            let len_pos = w.len();
            w.write_u16(0)?;
            let before = w.len();
            p.encode_value(w)?;
            let vlen = w.len() - before;
            if vlen > u16::MAX as usize {
                return Err(WireError::InvalidText {
                    reason: "SvcParamValue exceeds 65535 octets",
                });
            }
            w.patch_u16(len_pos, vlen as u16);
        }
        Ok(())
    }

    /// Decodes exactly `rdlen` octets.
    pub fn decode(r: &mut Reader<'_>, rdlen: usize, https: bool) -> Result<Self, WireError> {
        let end = r.position() + rdlen;
        let priority = r.read_u16("SVCB priority")?;
        let target = Name::decode(r)?;
        let mut params = Vec::new();
        while r.position() < end {
            let key = r.read_u16("SvcParamKey")?;
            let len = r.read_u16("SvcParamValue length")? as usize;
            if r.position() + len > end {
                return Err(WireError::Truncated {
                    expected: "SvcParamValue",
                });
            }
            let value = r.read_slice(len, "SvcParamValue")?;
            params.push(SvcParam::decode_value(key, value)?);
        }
        Ok(SvcbData {
            https,
            priority,
            target,
            params,
        })
    }

    /// True in AliasMode (priority 0).
    pub fn is_alias(&self) -> bool {
        self.priority == 0
    }

    /// Returns the `dohpath` parameter as a string, if present and UTF-8.
    pub fn doh_path(&self) -> Option<String> {
        self.params.iter().find_map(|p| match p {
            SvcParam::DohPath(bytes) => String::from_utf8(bytes.clone()).ok(),
            _ => None,
        })
    }
}

impl fmt::Display for SvcbData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.priority, self.target)?;
        for p in &self.params {
            match p {
                SvcParam::Alpn(ids) => {
                    let joined: Vec<String> = ids
                        .iter()
                        .map(|i| String::from_utf8_lossy(i).into_owned())
                        .collect();
                    write!(f, " alpn={}", joined.join(","))?;
                }
                SvcParam::Port(p) => write!(f, " port={p}")?,
                SvcParam::Ipv4Hint(ips) => {
                    let joined: Vec<String> = ips.iter().map(|i| i.to_string()).collect();
                    write!(f, " ipv4hint={}", joined.join(","))?;
                }
                SvcParam::Ipv6Hint(ips) => {
                    let joined: Vec<String> = ips.iter().map(|i| i.to_string()).collect();
                    write!(f, " ipv6hint={}", joined.join(","))?;
                }
                SvcParam::DohPath(p) => write!(f, " dohpath={}", String::from_utf8_lossy(p))?,
                SvcParam::Opaque { key, .. } => write!(f, " key{key}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(d: &SvcbData) -> SvcbData {
        let mut w = Writer::new();
        d.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = SvcbData::decode(&mut r, bytes.len(), d.https).unwrap();
        assert!(r.is_empty());
        back
    }

    fn doh_https_record() -> SvcbData {
        SvcbData {
            https: true,
            priority: 1,
            target: Name::root(),
            params: vec![
                SvcParam::Alpn(vec![b"h2".to_vec(), b"h3".to_vec()]),
                SvcParam::Ipv4Hint(vec![Ipv4Addr::new(1, 1, 1, 1)]),
                SvcParam::DohPath(b"/dns-query{?dns}".to_vec()),
            ],
        }
    }

    #[test]
    fn https_record_round_trips() {
        let d = doh_https_record();
        let back = round_trip(&d);
        // Params may be re-ordered by key; compare as sets.
        assert_eq!(back.priority, d.priority);
        assert_eq!(back.target, d.target);
        assert_eq!(back.params.len(), d.params.len());
        for p in &d.params {
            assert!(back.params.contains(p), "missing param {p:?}");
        }
    }

    #[test]
    fn doh_path_accessor() {
        assert_eq!(
            doh_https_record().doh_path().as_deref(),
            Some("/dns-query{?dns}")
        );
    }

    #[test]
    fn alias_mode() {
        let d = SvcbData {
            https: false,
            priority: 0,
            target: Name::parse("pool.svc.example").unwrap(),
            params: vec![],
        };
        assert!(d.is_alias());
        assert_eq!(round_trip(&d).target, d.target);
    }

    #[test]
    fn params_encoded_sorted_by_key() {
        let d = SvcbData {
            https: true,
            priority: 1,
            target: Name::root(),
            params: vec![
                SvcParam::DohPath(b"/q".to_vec()),    // key 7
                SvcParam::Alpn(vec![b"h2".to_vec()]), // key 1
            ],
        };
        let mut w = Writer::new();
        d.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        // After priority (2) + root name (1), first param key must be 1.
        assert_eq!(u16::from_be_bytes([bytes[3], bytes[4]]), 1);
    }

    #[test]
    fn bad_port_length_rejected() {
        assert!(SvcParam::decode_value(param_key::PORT, &[1]).is_err());
    }

    #[test]
    fn bad_hint_length_rejected() {
        assert!(SvcParam::decode_value(param_key::IPV4HINT, &[1, 2, 3]).is_err());
        assert!(SvcParam::decode_value(param_key::IPV6HINT, &[]).is_err());
    }

    #[test]
    fn display_mentions_alpn_and_path() {
        let s = doh_https_record().to_string();
        assert!(s.contains("alpn=h2,h3"));
        assert!(s.contains("dohpath=/dns-query{?dns}"));
    }
}
