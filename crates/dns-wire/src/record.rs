//! Resource records (RFC 1035 §4.1.3).

use std::fmt;

use crate::constants::{RecordClass, RecordType};
use crate::error::WireError;
use crate::name::{Name, NameCompressor};
use crate::rdata::RData;
use crate::wire::{Reader, Writer};

/// One resource record: owner name, class, TTL and typed rdata.
///
/// For ordinary records `class_raw` is the record class and `ttl_raw` the
/// time-to-live in seconds. For EDNS OPT pseudo-records the same fields carry
/// the advertised UDP payload size and the extended-rcode/version/DO word;
/// [`crate::Message`] surfaces those through its `edns` accessors instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: Name,
    /// Raw class field (payload size for OPT).
    pub class_raw: u16,
    /// Raw TTL field (flags word for OPT).
    pub ttl_raw: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl ResourceRecord {
    /// Builds an ordinary `IN`-class record.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        ResourceRecord {
            name,
            class_raw: RecordClass::IN.to_u16(),
            ttl_raw: ttl,
            rdata,
        }
    }

    /// The record type, derived from the rdata.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }

    /// The class, interpreted normally (meaningless for OPT).
    pub fn rclass(&self) -> RecordClass {
        RecordClass::from_u16(self.class_raw)
    }

    /// TTL in seconds (meaningless for OPT).
    pub fn ttl(&self) -> u32 {
        self.ttl_raw
    }

    /// Encodes the record, back-patching RDLENGTH.
    pub fn encode(&self, w: &mut Writer, c: &mut NameCompressor) -> Result<(), WireError> {
        self.name.encode_compressed(w, c)?;
        w.write_u16(self.rtype().to_u16())?;
        w.write_u16(self.class_raw)?;
        w.write_u32(self.ttl_raw)?;
        let len_pos = w.len();
        w.write_u16(0)?;
        let before = w.len();
        self.rdata.encode(w, c)?;
        let rdlen = w.len() - before;
        if rdlen > u16::MAX as usize {
            return Err(WireError::MessageTooLong(rdlen));
        }
        w.patch_u16(len_pos, rdlen as u16);
        Ok(())
    }

    /// Decodes one record.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = Name::decode(r)?;
        let rtype = RecordType::from_u16(r.read_u16("record type")?);
        let class_raw = r.read_u16("record class")?;
        let ttl_raw = r.read_u32("record ttl")?;
        let rdlen = r.read_u16("record rdlength")? as usize;
        let rdata = RData::decode(r, rtype, rdlen)?;
        Ok(ResourceRecord {
            name,
            class_raw,
            ttl_raw,
            rdata,
        })
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\t{}\t{}\t{}\t{}",
            self.name,
            self.ttl_raw,
            self.rclass(),
            self.rtype(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn round_trip() {
        let rr = ResourceRecord::new(
            Name::parse("google.com").unwrap(),
            300,
            RData::A(Ipv4Addr::new(142, 250, 190, 78)),
        );
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        rr.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(ResourceRecord::decode(&mut r).unwrap(), rr);
        assert!(r.is_empty());
    }

    #[test]
    fn rdlength_is_backpatched() {
        let rr = ResourceRecord::new(Name::root(), 60, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        rr.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        // root(1) + type(2) + class(2) + ttl(4) => rdlength at offset 9.
        assert_eq!(u16::from_be_bytes([bytes[9], bytes[10]]), 4);
    }

    #[test]
    fn display_is_zone_file_like() {
        let rr = ResourceRecord::new(
            Name::parse("example.com").unwrap(),
            3600,
            RData::A(Ipv4Addr::new(93, 184, 216, 34)),
        );
        assert_eq!(rr.to_string(), "example.com.\t3600\tIN\tA\t93.184.216.34");
    }

    #[test]
    fn decode_rejects_bad_rdlength() {
        // Build a valid record then corrupt RDLENGTH upward.
        let rr = ResourceRecord::new(Name::root(), 60, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        rr.encode(&mut w, &mut c).unwrap();
        let mut bytes = w.into_bytes();
        bytes[10] = 3; // declare 3 octets for a 4-octet A record
        let mut r = Reader::new(&bytes);
        assert!(ResourceRecord::decode(&mut r).is_err());
    }
}
