//! # dns-wire
//!
//! A from-scratch implementation of the DNS wire format ([RFC 1035]) with
//! EDNS(0) ([RFC 6891]) support, used by the encrypted-DNS measurement stack
//! to build and parse the queries and responses that travel over Do53, DoT,
//! DoH and DoQ transports.
//!
//! The crate provides:
//!
//! * [`Name`] — domain names with full label semantics, case-insensitive
//!   comparison, and RFC 1035 §4.1.4 compression on encode and decode.
//! * [`Header`], [`Question`], [`ResourceRecord`], [`Message`] — the four
//!   wire sections, all round-trippable.
//! * [`RData`] — typed record data for A, AAAA, CNAME, NS, PTR, SOA, MX,
//!   TXT, SRV, CAA, OPT (EDNS), SVCB/HTTPS, with an opaque fallback for
//!   unknown types.
//! * [`MessageBuilder`] — ergonomic construction of queries and responses.
//! * [`base64url`] — the padding-free base64url codec required by DoH GET
//!   requests ([RFC 8484] §4.1).
//!
//! ## Quick example
//!
//! ```
//! use dns_wire::{MessageBuilder, Name, RecordType, Message};
//!
//! let query = MessageBuilder::query(0x1234, Name::parse("example.com.").unwrap(), RecordType::A)
//!     .recursion_desired(true)
//!     .edns_udp_size(4096)
//!     .build();
//! let bytes = query.encode().unwrap();
//! let parsed = Message::decode(&bytes).unwrap();
//! assert_eq!(parsed.header.id, 0x1234);
//! assert_eq!(parsed.questions[0].name.to_string(), "example.com.");
//! ```
//!
//! [RFC 1035]: https://www.rfc-editor.org/rfc/rfc1035
//! [RFC 6891]: https://www.rfc-editor.org/rfc/rfc6891
//! [RFC 8484]: https://www.rfc-editor.org/rfc/rfc8484

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64url;
mod builder;
mod constants;
mod error;
mod header;
mod message;
mod name;
pub mod odoh;
mod question;
mod rdata;
mod record;
pub mod tcp_frame;
mod wire;

pub use builder::MessageBuilder;
pub use constants::{Opcode, Rcode, RecordClass, RecordType};
pub use error::WireError;
pub use header::{Flags, Header, HEADER_LEN};
pub use message::{Edns, Message};
pub use name::Name;
pub use question::Question;
pub use rdata::option_code;
pub use rdata::{
    CaaData, OptData, OptOption, RData, SoaData, SrvData, SvcParam, SvcbData, TxtData,
};
pub use record::ResourceRecord;
pub use wire::{Reader, Writer};

/// The maximum length of a DNS message carried over UDP without EDNS.
pub const MAX_UDP_PAYLOAD: usize = 512;

/// The conventional EDNS(0) UDP payload size advertised by modern resolvers.
pub const EDNS_UDP_PAYLOAD: u16 = 4096;
