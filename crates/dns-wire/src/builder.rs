//! Fluent construction of queries and responses.

use crate::constants::{Rcode, RecordType};
use crate::message::{Edns, Message};
use crate::name::Name;
use crate::question::Question;
use crate::rdata::{OptOption, RData};
use crate::record::ResourceRecord;

/// Builds [`Message`]s without fiddling with header bits by hand.
///
/// ```
/// use dns_wire::{MessageBuilder, Name, RecordType};
/// let q = MessageBuilder::query(0, Name::parse("google.com").unwrap(), RecordType::AAAA)
///     .recursion_desired(true)
///     .edns_udp_size(1232)
///     .padding_to(128)
///     .build();
/// assert_eq!(q.questions.len(), 1);
/// assert!(q.edns.is_some());
/// ```
#[derive(Debug)]
pub struct MessageBuilder {
    msg: Message,
}

impl MessageBuilder {
    /// Starts a standard query for `name`/`rtype`.
    pub fn query(id: u16, name: Name, rtype: RecordType) -> Self {
        let mut msg = Message {
            questions: vec![Question::new(name, rtype)],
            ..Message::default()
        };
        msg.header.id = id;
        MessageBuilder { msg }
    }

    /// Starts a response to `query`, echoing its id, question and RD bit.
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        let mut msg = Message {
            questions: query.questions.clone(),
            ..Message::default()
        };
        msg.header.id = query.header.id;
        msg.header.flags.response = true;
        msg.header.flags.recursion_desired = query.header.flags.recursion_desired;
        msg.header.flags.rcode = Rcode::from_u16(rcode.to_u16() & 0x0F);
        if rcode.to_u16() > 0x0F {
            let edns = msg.edns.get_or_insert_with(Edns::default);
            edns.extended_rcode = rcode.high_bits();
        }
        MessageBuilder { msg }
    }

    /// Sets the RD bit.
    pub fn recursion_desired(mut self, rd: bool) -> Self {
        self.msg.header.flags.recursion_desired = rd;
        self
    }

    /// Sets the RA bit.
    pub fn recursion_available(mut self, ra: bool) -> Self {
        self.msg.header.flags.recursion_available = ra;
        self
    }

    /// Sets the AA bit.
    pub fn authoritative(mut self, aa: bool) -> Self {
        self.msg.header.flags.authoritative = aa;
        self
    }

    /// Sets the CD bit (client disables DNSSEC validation upstream).
    pub fn checking_disabled(mut self, cd: bool) -> Self {
        self.msg.header.flags.checking_disabled = cd;
        self
    }

    /// Attaches EDNS(0) with the given advertised UDP payload size.
    pub fn edns_udp_size(mut self, size: u16) -> Self {
        self.msg
            .edns
            .get_or_insert_with(Edns::default)
            .udp_payload_size = size;
        self
    }

    /// Sets the DNSSEC-OK bit (implies EDNS).
    pub fn dnssec_ok(mut self, ok: bool) -> Self {
        self.msg.edns.get_or_insert_with(Edns::default).dnssec_ok = ok;
        self
    }

    /// Pads the message with an RFC 7830 option so the encoded query is at
    /// least `target` octets — the RFC 8467 recommendation for encrypted
    /// transports (implies EDNS). Chooses the pad length by encoding once.
    pub fn padding_to(mut self, target: usize) -> Self {
        self.msg.edns.get_or_insert_with(Edns::default);
        let current = match self.msg.encode() {
            Ok(b) => b.len(),
            Err(_) => return self,
        };
        // A padding option itself costs 4 octets of header.
        if current + 4 < target {
            let pad = target - current - 4;
            self.msg
                .edns
                .as_mut()
                // detlint:allow(unwrap, the padding branch runs only after edns was inserted above)
                .expect("edns inserted above")
                .options
                .options
                .push(OptOption::padding(pad));
        }
        self
    }

    /// Adds an answer record.
    pub fn answer(mut self, name: Name, ttl: u32, rdata: RData) -> Self {
        self.msg.answers.push(ResourceRecord::new(name, ttl, rdata));
        self
    }

    /// Adds an authority record.
    pub fn authority(mut self, name: Name, ttl: u32, rdata: RData) -> Self {
        self.msg
            .authorities
            .push(ResourceRecord::new(name, ttl, rdata));
        self
    }

    /// Adds an additional record.
    pub fn additional(mut self, name: Name, ttl: u32, rdata: RData) -> Self {
        self.msg
            .additionals
            .push(ResourceRecord::new(name, ttl, rdata));
        self
    }

    /// Finishes and returns the message.
    pub fn build(self) -> Message {
        self.msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn query_defaults() {
        let q = MessageBuilder::query(42, Name::parse("a.example").unwrap(), RecordType::A).build();
        assert_eq!(q.header.id, 42);
        assert!(!q.header.flags.response);
        assert!(q.edns.is_none());
        assert_eq!(q.questions[0].rtype, RecordType::A);
    }

    #[test]
    fn response_echoes_query() {
        let q = MessageBuilder::query(9, Name::parse("x.example").unwrap(), RecordType::TXT)
            .recursion_desired(true)
            .build();
        let r = MessageBuilder::response_to(&q, Rcode::NxDomain).build();
        assert_eq!(r.header.id, 9);
        assert!(r.header.flags.response);
        assert!(r.header.flags.recursion_desired);
        assert_eq!(r.rcode(), Rcode::NxDomain);
        assert_eq!(r.questions, q.questions);
    }

    #[test]
    fn extended_rcode_in_response_builder() {
        let q = MessageBuilder::query(1, Name::root(), RecordType::A).build();
        let r = MessageBuilder::response_to(&q, Rcode::BadVers).build();
        assert_eq!(r.rcode(), Rcode::BadVers);
        assert!(r.edns.is_some());
    }

    #[test]
    fn padding_reaches_target() {
        let q = MessageBuilder::query(0, Name::parse("g.co").unwrap(), RecordType::A)
            .padding_to(128)
            .build();
        let bytes = q.encode().unwrap();
        assert_eq!(bytes.len(), 128);
    }

    #[test]
    fn padding_noop_when_already_large() {
        let q = MessageBuilder::query(0, Name::parse("g.co").unwrap(), RecordType::A)
            .padding_to(10)
            .build();
        let opts = &q.edns.unwrap().options.options;
        assert!(opts.is_empty());
    }

    #[test]
    fn answer_helper_appends() {
        let m = MessageBuilder::query(1, Name::parse("e.com").unwrap(), RecordType::A)
            .answer(
                Name::parse("e.com").unwrap(),
                60,
                RData::A(Ipv4Addr::new(1, 1, 1, 1)),
            )
            .build();
        assert_eq!(m.answers.len(), 1);
        assert_eq!(m.answers[0].ttl(), 60);
    }

    #[test]
    fn dnssec_ok_implies_edns() {
        let m = MessageBuilder::query(1, Name::root(), RecordType::A)
            .dnssec_ok(true)
            .build();
        assert!(m.edns.unwrap().dnssec_ok);
    }
}
