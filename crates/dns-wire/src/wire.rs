//! Low-level cursor types used by every encoder and decoder.
//!
//! [`Reader`] walks a byte slice with bounds checking and explicit error
//! reporting; [`Writer`] appends big-endian integers and raw octets to a
//! growable buffer while enforcing the 65,535-octet message ceiling.

use crate::error::WireError;

/// A bounds-checked forward cursor over a DNS message buffer.
///
/// All multi-octet integers in DNS are big-endian (network order); the
/// `read_u16`/`read_u32` helpers decode accordingly.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Total length of the underlying buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when every octet has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Octets not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// The full underlying buffer (used when following compression pointers).
    pub fn full_buffer(&self) -> &'a [u8] {
        self.buf
    }

    /// Moves the cursor to an absolute offset.
    ///
    /// Seeking past the end is permitted (the next read will fail), matching
    /// the behaviour needed when rewinding after a compression pointer.
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Reads one octet.
    pub fn read_u8(&mut self, expected: &'static str) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(WireError::Truncated { expected })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u16`.
    pub fn read_u16(&mut self, expected: &'static str) -> Result<u16, WireError> {
        let hi = self.read_u8(expected)? as u16;
        let lo = self.read_u8(expected)? as u16;
        Ok((hi << 8) | lo)
    }

    /// Reads a big-endian `u32`.
    pub fn read_u32(&mut self, expected: &'static str) -> Result<u32, WireError> {
        let hi = self.read_u16(expected)? as u32;
        let lo = self.read_u16(expected)? as u32;
        Ok((hi << 16) | lo)
    }

    /// Reads exactly `n` octets as a slice.
    pub fn read_slice(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { expected });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// An appending encoder that enforces the DNS message size ceiling.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

/// Hard upper bound on any DNS message (length prefix over TCP is u16).
pub const MAX_MESSAGE_LEN: usize = u16::MAX as usize;

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with `cap` octets of pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Creates a writer over a recycled buffer: `buf` is cleared and its
    /// capacity reused, so encoding into a pooled buffer touches no
    /// allocator once the pool is warm.
    pub fn from_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Writer { buf }
    }

    /// Number of octets written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Read access to everything written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer and returns the finished buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn ensure_room(&mut self, extra: usize) -> Result<(), WireError> {
        let n = self.buf.len() + extra;
        if n > MAX_MESSAGE_LEN {
            return Err(WireError::MessageTooLong(n));
        }
        Ok(())
    }

    /// Appends one octet.
    pub fn write_u8(&mut self, v: u8) -> Result<(), WireError> {
        self.ensure_room(1)?;
        self.buf.push(v);
        Ok(())
    }

    /// Appends a big-endian `u16`.
    pub fn write_u16(&mut self, v: u16) -> Result<(), WireError> {
        self.ensure_room(2)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Appends a big-endian `u32`.
    pub fn write_u32(&mut self, v: u32) -> Result<(), WireError> {
        self.ensure_room(4)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Appends raw octets.
    pub fn write_slice(&mut self, s: &[u8]) -> Result<(), WireError> {
        self.ensure_room(s.len())?;
        self.buf.extend_from_slice(s);
        Ok(())
    }

    /// Overwrites a previously written big-endian `u16` at `pos`.
    ///
    /// Used to back-patch RDLENGTH once the rdata size is known.
    pub fn patch_u16(&mut self, pos: usize, v: u16) {
        let bytes = v.to_be_bytes();
        self.buf[pos] = bytes[0];
        self.buf[pos + 1] = bytes[1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_integers_are_big_endian() {
        let buf = [0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde];
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_u16("t").unwrap(), 0x1234);
        assert_eq!(r.read_u32("t").unwrap(), 0x56789abc);
        assert_eq!(r.read_u8("t").unwrap(), 0xde);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_truncation_reports_context() {
        let mut r = Reader::new(&[0x01]);
        let err = r.read_u16("header id").unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                expected: "header id"
            }
        );
    }

    #[test]
    fn reader_slice_and_seek() {
        let buf = [1u8, 2, 3, 4, 5];
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_slice(3, "t").unwrap(), &[1, 2, 3]);
        assert_eq!(r.position(), 3);
        r.seek(1);
        assert_eq!(r.read_u8("t").unwrap(), 2);
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn reader_slice_past_end_fails() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.read_slice(3, "t").is_err());
        // A failed read must not advance the cursor.
        assert_eq!(r.position(), 0);
    }

    #[test]
    fn writer_round_trips_integers() {
        let mut w = Writer::new();
        w.write_u8(0xab).unwrap();
        w.write_u16(0x1234).unwrap();
        w.write_u32(0xdeadbeef).unwrap();
        assert_eq!(w.as_slice(), &[0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn writer_enforces_message_ceiling() {
        let mut w = Writer::new();
        w.write_slice(&vec![0u8; MAX_MESSAGE_LEN]).unwrap();
        assert!(matches!(
            w.write_u8(0),
            Err(WireError::MessageTooLong(n)) if n == MAX_MESSAGE_LEN + 1
        ));
    }

    #[test]
    fn writer_patch_u16() {
        let mut w = Writer::new();
        w.write_u16(0).unwrap();
        w.write_u8(7).unwrap();
        w.patch_u16(0, 0xbeef);
        assert_eq!(w.as_slice(), &[0xbe, 0xef, 7]);
    }

    #[test]
    fn seek_past_end_then_read_fails() {
        let mut r = Reader::new(&[1, 2, 3]);
        r.seek(10);
        assert!(r.read_u8("t").is_err());
        assert_eq!(r.remaining(), 0);
    }
}
