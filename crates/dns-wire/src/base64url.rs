//! Padding-free base64url (RFC 4648 §5), as required for the `dns` query
//! parameter of DoH GET requests (RFC 8484 §4.1: "using the base64url
//! encoding ... with all trailing '=' characters omitted").

use crate::error::WireError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Encodes `input` as unpadded base64url.
///
/// ```
/// assert_eq!(dns_wire::base64url::encode(b"\x00\x01\x02"), "AAEC");
/// assert_eq!(dns_wire::base64url::encode(b""), "");
/// ```
pub fn encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(3) * 4);
    let mut chunks = input.chunks_exact(3);
    for c in &mut chunks {
        let n = ((c[0] as u32) << 16) | ((c[1] as u32) << 8) | c[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        out.push(ALPHABET[n as usize & 63] as char);
    }
    match chunks.remainder() {
        [] => {}
        [a] => {
            let n = (*a as u32) << 16;
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        }
        [a, b] => {
            let n = ((*a as u32) << 16) | ((*b as u32) << 8);
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        }
        _ => unreachable!("chunks_exact(3) remainder is < 3"),
    }
    out
}

fn decode_char(c: u8, at: usize) -> Result<u32, WireError> {
    let v = match c {
        b'A'..=b'Z' => c - b'A',
        b'a'..=b'z' => c - b'a' + 26,
        b'0'..=b'9' => c - b'0' + 52,
        b'-' => 62,
        b'_' => 63,
        _ => return Err(WireError::BadBase64 { at: Some(at) }),
    };
    Ok(v as u32)
}

/// Decodes unpadded base64url. Rejects `=` padding, whitespace, the standard
/// alphabet's `+`/`/`, and impossible lengths (`4k+1`).
///
/// ```
/// assert_eq!(dns_wire::base64url::decode("AAEC").unwrap(), vec![0, 1, 2]);
/// assert!(dns_wire::base64url::decode("AAE=").is_err());
/// ```
pub fn decode(input: &str) -> Result<Vec<u8>, WireError> {
    let bytes = input.as_bytes();
    if bytes.len() % 4 == 1 {
        return Err(WireError::BadBase64 { at: None });
    }
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    let mut i = 0;
    while i + 4 <= bytes.len() {
        let n = (decode_char(bytes[i], i)? << 18)
            | (decode_char(bytes[i + 1], i + 1)? << 12)
            | (decode_char(bytes[i + 2], i + 2)? << 6)
            | decode_char(bytes[i + 3], i + 3)?;
        out.push((n >> 16) as u8);
        out.push((n >> 8) as u8);
        out.push(n as u8);
        i += 4;
    }
    match bytes.len() - i {
        0 => {}
        2 => {
            let n = (decode_char(bytes[i], i)? << 18) | (decode_char(bytes[i + 1], i + 1)? << 12);
            // The low 4 bits of the second character must be zero, else the
            // encoding is non-canonical.
            if n & 0xFFFF != 0 {
                return Err(WireError::BadBase64 { at: Some(i + 1) });
            }
            out.push((n >> 16) as u8);
        }
        3 => {
            let n = (decode_char(bytes[i], i)? << 18)
                | (decode_char(bytes[i + 1], i + 1)? << 12)
                | (decode_char(bytes[i + 2], i + 2)? << 6);
            if n & 0xFF != 0 {
                return Err(WireError::BadBase64 { at: Some(i + 2) });
            }
            out.push((n >> 16) as u8);
            out.push((n >> 8) as u8);
        }
        _ => unreachable!("length % 4 == 1 rejected above"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_test_vectors() {
        // RFC 4648 §10 vectors, with padding stripped.
        let cases: [(&[u8], &str); 8] = [
            (b"", ""),
            (b"f", "Zg"),
            (b"fo", "Zm8"),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg"),
            (b"fooba", "Zm9vYmE"),
            (b"foobar", "Zm9vYmFy"),
            (&[0xFB, 0xFF], "-_8"),
        ];
        for (raw, enc) in cases {
            assert_eq!(encode(raw), enc, "encode {raw:?}");
            assert_eq!(decode(enc).unwrap(), raw, "decode {enc}");
        }
    }

    #[test]
    fn rfc8484_example() {
        // RFC 8484 §4.1.1 example: a query for www.example.com encodes to
        // this exact string.
        let wire: &[u8] = &[
            0x00, 0x00, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x77,
            0x77, 0x77, 0x07, 0x65, 0x78, 0x61, 0x6d, 0x70, 0x6c, 0x65, 0x03, 0x63, 0x6f, 0x6d,
            0x00, 0x00, 0x01, 0x00, 0x01,
        ];
        assert_eq!(encode(wire), "AAABAAABAAAAAAAAA3d3dwdleGFtcGxlA2NvbQAAAQAB");
    }

    #[test]
    fn rejects_standard_alphabet() {
        assert!(decode("a+b/").is_err());
    }

    #[test]
    fn rejects_padding() {
        assert!(decode("Zg==").is_err());
    }

    #[test]
    fn rejects_impossible_length() {
        assert!(matches!(
            decode("AAAAA"),
            Err(WireError::BadBase64 { at: None })
        ));
    }

    #[test]
    fn rejects_non_canonical_trailing_bits() {
        // "Zh" would decode to 'f' but with non-zero discarded bits.
        assert!(decode("Zh").is_err());
        assert!(decode("Zg").is_ok());
    }

    #[test]
    fn url_safety() {
        // Encoded output must never contain characters needing URI escapes.
        let all: Vec<u8> = (0u8..=255).collect();
        let enc = encode(&all);
        assert!(enc
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
        assert_eq!(decode(&enc).unwrap(), all);
    }
}
