//! Domain names: parsing, formatting, wire encoding with compression, and
//! decoding with compression-pointer chasing (RFC 1035 §3.1 and §4.1.4).

use std::collections::HashMap;
use std::fmt;

use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// Maximum octets in one label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name in wire form (including the root length octet).
pub const MAX_NAME_LEN: usize = 255;
/// Pointer-follow budget; real names never need more than a handful.
const MAX_POINTERS: usize = 64;

/// A fully-qualified domain name as a sequence of labels.
///
/// Comparison and hashing are ASCII case-insensitive, per RFC 1035 §2.3.3
/// ("no significance is attached to the case"). The original case is
/// preserved for display and encoding.
///
/// ```
/// use dns_wire::Name;
/// let a = Name::parse("Example.COM").unwrap();
/// let b = Name::parse("example.com.").unwrap();
/// assert_eq!(a, b);
/// assert_eq!(a.to_string(), "Example.COM.");
/// assert_eq!(a.label_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Name {
    /// Labels in order from most-specific to the TLD; the implicit root
    /// label is not stored.
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parses a presentation-format name (`"www.example.com"` or with a
    /// trailing dot). Escapes are not supported; bytes outside label syntax
    /// are accepted as-is except `.` which always separates labels.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(WireError::InvalidText {
                    reason: "empty label",
                });
            }
            if part.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(part.len()));
            }
            labels.push(part.as_bytes().to_vec());
        }
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Builds a name from raw labels. Each label must be 1–63 octets.
    pub fn from_labels<I, L>(iter: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut labels = Vec::new();
        for l in iter {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(WireError::InvalidText {
                    reason: "empty label",
                });
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(l.len()));
            }
            labels.push(l.to_vec());
        }
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels, excluding the root.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over the labels from most-specific to TLD.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_slice())
    }

    /// Uncompressed wire length: one length octet per label, each label's
    /// octets, and the terminating root octet.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// The parent name (one label removed), or `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// True if `self` equals `other` or is a subdomain of it.
    /// Every name is under the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..]
            .iter()
            .zip(&other.labels)
            .all(|(a, b)| eq_ignore_case(a, b))
    }

    /// Prepends a label, producing a child name.
    pub fn child<L: AsRef<[u8]>>(&self, label: L) -> Result<Name, WireError> {
        let l = label.as_ref();
        if l.is_empty() {
            return Err(WireError::InvalidText {
                reason: "empty label",
            });
        }
        if l.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(l.len()));
        }
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(l.to_vec());
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// A canonical lowercase key, used for map lookups and compression.
    pub fn canonical_key(&self) -> String {
        let mut out = String::new();
        for l in &self.labels {
            for &b in l {
                out.push(b.to_ascii_lowercase() as char);
            }
            out.push('.');
        }
        if out.is_empty() {
            out.push('.');
        }
        out
    }

    /// Encodes without compression.
    pub fn encode_uncompressed(&self, w: &mut Writer) -> Result<(), WireError> {
        for l in &self.labels {
            w.write_u8(l.len() as u8)?;
            w.write_slice(l)?;
        }
        w.write_u8(0)
    }

    /// Encodes with RFC 1035 §4.1.4 compression.
    ///
    /// `compressor` remembers the offset at which each suffix of each name
    /// was written; when a suffix recurs, a two-octet pointer replaces it.
    pub fn encode_compressed(
        &self,
        w: &mut Writer,
        compressor: &mut NameCompressor,
    ) -> Result<(), WireError> {
        // Walk suffixes from the full name downward; emit labels until a
        // suffix that was seen before, then emit a pointer to it.
        for (i, label) in self.labels.iter().enumerate() {
            let suffix_key = suffix_key(&self.labels[i..]);
            if let Some(&offset) = compressor.offsets.get(&suffix_key) {
                // Pointers only address the first 14 bits of offset space.
                if offset <= 0x3FFF {
                    w.write_u16(0xC000 | offset as u16)?;
                    return Ok(());
                }
            }
            // Record this suffix's position before writing it, if addressable.
            let here = w.len();
            if here <= 0x3FFF {
                compressor.offsets.entry(suffix_key).or_insert(here);
            }
            w.write_u8(label.len() as u8)?;
            w.write_slice(label)?;
        }
        w.write_u8(0)
    }

    /// Decodes a (possibly compressed) name starting at the reader's cursor.
    ///
    /// The cursor ends just past the name's last octet *in the original
    /// stream* (i.e. past the pointer, if one was followed).
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut wire_len = 1usize; // terminating root octet
        let mut jumps = 0usize;
        // Position to restore after the first pointer jump.
        let mut resume: Option<usize> = None;
        let full = r.full_buffer();

        loop {
            let at = r.position();
            let len = r.read_u8("name label length")?;
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        break;
                    }
                    let l = r.read_slice(len as usize, "name label")?;
                    wire_len += 1 + l.len();
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(wire_len));
                    }
                    labels.push(l.to_vec());
                }
                0xC0 => {
                    let lo = r.read_u8("compression pointer")?;
                    let target = (((len & 0x3F) as usize) << 8) | lo as usize;
                    // Pointers must point strictly backwards to terminate.
                    if target >= at {
                        return Err(WireError::BadPointer { at, target });
                    }
                    if target >= full.len() {
                        return Err(WireError::BadPointer { at, target });
                    }
                    jumps += 1;
                    if jumps > MAX_POINTERS {
                        return Err(WireError::PointerLimit);
                    }
                    if resume.is_none() {
                        resume = Some(r.position());
                    }
                    r.seek(target);
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }

        if let Some(pos) = resume {
            r.seek(pos);
        }
        Ok(Name { labels })
    }
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

fn suffix_key(labels: &[Vec<u8>]) -> String {
    let mut out = String::new();
    for l in labels {
        for &b in l {
            out.push(b.to_ascii_lowercase() as char);
        }
        out.push('.');
    }
    out
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(&other.labels)
                .all(|(a, b)| eq_ignore_case(a, b))
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            state.write_usize(l.len());
            for &b in l {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering (RFC 4034 §6.1): compare label-by-label from
    /// the rightmost (TLD) label, lowercased.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let mut a = self.labels.iter().rev();
        let mut b = other.labels.iter().rev();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return std::cmp::Ordering::Equal,
                (None, Some(_)) => return std::cmp::Ordering::Less,
                (Some(_), None) => return std::cmp::Ordering::Greater,
                (Some(x), Some(y)) => {
                    let lx: Vec<u8> = x.iter().map(|c| c.to_ascii_lowercase()).collect();
                    let ly: Vec<u8> = y.iter().map(|c| c.to_ascii_lowercase()).collect();
                    match lx.cmp(&ly) {
                        std::cmp::Ordering::Equal => continue,
                        o => return o,
                    }
                }
            }
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for l in &self.labels {
            for &b in l {
                // Present non-printable bytes as escaped decimal, like dig.
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{b:03}")?;
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// Remembers name suffix positions during message encoding so later names
/// can be compressed to pointers.
#[derive(Debug, Default)]
pub struct NameCompressor {
    offsets: HashMap<String, usize>,
}

impl NameCompressor {
    /// Creates an empty compressor; one per message being encoded.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "example.com.",
            "a.b.c.d.e.",
            "x.",
            "sub.domain.example.org.",
        ] {
            assert_eq!(Name::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn trailing_dot_is_optional() {
        assert_eq!(
            Name::parse("example.com").unwrap(),
            Name::parse("example.com.").unwrap()
        );
    }

    #[test]
    fn root_name() {
        let r = Name::parse(".").unwrap();
        assert!(r.is_root());
        assert_eq!(r.to_string(), ".");
        assert_eq!(r.wire_len(), 1);
        // Empty string also parses as root.
        assert!(Name::parse("").unwrap().is_root());
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        let a = Name::parse("WWW.Example.COM").unwrap();
        let b = Name::parse("www.example.com").unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn rejects_oversized_labels_and_names() {
        let long_label = "a".repeat(64);
        assert!(matches!(
            Name::parse(&long_label),
            Err(WireError::LabelTooLong(64))
        ));
        let long_name = vec!["a".repeat(63); 5].join(".");
        assert!(matches!(
            Name::parse(&long_name),
            Err(WireError::NameTooLong(_))
        ));
    }

    #[test]
    fn rejects_empty_labels() {
        assert!(Name::parse("a..b").is_err());
        assert!(Name::parse(".a").is_err());
    }

    #[test]
    fn wire_len_matches_encoding() {
        let n = Name::parse("dns.example.com").unwrap();
        let mut w = Writer::new();
        n.encode_uncompressed(&mut w).unwrap();
        assert_eq!(w.len(), n.wire_len());
        assert_eq!(w.as_slice(), b"\x03dns\x07example\x03com\x00".as_slice());
    }

    #[test]
    fn uncompressed_round_trip() {
        let n = Name::parse("a.bb.ccc.dddd.example").unwrap();
        let mut w = Writer::new();
        n.encode_uncompressed(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Name::decode(&mut r).unwrap();
        assert_eq!(back, n);
        assert!(r.is_empty());
    }

    #[test]
    fn compression_emits_pointer_for_shared_suffix() {
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        let n1 = Name::parse("www.example.com").unwrap();
        let n2 = Name::parse("mail.example.com").unwrap();
        n1.encode_compressed(&mut w, &mut c).unwrap();
        let first_len = w.len();
        n2.encode_compressed(&mut w, &mut c).unwrap();
        // Second name: "mail" label (5 octets) + 2-octet pointer.
        assert_eq!(w.len() - first_len, 5 + 2);

        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Name::decode(&mut r).unwrap(), n1);
        assert_eq!(Name::decode(&mut r).unwrap(), n2);
        assert!(r.is_empty());
    }

    #[test]
    fn identical_name_compresses_to_bare_pointer() {
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        let n = Name::parse("example.com").unwrap();
        n.encode_compressed(&mut w, &mut c).unwrap();
        let first = w.len();
        n.encode_compressed(&mut w, &mut c).unwrap();
        assert_eq!(w.len() - first, 2, "repeat should be a lone pointer");
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        Name::parse("Example.COM")
            .unwrap()
            .encode_compressed(&mut w, &mut c)
            .unwrap();
        let first = w.len();
        Name::parse("example.com")
            .unwrap()
            .encode_compressed(&mut w, &mut c)
            .unwrap();
        assert_eq!(w.len() - first, 2);
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at offset 0 targeting offset 0 (self-loop / non-backwards).
        let bytes = [0xC0, 0x00];
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Name::decode(&mut r),
            Err(WireError::BadPointer { .. })
        ));
    }

    #[test]
    fn decode_rejects_pointer_loop() {
        // offset0: label "a", then pointer to 0 => "a" then loops: a -> ptr(0)
        // reading at 0 again yields label 'a' then pointer to 0 again — the
        // strictly-backwards rule turns this into BadPointer on the second hop.
        let bytes = [0x01, b'a', 0xC0, 0x00, 0x00];
        let mut r = Reader::new(&bytes);
        r.seek(2);
        // target 0 < at 2 is legal for hop 1; then at offset 2 the pointer
        // targets 0 again which is < 2... this loops via the same path, so the
        // name grows unboundedly; the NameTooLong guard must fire.
        let res = Name::decode(&mut r);
        assert!(res.is_err());
    }

    #[test]
    fn decode_rejects_unknown_label_type() {
        let bytes = [0x80, 0x01];
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Name::decode(&mut r),
            Err(WireError::BadLabelType(0x80))
        ));
    }

    #[test]
    fn decode_resumes_after_pointer() {
        // buffer: name "com" at 0, then name "a" + pointer->0, then 0xFF sentinel
        let mut w = Writer::new();
        Name::parse("com")
            .unwrap()
            .encode_uncompressed(&mut w)
            .unwrap();
        let start2 = w.len();
        w.write_u8(1).unwrap();
        w.write_u8(b'a').unwrap();
        w.write_u16(0xC000).unwrap();
        w.write_u8(0xFF).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.seek(start2);
        let n = Name::decode(&mut r).unwrap();
        assert_eq!(n, Name::parse("a.com").unwrap());
        assert_eq!(r.read_u8("sentinel").unwrap(), 0xFF);
    }

    #[test]
    fn subdomain_relationships() {
        let apex = Name::parse("example.com").unwrap();
        let www = Name::parse("www.example.com").unwrap();
        let other = Name::parse("example.org").unwrap();
        assert!(www.is_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&apex));
        assert!(!apex.is_subdomain_of(&www));
        assert!(!other.is_subdomain_of(&apex));
        assert!(www.is_subdomain_of(&Name::root()));
    }

    #[test]
    fn parent_and_child() {
        let www = Name::parse("www.example.com").unwrap();
        let apex = www.parent().unwrap();
        assert_eq!(apex, Name::parse("example.com").unwrap());
        assert_eq!(apex.child("www").unwrap(), www);
        assert_eq!(Name::root().parent(), None);
    }

    #[test]
    fn canonical_ordering_is_by_reversed_labels() {
        let mut names = [
            Name::parse("z.example.com").unwrap(),
            Name::parse("example.com").unwrap(),
            Name::parse("a.example.com").unwrap(),
            Name::parse("example.org").unwrap(),
        ];
        names.sort();
        let strs: Vec<String> = names.iter().map(|n| n.to_string()).collect();
        assert_eq!(
            strs,
            vec![
                "example.com.",
                "a.example.com.",
                "z.example.com.",
                "example.org."
            ]
        );
    }

    #[test]
    fn display_escapes_non_printable() {
        let n = Name::from_labels([&b"a\x00b"[..]]).unwrap();
        assert_eq!(n.to_string(), "a\\000b.");
    }

    #[test]
    fn from_labels_validates() {
        assert!(Name::from_labels([&b""[..]]).is_err());
        assert!(Name::from_labels([vec![b'a'; 64]]).is_err());
    }
}
