//! Enumerated protocol constants: record types, classes, opcodes, rcodes.

use std::fmt;

/// DNS resource record types (RFC 1035 §3.2.2 and successors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    NS,
    /// Canonical name (alias).
    CNAME,
    /// Start of a zone of authority.
    SOA,
    /// Domain name pointer (reverse lookups).
    PTR,
    /// Mail exchange.
    MX,
    /// Text strings.
    TXT,
    /// IPv6 host address (RFC 3596).
    AAAA,
    /// Server selection (RFC 2782).
    SRV,
    /// EDNS(0) pseudo-record (RFC 6891).
    OPT,
    /// Certification authority authorization (RFC 8659).
    CAA,
    /// General-purpose service binding (RFC 9460).
    SVCB,
    /// Service binding for HTTPS origins (RFC 9460).
    HTTPS,
    /// Any other type, carried by its 16-bit code.
    Unknown(u16),
}

impl RecordType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::NS => 2,
            RecordType::CNAME => 5,
            RecordType::SOA => 6,
            RecordType::PTR => 12,
            RecordType::MX => 15,
            RecordType::TXT => 16,
            RecordType::AAAA => 28,
            RecordType::SRV => 33,
            RecordType::OPT => 41,
            RecordType::SVCB => 64,
            RecordType::HTTPS => 65,
            RecordType::CAA => 257,
            RecordType::Unknown(v) => v,
        }
    }

    /// Decodes a 16-bit wire value; unrecognised codes become `Unknown`.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::NS,
            5 => RecordType::CNAME,
            6 => RecordType::SOA,
            12 => RecordType::PTR,
            15 => RecordType::MX,
            16 => RecordType::TXT,
            28 => RecordType::AAAA,
            33 => RecordType::SRV,
            41 => RecordType::OPT,
            64 => RecordType::SVCB,
            65 => RecordType::HTTPS,
            257 => RecordType::CAA,
            other => RecordType::Unknown(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::NS => write!(f, "NS"),
            RecordType::CNAME => write!(f, "CNAME"),
            RecordType::SOA => write!(f, "SOA"),
            RecordType::PTR => write!(f, "PTR"),
            RecordType::MX => write!(f, "MX"),
            RecordType::TXT => write!(f, "TXT"),
            RecordType::AAAA => write!(f, "AAAA"),
            RecordType::SRV => write!(f, "SRV"),
            RecordType::OPT => write!(f, "OPT"),
            RecordType::CAA => write!(f, "CAA"),
            RecordType::SVCB => write!(f, "SVCB"),
            RecordType::HTTPS => write!(f, "HTTPS"),
            RecordType::Unknown(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// DNS classes; IN is the only one seen in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    /// The Internet.
    IN,
    /// CHAOS (used for server identification queries).
    CH,
    /// Hesiod.
    HS,
    /// QCLASS ANY (255).
    Any,
    /// Unrecognised class code.
    Unknown(u16),
}

impl RecordClass {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::IN => 1,
            RecordClass::CH => 3,
            RecordClass::HS => 4,
            RecordClass::Any => 255,
            RecordClass::Unknown(v) => v,
        }
    }

    /// Decodes a 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordClass::IN,
            3 => RecordClass::CH,
            4 => RecordClass::HS,
            255 => RecordClass::Any,
            other => RecordClass::Unknown(other),
        }
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordClass::IN => write!(f, "IN"),
            RecordClass::CH => write!(f, "CH"),
            RecordClass::HS => write!(f, "HS"),
            RecordClass::Any => write!(f, "ANY"),
            RecordClass::Unknown(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// Query opcodes (header bits 11–14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// Unrecognised opcode.
    Unknown(u8),
}

impl Opcode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v & 0x0F,
        }
    }

    /// Decodes a 4-bit wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::Query => write!(f, "QUERY"),
            Opcode::IQuery => write!(f, "IQUERY"),
            Opcode::Status => write!(f, "STATUS"),
            Opcode::Notify => write!(f, "NOTIFY"),
            Opcode::Update => write!(f, "UPDATE"),
            Opcode::Unknown(v) => write!(f, "OPCODE{v}"),
        }
    }
}

/// Response codes, including EDNS-extended values (RFC 6891 §6.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// The query was malformed.
    FormErr,
    /// The server failed internally.
    ServFail,
    /// The queried name does not exist (authoritative).
    NxDomain,
    /// The server does not implement the request.
    NotImp,
    /// The server refuses to answer (policy).
    Refused,
    /// EDNS version not supported (extended, 16).
    BadVers,
    /// Unrecognised rcode.
    Unknown(u16),
}

impl Rcode {
    /// Full (possibly extended) numeric value.
    pub fn to_u16(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::BadVers => 16,
            Rcode::Unknown(v) => v,
        }
    }

    /// Decodes a (possibly extended) numeric value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            16 => Rcode::BadVers,
            other => Rcode::Unknown(other),
        }
    }

    /// The low 4 bits carried in the basic header.
    pub fn low_bits(self) -> u8 {
        (self.to_u16() & 0x0F) as u8
    }

    /// The high 8 bits carried in an EDNS OPT TTL field.
    pub fn high_bits(self) -> u8 {
        (self.to_u16() >> 4) as u8
    }

    /// Reassembles an rcode from header low bits and OPT high bits.
    pub fn from_parts(low: u8, high: u8) -> Self {
        Rcode::from_u16(((high as u16) << 4) | (low as u16 & 0x0F))
    }

    /// True when the response indicates success.
    pub fn is_success(self) -> bool {
        self == Rcode::NoError
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::BadVers => write!(f, "BADVERS"),
            Rcode::Unknown(v) => write!(f, "RCODE{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_round_trip() {
        for v in 0u16..=70 {
            assert_eq!(RecordType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RecordType::from_u16(1), RecordType::A);
        assert_eq!(RecordType::from_u16(28), RecordType::AAAA);
        assert_eq!(RecordType::from_u16(65), RecordType::HTTPS);
        assert_eq!(RecordType::from_u16(999), RecordType::Unknown(999));
    }

    #[test]
    fn record_type_display() {
        assert_eq!(RecordType::A.to_string(), "A");
        assert_eq!(RecordType::Unknown(4711).to_string(), "TYPE4711");
    }

    #[test]
    fn class_round_trip_and_display() {
        for v in [1u16, 3, 4, 255, 9999] {
            assert_eq!(RecordClass::from_u16(v).to_u16(), v);
        }
        assert_eq!(RecordClass::IN.to_string(), "IN");
        assert_eq!(RecordClass::Unknown(7).to_string(), "CLASS7");
    }

    #[test]
    fn opcode_round_trip() {
        for v in 0u8..16 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
        }
        assert_eq!(Opcode::from_u8(0), Opcode::Query);
    }

    #[test]
    fn rcode_round_trip_and_split() {
        for v in [0u16, 1, 2, 3, 4, 5, 16, 23, 4095] {
            let r = Rcode::from_u16(v);
            assert_eq!(r.to_u16(), v);
            assert_eq!(Rcode::from_parts(r.low_bits(), r.high_bits()), r);
        }
    }

    #[test]
    fn rcode_success_and_display() {
        assert!(Rcode::NoError.is_success());
        assert!(!Rcode::ServFail.is_success());
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(Rcode::BadVers.to_string(), "BADVERS");
    }

    #[test]
    fn extended_rcode_splits_correctly() {
        let r = Rcode::BadVers; // 16 = high 1, low 0
        assert_eq!(r.low_bits(), 0);
        assert_eq!(r.high_bits(), 1);
    }
}
