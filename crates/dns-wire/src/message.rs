//! Whole-message encoding and decoding (RFC 1035 §4.1).

use std::fmt;

use crate::constants::{Rcode, RecordType};
use crate::error::WireError;
use crate::header::Header;
use crate::name::NameCompressor;
use crate::question::Question;
use crate::rdata::{OptData, RData};
use crate::record::ResourceRecord;
use crate::wire::{Reader, Writer};

/// EDNS(0) parameters extracted from (or destined for) an OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Advertised maximum UDP payload size.
    pub udp_payload_size: u16,
    /// High 8 bits of the extended rcode.
    pub extended_rcode: u8,
    /// EDNS version (0).
    pub version: u8,
    /// DNSSEC-OK bit.
    pub dnssec_ok: bool,
    /// The option list.
    pub options: OptData,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: crate::EDNS_UDP_PAYLOAD,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: OptData::default(),
        }
    }
}

impl Edns {
    fn to_record(&self) -> ResourceRecord {
        let mut ttl = 0u32;
        ttl |= (self.extended_rcode as u32) << 24;
        ttl |= (self.version as u32) << 16;
        if self.dnssec_ok {
            ttl |= 1 << 15;
        }
        ResourceRecord {
            name: crate::Name::root(),
            class_raw: self.udp_payload_size,
            ttl_raw: ttl,
            rdata: RData::Opt(self.options.clone()),
        }
    }

    fn from_record(rr: &ResourceRecord) -> Result<Self, WireError> {
        let options = match &rr.rdata {
            RData::Opt(o) => o.clone(),
            _ => return Err(WireError::MalformedEdns("OPT record without OPT rdata")),
        };
        if !rr.name.is_root() {
            return Err(WireError::MalformedEdns("OPT owner must be the root name"));
        }
        Ok(Edns {
            udp_payload_size: rr.class_raw,
            extended_rcode: (rr.ttl_raw >> 24) as u8,
            version: ((rr.ttl_raw >> 16) & 0xFF) as u8,
            dnssec_ok: rr.ttl_raw & (1 << 15) != 0,
            options,
        })
    }
}

/// A complete DNS message: header, four sections, and optional EDNS data.
///
/// The OPT pseudo-record is lifted out of the additional section into
/// [`Message::edns`] on decode and re-inserted on encode, so application code
/// never sees it as an ordinary record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// The message header. `qdcount`..`arcount` are recomputed on encode.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section, excluding any OPT record.
    pub additionals: Vec<ResourceRecord>,
    /// EDNS(0) parameters, if an OPT record is present.
    pub edns: Option<Edns>,
}

impl Message {
    /// The effective response code, merging the header's 4 bits with the
    /// EDNS extended bits when present.
    pub fn rcode(&self) -> Rcode {
        match &self.edns {
            Some(e) => Rcode::from_parts(self.header.flags.rcode.low_bits(), e.extended_rcode),
            None => self.header.flags.rcode,
        }
    }

    /// Encodes the message to wire format, recomputing all section counts.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        self.encode_into(Vec::with_capacity(512))
    }

    /// [`encode`](Self::encode) into a recycled buffer: `buf` is cleared,
    /// its capacity is reused, and the finished wire image is returned.
    /// The probe fast path pairs this with an arena of pooled buffers so
    /// repeated encodes perform no heap allocation.
    pub fn encode_into(&self, buf: Vec<u8>) -> Result<Vec<u8>, WireError> {
        let mut w = Writer::from_buf(buf);
        let mut c = NameCompressor::new();

        let arcount = self.additionals.len() + usize::from(self.edns.is_some());
        let header = Header {
            qdcount: self.questions.len() as u16,
            ancount: self.answers.len() as u16,
            nscount: self.authorities.len() as u16,
            arcount: arcount as u16,
            ..self.header
        };
        header.encode(&mut w)?;
        for q in &self.questions {
            q.encode(&mut w, &mut c)?;
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rr.encode(&mut w, &mut c)?;
        }
        if let Some(edns) = &self.edns {
            edns.to_record().encode(&mut w, &mut c)?;
        }
        Ok(w.into_bytes())
    }

    /// Decodes a full message, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let msg = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(msg)
    }

    /// Decodes a message from a reader (which may hold trailing data).
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let header = Header::decode(r)?;
        let mut questions = Vec::with_capacity(header.qdcount as usize);
        for _ in 0..header.qdcount {
            questions.push(Question::decode(r).map_err(|_| WireError::CountMismatch {
                section: "question",
            })?);
        }
        let mut answers = Vec::with_capacity(header.ancount as usize);
        for _ in 0..header.ancount {
            answers.push(ResourceRecord::decode(r).map_err(|e| upgrade(e, "answer"))?);
        }
        let mut authorities = Vec::with_capacity(header.nscount as usize);
        for _ in 0..header.nscount {
            authorities.push(ResourceRecord::decode(r).map_err(|e| upgrade(e, "authority"))?);
        }
        let mut additionals = Vec::with_capacity(header.arcount as usize);
        let mut edns = None;
        for _ in 0..header.arcount {
            let rr = ResourceRecord::decode(r).map_err(|e| upgrade(e, "additional"))?;
            if rr.rtype() == RecordType::OPT {
                if edns.is_some() {
                    return Err(WireError::MalformedEdns("more than one OPT record"));
                }
                edns = Some(Edns::from_record(&rr)?);
            } else {
                additionals.push(rr);
            }
        }
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }

    /// Total number of resource records across all sections (excluding OPT).
    pub fn record_count(&self) -> usize {
        self.answers.len() + self.authorities.len() + self.additionals.len()
    }
}

/// Maps truncation errors to a section-level count mismatch (the header
/// promised more records than the body holds), preserving other errors.
fn upgrade(e: WireError, section: &'static str) -> WireError {
    match e {
        WireError::Truncated { .. } => WireError::CountMismatch { section },
        other => other,
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ";; ->>HEADER<<- opcode: {}, status: {}, id: {}",
            self.header.flags.opcode,
            self.rcode(),
            self.header.id
        )?;
        writeln!(
            f,
            ";; QUERY: {}, ANSWER: {}, AUTHORITY: {}, ADDITIONAL: {}",
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len() + usize::from(self.edns.is_some()),
        )?;
        if !self.questions.is_empty() {
            writeln!(f, ";; QUESTION SECTION:")?;
            for q in &self.questions {
                writeln!(f, ";{q}")?;
            }
        }
        if !self.answers.is_empty() {
            writeln!(f, ";; ANSWER SECTION:")?;
            for rr in &self.answers {
                writeln!(f, "{rr}")?;
            }
        }
        if !self.authorities.is_empty() {
            writeln!(f, ";; AUTHORITY SECTION:")?;
            for rr in &self.authorities {
                writeln!(f, "{rr}")?;
            }
        }
        if !self.additionals.is_empty() {
            writeln!(f, ";; ADDITIONAL SECTION:")?;
            for rr in &self.additionals {
                writeln!(f, "{rr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MessageBuilder;
    use crate::constants::RecordType;
    use crate::name::Name;
    use std::net::Ipv4Addr;

    fn sample_response() -> Message {
        let mut m = MessageBuilder::query(7, Name::parse("example.com").unwrap(), RecordType::A)
            .recursion_desired(true)
            .edns_udp_size(4096)
            .build();
        m.header.flags.response = true;
        m.header.flags.recursion_available = true;
        m.answers.push(ResourceRecord::new(
            Name::parse("example.com").unwrap(),
            300,
            RData::A(Ipv4Addr::new(93, 184, 216, 34)),
        ));
        m
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample_response();
        let bytes = m.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.questions, m.questions);
        assert_eq!(back.answers, m.answers);
        assert_eq!(back.edns, m.edns);
        assert_eq!(back.header.ancount, 1);
        assert_eq!(back.header.arcount, 1, "OPT counts in arcount");
        assert!(back.additionals.is_empty(), "OPT is lifted out");
    }

    #[test]
    fn counts_recomputed_on_encode() {
        let mut m = sample_response();
        m.header.ancount = 99; // lies; encode must fix it
        let bytes = m.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.header.ancount, 1);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_response().encode().unwrap();
        bytes.push(0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn count_mismatch_detected() {
        let m = sample_response();
        let mut bytes = m.encode().unwrap();
        bytes[5] = 9; // qdcount = 9, body has 1 question
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::CountMismatch { .. })
        ));
    }

    #[test]
    fn double_opt_rejected() {
        let mut m = sample_response();
        // Manually add a second OPT as a plain additional record.
        m.additionals.push(Edns::default().to_record());
        let bytes = m.encode().unwrap();
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::MalformedEdns(_))
        ));
    }

    #[test]
    fn extended_rcode_merges() {
        let mut m = sample_response();
        m.header.flags.rcode = Rcode::from_u16(0); // low bits 0
        m.edns.as_mut().unwrap().extended_rcode = 1; // high bits 1 => 16 = BADVERS
        assert_eq!(m.rcode(), Rcode::BadVers);
        let bytes = m.encode().unwrap();
        assert_eq!(Message::decode(&bytes).unwrap().rcode(), Rcode::BadVers);
    }

    #[test]
    fn display_includes_sections() {
        let s = sample_response().to_string();
        assert!(s.contains("QUESTION SECTION"));
        assert!(s.contains("ANSWER SECTION"));
        assert!(s.contains("NOERROR"));
    }

    #[test]
    fn message_with_compression_is_smaller() {
        let name = Name::parse("really.long.domain.example.com").unwrap();
        let mut m = MessageBuilder::query(1, name.clone(), RecordType::A).build();
        m.header.flags.response = true;
        for _ in 0..4 {
            m.answers.push(ResourceRecord::new(
                name.clone(),
                60,
                RData::A(Ipv4Addr::new(10, 0, 0, 1)),
            ));
        }
        let bytes = m.encode().unwrap();
        // Owner name in each answer should be a 2-octet pointer, far less
        // than the 32-octet uncompressed name.
        assert!(bytes.len() < 12 + 36 + 4 * (2 + 10 + 4) + 10);
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.answers.len(), 4);
        assert_eq!(back.answers[3].name, name);
    }

    #[test]
    fn empty_message_round_trips() {
        let m = Message::default();
        let bytes = m.encode().unwrap();
        assert_eq!(bytes.len(), 12);
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, m);
    }
}
