//! Property-based tests for the wire codec: round trips, canonical
//! encodings, and decoder robustness against arbitrary bytes.

use proptest::prelude::*;

use dns_wire::{
    base64url, Message, MessageBuilder, Name, RData, RecordType, ResourceRecord, SoaData, SrvData,
    TxtData,
};
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        // Avoid '.' (label separator in presentation format); any other byte
        // is legal on the wire.
        (0u8..=255).prop_filter("not a dot", |b| *b != b'.'),
        1..=63,
    )
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..=5)
        .prop_filter_map("name too long", |labels| Name::from_labels(labels).ok())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..255), 1..4)
            .prop_map(|ss| RData::Txt(TxtData::new(ss))),
        (any::<u16>(), any::<u16>(), any::<u16>(), arb_name()).prop_map(
            |(priority, weight, port, target)| RData::Srv(SrvData {
                priority,
                weight,
                port,
                target
            })
        ),
        (1u16..=500, proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(t, data)| {
            // Avoid codes that collide with known types, which would decode
            // as typed rdata instead of opaque.
            let rtype = RecordType::from_u16(t + 1000);
            RData::Opaque { rtype, data }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn name_parse_display_round_trip(labels in proptest::collection::vec("[a-z0-9-]{1,20}", 1..5)) {
        let text = labels.join(".");
        if let Ok(name) = Name::parse(&text) {
            let shown = name.to_string();
            let back = Name::parse(&shown).unwrap();
            prop_assert_eq!(back, name);
        }
    }

    #[test]
    fn name_wire_round_trip(name in arb_name()) {
        let mut w = dns_wire::Writer::new();
        name.encode_uncompressed(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = dns_wire::Reader::new(&bytes);
        let back = Name::decode(&mut r).unwrap();
        prop_assert_eq!(back, name);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn message_round_trip(
        id in any::<u16>(),
        qname in arb_name(),
        records in proptest::collection::vec((arb_name(), any::<u32>(), arb_rdata()), 0..6),
        use_edns in any::<bool>(),
    ) {
        let mut builder = MessageBuilder::query(id, qname, RecordType::A)
            .recursion_desired(true);
        if use_edns {
            builder = builder.edns_udp_size(1232);
        }
        let mut msg = builder.build();
        msg.header.flags.response = true;
        for (name, ttl, rdata) in records {
            msg.answers.push(ResourceRecord::new(name, ttl, rdata));
        }
        let bytes = msg.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        prop_assert_eq!(back.header.id, id);
        prop_assert_eq!(&back.questions, &msg.questions);
        prop_assert_eq!(&back.answers, &msg.answers);
        prop_assert_eq!(&back.edns, &msg.edns);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Any byte salad must produce Ok or Err, never a panic or hang.
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_message(
        qname in arb_name(),
        flip_at in any::<prop::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let msg = MessageBuilder::query(1, qname, RecordType::A)
            .edns_udp_size(4096)
            .build();
        let mut bytes = msg.encode().unwrap();
        let i = flip_at.index(bytes.len());
        bytes[i] = new_byte;
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn base64url_round_trip(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let enc = base64url::encode(&data);
        prop_assert_eq!(base64url::decode(&enc).unwrap(), data);
        prop_assert!(enc.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_'));
    }

    #[test]
    fn base64url_decode_arbitrary_strings(s in "[ -~]{0,64}") {
        // Printable-ASCII salad: decode must never panic, and when it
        // succeeds re-encoding must reproduce the canonical input.
        if let Ok(raw) = base64url::decode(&s) {
            prop_assert_eq!(base64url::encode(&raw), s);
        }
    }

    #[test]
    fn compression_preserves_names(
        names in proptest::collection::vec(arb_name(), 1..8),
    ) {
        // Encode many records sharing suffixes; decode must recover each
        // owner name exactly.
        let mut msg = Message::default();
        msg.header.flags.response = true;
        for n in &names {
            msg.answers.push(ResourceRecord::new(
                n.clone(),
                1,
                RData::A(Ipv4Addr::new(127, 0, 0, 1)),
            ));
        }
        let bytes = msg.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        let got: Vec<Name> = back.answers.into_iter().map(|r| r.name).collect();
        prop_assert_eq!(got, names);
    }
}
