//! Miri smoke suite: a small, fast pass over dns-wire's parsing and
//! serialisation paths, sized so `cargo +nightly miri test -p dns-wire
//! --test miri_smoke` finishes in seconds. Under plain `cargo test` it
//! doubles as a cheap round-trip sanity check.
//!
//! dns-wire is `#![forbid(unsafe_code)]`, so what Miri buys here is
//! checking of the index arithmetic underneath the `Reader`/`Writer`
//! cursors, name decompression offsets and base64url table lookups —
//! the places where a refactor could introduce out-of-bounds panics on
//! malformed input.

use std::net::Ipv4Addr;

use dns_wire::{
    base64url, odoh, tcp_frame, Message, MessageBuilder, Name, RData, Rcode, RecordType,
};

#[test]
fn query_round_trip() {
    let name = Name::parse("resolver.example.com").expect("valid name");
    let query = MessageBuilder::query(0x1234, name, RecordType::A)
        .recursion_desired(true)
        .edns_udp_size(1232)
        .build();
    let wire = query.encode().expect("query encodes");
    let back = Message::decode(&wire).expect("query decodes");
    assert_eq!(back.header.id, 0x1234);
    assert_eq!(back.questions.len(), 1);
    assert_eq!(back.questions[0].name.to_string(), "resolver.example.com.");
}

#[test]
fn response_with_answer_round_trip() {
    let name = Name::parse("a.example.net").expect("valid name");
    let query = MessageBuilder::query(7, name.clone(), RecordType::A).build();
    let response = MessageBuilder::response_to(&query, Rcode::NoError)
        .answer(name, 300, RData::A(Ipv4Addr::new(192, 0, 2, 1)))
        .build();
    let wire = response.encode().expect("response encodes");
    let back = Message::decode(&wire).expect("response decodes");
    assert_eq!(back.answers.len(), 1);
    assert!(back.header.flags.response);
}

#[test]
fn malformed_input_is_rejected_not_panicked() {
    // Truncations of a valid message exercise every bounds check in the
    // Reader without ever reading out of bounds.
    let name = Name::parse("deep.label.chain.example.org").expect("valid name");
    let wire = MessageBuilder::query(1, name, RecordType::AAAA)
        .build()
        .encode()
        .expect("encodes");
    for cut in 0..wire.len() {
        let _ = Message::decode(&wire[..cut]);
    }
    // A compression pointer into nowhere must error, not loop or index OOB.
    let bogus = [0u8, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0xFF, 0, 1, 0, 1];
    assert!(Message::decode(&bogus).is_err());
}

#[test]
fn tcp_framing_round_trip() {
    let payload = vec![0xABu8; 40];
    let framed = tcp_frame::frame(&payload).expect("frames");
    let mut deframer = tcp_frame::StreamDeframer::new();
    // Feed byte-by-byte: the length-prefix state machine sees every split.
    let mut out = Vec::new();
    for b in &framed {
        out.extend(deframer.feed(std::slice::from_ref(b)));
    }
    assert_eq!(out, vec![payload]);
}

#[test]
fn base64url_round_trip() {
    for len in 0..16 {
        let data: Vec<u8> = (0..len as u8).collect();
        let enc = base64url::encode(&data);
        assert_eq!(base64url::decode(&enc).expect("decodes"), data);
    }
    assert!(base64url::decode("not%valid").is_err());
}

#[test]
fn odoh_seal_open_round_trip() {
    let key = odoh::TargetKey::from_seed(42);
    let query = b"tiny dns query".to_vec();
    let sealed = odoh::seal_query(&key, &query, 7);
    let wire = sealed.encode().expect("sealed encodes");
    let reparsed = odoh::ObliviousMessage::decode(&wire).expect("sealed decodes");
    let (opened, kem) = odoh::open_query(&key, &reparsed).expect("opens");
    assert_eq!(opened, query);
    let resp = odoh::seal_response(&key, &kem, b"tiny dns response");
    let back = odoh::open_response(&key, &kem, &resp).expect("response opens");
    assert_eq!(back.as_slice(), b"tiny dns response");
}
