//! Property tests for the deterministic M/D/c queueing model and the
//! per-site load tables built on it.
//!
//! The contracts the load subsystem leans on:
//!
//! * **zero at zero**: an idle site adds exactly `0.0` ms — the IEEE
//!   identity that keeps unloaded campaigns byte-identical;
//! * **monotone**: queueing delay and shed probability never decrease as
//!   offered load grows;
//! * **bounded, then shedding**: delay is capped at the admission
//!   ceiling's value (the model never queues unboundedly); past capacity
//!   the excess is shed, with shed probability approaching 1 as the
//!   offered rate grows without bound;
//! * **stable ordering**: per-site load tables list sites in
//!   deployment order regardless of the offered-load values, so two
//!   differently-seeded load vectors yield tables that differ only in
//!   their numbers, never their row order.

use netsim::geo::cities;
use netsim::rng::{derive_seed, splitmix64};
use netsim::{Deployment, IcmpPolicy, Site};
use proptest::prelude::*;
use resolver_sim::{HealthModel, QueueModel, ResolverInstance, ServerProfile};

fn profiles() -> [ServerProfile; 4] {
    [
        ServerProfile::production(),
        ServerProfile::midsize(),
        ServerProfile::hobbyist(),
        ServerProfile::odoh_target(),
    ]
}

proptest! {
    #[test]
    fn delay_is_zero_at_zero_and_monotone_in_load(
        profile_idx in 0usize..4,
        // Two offered rates spanning idle to far past any profile's capacity.
        a in 0.0f64..20_000_000.0,
        b in 0.0f64..20_000_000.0,
    ) {
        let q = profiles()[profile_idx].queue();
        prop_assert_eq!(q.queue_delay_ms(0.0), 0.0, "exact zero at idle");
        prop_assert_eq!(q.shed_probability(0.0), 0.0);

        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            q.queue_delay_ms(lo) <= q.queue_delay_ms(hi),
            "delay must be monotone: {} qps -> {} ms, {} qps -> {} ms",
            lo, q.queue_delay_ms(lo), hi, q.queue_delay_ms(hi)
        );
        prop_assert!(
            q.shed_probability(lo) <= q.shed_probability(hi),
            "shed must be monotone"
        );
    }

    #[test]
    fn delay_is_bounded_and_overload_sheds(
        profile_idx in 0usize..4,
        over in 1.0f64..1000.0,
    ) {
        let q = profiles()[profile_idx].queue();
        let capacity = q.capacity_qps();
        prop_assert!(capacity.is_finite() && capacity > 0.0);

        // However far past capacity, delay never exceeds the admission
        // ceiling's value: the model sheds instead of queueing unboundedly.
        let offered = capacity * over;
        prop_assert!(
            q.queue_delay_ms(offered) <= q.max_queue_delay_ms() + 1e-9,
            "delay {} must stay under the cap {}",
            q.queue_delay_ms(offered), q.max_queue_delay_ms()
        );
        prop_assert!(
            q.shed_probability(offered) > 0.0,
            "past capacity the site must shed"
        );
        // Below the admission ceiling nothing sheds.
        prop_assert_eq!(q.shed_probability(capacity * 0.5), 0.0);
    }

    #[test]
    fn shed_probability_approaches_one(over in 10.0f64..1e6) {
        let q = QueueModel::new(4, 1.0);
        let p = q.shed_probability(q.capacity_qps() * over);
        prop_assert!((0.0..1.0).contains(&p));
        // 1 - cap/rho: at 10x overload at least 90% of the cap's
        // complement is shed.
        prop_assert!(p >= 1.0 - 1.0 / over, "shed {} at {}x", p, over);
    }
}

/// Builds a three-site anycast instance for the load-table checks.
fn anycast_instance() -> ResolverInstance {
    ResolverInstance::new(
        "dns.example",
        Deployment::anycast(vec![
            Site::datacenter(cities::ASHBURN_VA),
            Site::datacenter(cities::FRANKFURT),
            Site::datacenter(cities::SEOUL),
        ]),
        ServerProfile::hobbyist(),
        IcmpPolicy::Respond,
        HealthModel::reliable(),
    )
}

/// A deterministic per-site offered-load vector derived from a seed.
fn offered_from_seed(seed: u64, sites: usize, scale: f64) -> Vec<f64> {
    (0..sites)
        .map(|i| {
            let mut state = derive_seed(seed, "offered") ^ (i as u64).wrapping_mul(0x9E37);
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            u * scale
        })
        .collect()
}

#[test]
fn load_tables_keep_site_order_across_seeds() {
    let inst = anycast_instance();
    let capacity = inst.servers[0].profile.queue().capacity_qps();
    for seed in [7u64, 1234] {
        let offered = offered_from_seed(seed, 3, capacity * 3.0);
        let table = inst.site_load_table(&offered);
        // Row order is deployment order, never sorted by load.
        let sites: Vec<usize> = table.iter().map(|row| row.site).collect();
        assert_eq!(sites, vec![0, 1, 2], "seed {seed} permuted the rows");
        assert_eq!(
            (table[0].city, table[1].city, table[2].city),
            ("Ashburn", "Frankfurt", "Seoul"),
            "seed {seed}"
        );
        // And the table is a pure function: same seed, same rows.
        assert_eq!(table, inst.site_load_table(&offered), "seed {seed} rerun");
    }
    // Two seeds agree on structure even though every number differs.
    let a = inst.site_load_table(&offered_from_seed(7, 3, capacity * 3.0));
    let b = inst.site_load_table(&offered_from_seed(1234, 3, capacity * 3.0));
    assert_ne!(a, b, "distinct seeds must produce distinct loads");
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!((ra.site, ra.city), (rb.site, rb.city));
    }
}

#[test]
fn load_table_rows_are_consistent_with_the_queue_model() {
    let inst = anycast_instance();
    let q = inst.servers[0].profile.queue();
    let capacity = q.capacity_qps();
    let offered = vec![0.0, capacity * 0.5, capacity * 4.0];
    let table = inst.site_load_table(&offered);
    for (row, &qps) in table.iter().zip(&offered) {
        assert_eq!(row.offered_qps, qps);
        assert_eq!(row.utilization, q.utilization(qps));
        assert_eq!(row.queue_delay_ms, q.queue_delay_ms(qps));
        assert_eq!(row.shed_probability, q.shed_probability(qps));
    }
    assert_eq!(table[0].queue_delay_ms, 0.0);
    assert!(table[1].queue_delay_ms > 0.0 && table[1].shed_probability == 0.0);
    assert!(table[2].shed_probability > 0.5);
}
