//! Property-based tests: cache invariants, zone-file parser robustness,
//! and recursive-resolution consistency.

use proptest::prelude::*;

use dns_wire::{Name, RData, RecordType};
use netsim::geo::cities;
use netsim::{SimDuration, SimRng, SimTime};
use resolver_sim::{parse_zone, AuthorityTree, RecordCache, RecursiveResolver};

fn at(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_never_exceeds_capacity(
        capacity in 1usize..32,
        ops in proptest::collection::vec(("[a-d]{1,3}\\.com", 0u64..100, 1u64..200), 1..200),
    ) {
        let mut cache = RecordCache::new(capacity);
        for (domain, time, ttl) in ops {
            let name = Name::parse(&domain).unwrap();
            cache.insert(
                name.clone(),
                RecordType::A,
                vec![RData::A(std::net::Ipv4Addr::new(1, 2, 3, 4))],
                SimDuration::from_secs(ttl),
                at(time),
            );
            prop_assert!(cache.len() <= capacity, "len {} > capacity {}", cache.len(), capacity);
            let _ = cache.lookup(&name, RecordType::A, at(time));
        }
    }

    #[test]
    fn cache_hit_implies_unexpired(
        ttl in 1u64..100,
        insert_at in 0u64..50,
        query_at in 0u64..200,
    ) {
        prop_assume!(query_at >= insert_at);
        let mut cache = RecordCache::new(8);
        let name = Name::parse("x.test").unwrap();
        cache.insert(
            name.clone(),
            RecordType::A,
            vec![RData::A(std::net::Ipv4Addr::LOCALHOST)],
            SimDuration::from_secs(ttl),
            at(insert_at),
        );
        let hit = cache.lookup(&name, RecordType::A, at(query_at)).is_some();
        prop_assert_eq!(hit, query_at < insert_at + ttl);
    }

    #[test]
    fn zone_parser_never_panics(text in "\\PC{0,400}") {
        let _ = parse_zone(&text, Some("fuzz.test"), cities::SEOUL);
    }

    #[test]
    fn zone_parser_never_panics_on_liney_input(
        lines in proptest::collection::vec("[ -~]{0,60}", 0..20)
    ) {
        let text = lines.join("\n");
        let _ = parse_zone(&text, Some("fuzz.test"), cities::SEOUL);
    }

    #[test]
    fn resolution_is_deterministic_and_consistent(
        seed in any::<u64>(),
        domain in "[a-z]{1,8}\\.(com|org|invalid)",
    ) {
        let auth = AuthorityTree::standard();
        let qname = Name::parse(&domain).unwrap();
        let run = |s| {
            let mut r = RecursiveResolver::new(cities::FRANKFURT, 64);
            let mut rng = SimRng::from_seed(s);
            let first = r.resolve(&qname, RecordType::A, &auth, at(0), &mut rng);
            let second = r.resolve(&qname, RecordType::A, &auth, at(1), &mut rng);
            (first, second)
        };
        let (a1, a2) = run(seed);
        let (b1, b2) = run(seed);
        prop_assert_eq!(&a1, &b1);
        prop_assert_eq!(&a2, &b2);
        // The second query (1 s later) must be served from cache — positive
        // or negative — and agree with the first on rcode and records.
        prop_assert!(a2.cache_hit);
        prop_assert_eq!(a1.rcode, a2.rcode);
        prop_assert_eq!(a1.records, a2.records);
        prop_assert_eq!(a2.upstream_time, SimDuration::ZERO);
    }
}
