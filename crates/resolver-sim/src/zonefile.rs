//! A parser for RFC 1035 master files ("zone files") — the standard way
//! authoritative DNS data is written down — so simulated authority trees
//! can be loaded from text instead of built in code.
//!
//! Supported subset: `$ORIGIN` / `$TTL` directives, `;` comments, `@` for
//! the origin, relative and absolute owner names, wildcard owners (`*`),
//! optional per-record TTL and `IN` class, and A / AAAA / CNAME / NS / MX /
//! TXT / PTR records.

use std::net::{Ipv4Addr, Ipv6Addr};

use dns_wire::{Name, RData, RecordType, TxtData};
use netsim::geo::City;

use crate::authority::Zone;

/// A zone-file parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ZoneParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ZoneParseError {}

fn err(line: usize, msg: impl Into<String>) -> ZoneParseError {
    ZoneParseError {
        line,
        msg: msg.into(),
    }
}

/// Strips a trailing comment (outside quotes).
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ';' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits a record line into fields, keeping quoted strings whole.
fn fields(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn resolve_name(token: &str, origin: &Name, line: usize) -> Result<Name, ZoneParseError> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if let Some(stripped) = token.strip_suffix('.') {
        return Name::parse(stripped).map_err(|e| err(line, format!("bad name {token:?}: {e}")));
    }
    // Relative: append the origin.
    let mut labels: Vec<Vec<u8>> = token.split('.').map(|l| l.as_bytes().to_vec()).collect();
    for l in origin.labels() {
        labels.push(l.to_vec());
    }
    Name::from_labels(labels).map_err(|e| err(line, format!("bad name {token:?}: {e}")))
}

/// Parses one zone file into a [`Zone`] located at `location`.
///
/// The `$ORIGIN` directive (or the first absolute owner) defines the apex;
/// `origin` provides it when the file omits the directive.
pub fn parse_zone(
    text: &str,
    origin: Option<&str>,
    location: City,
) -> Result<Zone, ZoneParseError> {
    let mut origin: Option<Name> = match origin {
        Some(o) => Some(Name::parse(o).map_err(|e| err(0, format!("bad origin: {e}")))?),
        None => None,
    };
    let mut default_ttl: u64 = 3600;
    let mut zone: Option<Zone> = None;
    let mut last_owner: Option<Name> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let body = strip_comment(raw);
        if body.trim().is_empty() {
            continue;
        }
        // The owner field is omitted when the line starts with whitespace.
        let owner_omitted = body.starts_with(char::is_whitespace);
        let mut f = fields(body);
        if f.is_empty() {
            continue;
        }

        // Directives.
        if f[0] == "$ORIGIN" {
            let o = f.get(1).ok_or_else(|| err(line, "$ORIGIN needs a name"))?;
            let stripped = o.strip_suffix('.').unwrap_or(o);
            origin =
                Some(Name::parse(stripped).map_err(|e| err(line, format!("bad $ORIGIN: {e}")))?);
            continue;
        }
        if f[0] == "$TTL" {
            default_ttl = f
                .get(1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(line, "$TTL needs a number"))?;
            continue;
        }

        let origin_name = origin
            .clone()
            .ok_or_else(|| err(line, "record before $ORIGIN (and no default origin)"))?;
        if zone.is_none() {
            zone = Some(Zone::new(origin_name.clone(), location));
        }

        // Owner.
        let owner = if owner_omitted {
            last_owner
                .clone()
                .ok_or_else(|| err(line, "blank owner with no previous record"))?
        } else {
            let token = f.remove(0);
            resolve_name(&token, &origin_name, line)?
        };
        last_owner = Some(owner.clone());

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        while let Some(first) = f.first() {
            if let Ok(t) = first.parse::<u64>() {
                ttl = t;
                f.remove(0);
            } else if first == "IN" {
                f.remove(0);
            } else {
                break;
            }
        }

        let rtype_token = if f.is_empty() {
            return Err(err(line, "missing record type"));
        } else {
            f.remove(0)
        };

        let wildcard = owner.labels().next().map(|l| l == b"*").unwrap_or(false);

        let (rtype, rdatas): (RecordType, Vec<RData>) = match rtype_token.as_str() {
            "A" => {
                let ips: Result<Vec<RData>, _> = f
                    .iter()
                    .map(|t| {
                        t.parse::<Ipv4Addr>()
                            .map(RData::A)
                            .map_err(|_| err(line, format!("bad A address {t:?}")))
                    })
                    .collect();
                let ips = ips?;
                if ips.is_empty() {
                    return Err(err(line, "A record needs an address"));
                }
                (RecordType::A, ips)
            }
            "AAAA" => {
                let ip: Ipv6Addr = f
                    .first()
                    .ok_or_else(|| err(line, "AAAA needs an address"))?
                    .parse()
                    .map_err(|_| err(line, "bad AAAA address"))?;
                (RecordType::AAAA, vec![RData::Aaaa(ip)])
            }
            "CNAME" => {
                let target = resolve_name(
                    f.first().ok_or_else(|| err(line, "CNAME needs a target"))?,
                    &origin_name,
                    line,
                )?;
                (RecordType::CNAME, vec![RData::Cname(target)])
            }
            "NS" => {
                let target = resolve_name(
                    f.first().ok_or_else(|| err(line, "NS needs a target"))?,
                    &origin_name,
                    line,
                )?;
                (RecordType::NS, vec![RData::Ns(target)])
            }
            "PTR" => {
                let target = resolve_name(
                    f.first().ok_or_else(|| err(line, "PTR needs a target"))?,
                    &origin_name,
                    line,
                )?;
                (RecordType::PTR, vec![RData::Ptr(target)])
            }
            "MX" => {
                let preference: u16 = f
                    .first()
                    .ok_or_else(|| err(line, "MX needs a preference"))?
                    .parse()
                    .map_err(|_| err(line, "bad MX preference"))?;
                let exchange = resolve_name(
                    f.get(1).ok_or_else(|| err(line, "MX needs an exchange"))?,
                    &origin_name,
                    line,
                )?;
                (
                    RecordType::MX,
                    vec![RData::Mx {
                        preference,
                        exchange,
                    }],
                )
            }
            "TXT" => {
                if f.is_empty() {
                    return Err(err(line, "TXT needs a string"));
                }
                (RecordType::TXT, vec![RData::Txt(TxtData::new(f.iter()))])
            }
            other => return Err(err(line, format!("unsupported record type {other:?}"))),
        };

        // detlint:allow(unwrap, record lines are rejected earlier unless a zone header initialised the zone)
        let z = zone.as_mut().expect("zone initialised above");
        if wildcard {
            z.add_wildcard(rtype, rdatas, ttl);
        } else {
            z.add(owner, rtype, rdatas, ttl);
        }
    }

    zone.ok_or_else(|| err(0, "zone file contains no records"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::{AuthorityAnswer, AuthorityTree};
    use netsim::geo::cities;

    const SAMPLE: &str = r#"
$ORIGIN example.org.
$TTL 300
@       IN  A     93.184.216.34       ; apex
@       IN  AAAA  2606:2800:220:1::1
www     IN  CNAME @
        600 IN TXT "v=spf1 -all" "second string"
mail    IN  MX    10 mx.example.org.
ns      IN  NS    ns1.provider.net.
*       IN  A     10.0.0.99           ; wildcard
"#;

    fn zone() -> Zone {
        parse_zone(SAMPLE, None, cities::FRANKFURT).unwrap()
    }

    fn tree_with(zone: Zone) -> AuthorityTree {
        let mut t = AuthorityTree::new();
        t.add_tld("org", cities::ASHBURN_VA);
        t.add_zone(zone);
        t
    }

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parses_apex_records() {
        let t = tree_with(zone());
        match t.authoritative_answer(&n("example.org"), RecordType::A) {
            AuthorityAnswer::Answer { records, ttl_secs } => {
                assert_eq!(records, vec![RData::A("93.184.216.34".parse().unwrap())]);
                assert_eq!(ttl_secs, 300, "default $TTL applies");
            }
            other => panic!("{other:?}"),
        }
        match t.authoritative_answer(&n("example.org"), RecordType::AAAA) {
            AuthorityAnswer::Answer { records, .. } => {
                assert!(matches!(records[0], RData::Aaaa(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relative_names_and_blank_owner_continuation() {
        let t = tree_with(zone());
        // www is a CNAME to the origin.
        match t.authoritative_answer(&n("www.example.org"), RecordType::CNAME) {
            AuthorityAnswer::Answer { records, .. } => {
                assert_eq!(records, vec![RData::Cname(n("example.org"))]);
            }
            other => panic!("{other:?}"),
        }
        // The TXT line has a blank owner → continues www, with explicit TTL.
        match t.authoritative_answer(&n("www.example.org"), RecordType::TXT) {
            AuthorityAnswer::Answer { records, ttl_secs } => {
                assert_eq!(ttl_secs, 600);
                match &records[0] {
                    RData::Txt(t) => {
                        let strings: Vec<&[u8]> = t.strings().collect();
                        assert_eq!(strings[0], b"v=spf1 -all");
                        assert_eq!(strings[1], b"second string");
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mx_and_wildcard() {
        let t = tree_with(zone());
        match t.authoritative_answer(&n("mail.example.org"), RecordType::MX) {
            AuthorityAnswer::Answer { records, .. } => {
                assert_eq!(
                    records,
                    vec![RData::Mx {
                        preference: 10,
                        exchange: n("mx.example.org"),
                    }]
                );
            }
            other => panic!("{other:?}"),
        }
        // Any unknown subdomain matches the wildcard.
        match t.authoritative_answer(&n("whatever.example.org"), RecordType::A) {
            AuthorityAnswer::Answer { records, .. } => {
                assert_eq!(records, vec![RData::A("10.0.0.99".parse().unwrap())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explicit_origin_parameter() {
        let z = parse_zone("@ IN A 1.2.3.4\n", Some("implied.test"), cities::SEOUL).unwrap();
        assert_eq!(z.apex, n("implied.test"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e =
            parse_zone("$ORIGIN x.test.\nfoo IN A not-an-ip\n", None, cities::SEOUL).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));

        let e = parse_zone("foo IN A 1.2.3.4\n", None, cities::SEOUL).unwrap_err();
        assert!(e.msg.contains("before $ORIGIN"));

        let e = parse_zone(
            "$ORIGIN x.test.\nfoo IN WKS whatever\n",
            None,
            cities::SEOUL,
        )
        .unwrap_err();
        assert!(e.msg.contains("unsupported"));

        assert!(parse_zone("; only comments\n", Some("x.test"), cities::SEOUL).is_err());
    }

    #[test]
    fn comments_inside_quotes_are_preserved() {
        let text = "$ORIGIN q.test.\n@ IN TXT \"semi;colon\" ; real comment\n";
        let z = parse_zone(text, None, cities::SEOUL).unwrap();
        let t = {
            let mut tree = AuthorityTree::new();
            tree.add_tld("test", cities::ASHBURN_VA);
            tree.add_zone(z);
            tree
        };
        match t.authoritative_answer(&n("q.test"), RecordType::TXT) {
            AuthorityAnswer::Answer { records, .. } => match &records[0] {
                RData::Txt(txt) => assert_eq!(txt.joined(), b"semi;colon"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_a_records_in_one_line() {
        let z = parse_zone(
            "$ORIGIN m.test.\n@ IN A 1.1.1.1 2.2.2.2 3.3.3.3\n",
            None,
            cities::SEOUL,
        )
        .unwrap();
        let mut tree = AuthorityTree::new();
        tree.add_tld("test", cities::ASHBURN_VA);
        tree.add_zone(z);
        match tree.authoritative_answer(&n("m.test"), RecordType::A) {
            AuthorityAnswer::Answer { records, .. } => assert_eq!(records.len(), 3),
            other => panic!("{other:?}"),
        }
    }
}
