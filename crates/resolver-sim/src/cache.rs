//! The resolver-side record cache: TTL expiry plus LRU eviction.
//!
//! The paper's methodology leans on caching — "it is reasonable to expect
//! that most people query sites that are already in cache ... the presence
//! of cached entries enables a more controlled experiment" — so the cache's
//! hit behaviour directly shapes measured response times.

use std::collections::BTreeMap;

use dns_wire::{Name, RData, RecordType};
use netsim::{SimDuration, SimTime};

/// A cached answer: the records plus when they expire.
#[derive(Debug, Clone)]
struct Entry {
    records: Vec<RData>,
    expires: SimTime,
    /// LRU clock value at last touch.
    last_used: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned unexpired records.
    pub hits: u64,
    /// Lookups that found nothing (or only expired records).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A TTL + LRU record cache keyed by `(name, type)`.
#[derive(Debug)]
pub struct RecordCache {
    entries: BTreeMap<(Name, RecordType), Entry>,
    capacity: usize,
    clock: u64,
    stats: CacheStats,
}

impl RecordCache {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        RecordCache {
            entries: BTreeMap::new(),
            capacity,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Current number of live entries (including not-yet-collected expired
    /// ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up records for `(name, rtype)` at time `now`.
    pub fn lookup(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Vec<RData>> {
        self.clock += 1;
        let key = (name.clone(), rtype);
        match self.entries.get_mut(&key) {
            Some(e) if e.expires > now => {
                e.last_used = self.clock;
                self.stats.hits += 1;
                Some(e.records.clone())
            }
            Some(_) => {
                // Expired in place: collect it.
                self.entries.remove(&key);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts records with the given TTL, evicting the least-recently-used
    /// entry if at capacity.
    pub fn insert(
        &mut self,
        name: Name,
        rtype: RecordType,
        records: Vec<RData>,
        ttl: SimDuration,
        now: SimTime,
    ) {
        self.clock += 1;
        let key = (name, rtype);
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Evict the LRU entry.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                records,
                expires: now + ttl,
                last_used: self.clock,
            },
        );
    }

    /// Drops every expired entry (periodic maintenance).
    pub fn purge_expired(&mut self, now: SimTime) {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires > now);
        self.stats.expirations += (before - self.entries.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a(o: u8) -> Vec<RData> {
        vec![RData::A(Ipv4Addr::new(10, 0, 0, o))]
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn hit_before_ttl_miss_after() {
        let mut c = RecordCache::new(16);
        c.insert(
            name("google.com"),
            RecordType::A,
            a(1),
            SimDuration::from_secs(300),
            at(0),
        );
        assert_eq!(
            c.lookup(&name("google.com"), RecordType::A, at(299)),
            Some(a(1))
        );
        assert_eq!(c.lookup(&name("google.com"), RecordType::A, at(300)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.expirations), (1, 1, 1));
    }

    #[test]
    fn type_is_part_of_the_key() {
        let mut c = RecordCache::new(16);
        c.insert(
            name("x.com"),
            RecordType::A,
            a(1),
            SimDuration::from_secs(60),
            at(0),
        );
        assert!(c.lookup(&name("x.com"), RecordType::AAAA, at(1)).is_none());
        assert!(c.lookup(&name("x.com"), RecordType::A, at(1)).is_some());
    }

    #[test]
    fn name_lookup_is_case_insensitive() {
        let mut c = RecordCache::new(16);
        c.insert(
            name("Google.COM"),
            RecordType::A,
            a(1),
            SimDuration::from_secs(60),
            at(0),
        );
        assert!(c
            .lookup(&name("google.com"), RecordType::A, at(1))
            .is_some());
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        let mut c = RecordCache::new(2);
        c.insert(
            name("a.com"),
            RecordType::A,
            a(1),
            SimDuration::from_secs(60),
            at(0),
        );
        c.insert(
            name("b.com"),
            RecordType::A,
            a(2),
            SimDuration::from_secs(60),
            at(0),
        );
        // Touch a.com so b.com becomes the LRU victim.
        assert!(c.lookup(&name("a.com"), RecordType::A, at(1)).is_some());
        c.insert(
            name("c.com"),
            RecordType::A,
            a(3),
            SimDuration::from_secs(60),
            at(1),
        );
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&name("a.com"), RecordType::A, at(2)).is_some());
        assert!(c.lookup(&name("b.com"), RecordType::A, at(2)).is_none());
        assert!(c.lookup(&name("c.com"), RecordType::A, at(2)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_ttl() {
        let mut c = RecordCache::new(4);
        c.insert(
            name("a.com"),
            RecordType::A,
            a(1),
            SimDuration::from_secs(10),
            at(0),
        );
        c.insert(
            name("a.com"),
            RecordType::A,
            a(2),
            SimDuration::from_secs(100),
            at(5),
        );
        assert_eq!(c.lookup(&name("a.com"), RecordType::A, at(50)), Some(a(2)));
    }

    #[test]
    fn purge_removes_only_expired() {
        let mut c = RecordCache::new(8);
        c.insert(
            name("a.com"),
            RecordType::A,
            a(1),
            SimDuration::from_secs(10),
            at(0),
        );
        c.insert(
            name("b.com"),
            RecordType::A,
            a(2),
            SimDuration::from_secs(100),
            at(0),
        );
        c.purge_expired(at(50));
        assert_eq!(c.len(), 1);
        assert!(c.lookup(&name("b.com"), RecordType::A, at(50)).is_some());
    }

    #[test]
    fn hit_ratio() {
        let mut c = RecordCache::new(8);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.insert(
            name("a.com"),
            RecordType::A,
            a(1),
            SimDuration::from_secs(60),
            at(0),
        );
        c.lookup(&name("a.com"), RecordType::A, at(1));
        c.lookup(&name("z.com"), RecordType::A, at(1));
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        RecordCache::new(0);
    }
}
