//! Deterministic per-site queueing capacity: an M/D/c-style steady-state
//! service model computed from the offered arrival rate — no per-request
//! event simulation.
//!
//! A site runs `servers` parallel workers, each taking a deterministic
//! `service_ms` per query, so its capacity is `servers × 1000 / service_ms`
//! queries per second. Against an offered rate λ the utilization is
//! ρ = λ / capacity, and an *admitted* query waits the closed-form
//! M/D/c-style mean queueing delay
//!
//! ```text
//! Wq(ρ) = service_ms · ρ / (2 · servers · (1 − ρ))
//! ```
//!
//! (the Pollaczek–Khinchine mean wait for deterministic service, divided
//! across the `c` workers). The model never queues unboundedly: utilization
//! is capped at [`max_utilization`](QueueModel::max_utilization), and the
//! offered traffic beyond that admission cap is **shed** — answered
//! SERVFAIL (or HTTP 429) by the frontend instead of queued. Three
//! properties the load subsystem's tests pin:
//!
//! * `Wq` is **zero at zero load** — a zero-rate load model is
//!   byte-transparent to campaigns;
//! * `Wq` is **monotone non-decreasing** in the offered rate;
//! * past capacity the site **sheds instead of queueing**: the delay
//!   saturates at `Wq(max_utilization)` and the shed probability rises
//!   toward 1 as λ → ∞.
//!
//! Everything here is a pure function of `(model, offered rate)`: no RNG,
//! no wall clock, no state. Stochastic per-attempt shed decisions are made
//! by the caller via the hash-based machinery in `netsim::faults`.

/// Default admission cap on utilization: offered traffic beyond this
/// fraction of capacity is shed rather than queued.
pub const MAX_UTILIZATION: f64 = 0.95;

/// The deterministic queueing capacity of one resolver site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueModel {
    /// Parallel workers at the site (the `c` in M/D/c).
    pub servers: u32,
    /// Deterministic per-query service time, milliseconds.
    pub service_ms: f64,
    /// Admission cap on utilization (`0 < max_utilization < 1`): offered
    /// load beyond it is shed, never queued.
    pub max_utilization: f64,
}

impl QueueModel {
    /// A queue model with the default admission cap.
    pub fn new(servers: u32, service_ms: f64) -> Self {
        QueueModel {
            servers,
            service_ms,
            max_utilization: MAX_UTILIZATION,
        }
    }

    /// The site's saturation throughput, queries per second.
    pub fn capacity_qps(&self) -> f64 {
        if self.service_ms <= 0.0 {
            return f64::INFINITY;
        }
        f64::from(self.servers.max(1)) * 1000.0 / self.service_ms
    }

    /// Raw (uncapped) utilization against an offered rate, `λ / capacity`.
    pub fn utilization(&self, offered_qps: f64) -> f64 {
        let cap = self.capacity_qps();
        if !cap.is_finite() {
            return 0.0;
        }
        (offered_qps / cap).max(0.0)
    }

    /// Mean queueing delay of an *admitted* query at the offered rate,
    /// milliseconds. Zero at zero load, monotone non-decreasing, and
    /// saturated at `Wq(max_utilization)` past the admission cap (the
    /// excess traffic is shed, not queued).
    pub fn queue_delay_ms(&self, offered_qps: f64) -> f64 {
        let rho = self.utilization(offered_qps).min(self.max_utilization);
        if rho <= 0.0 {
            return 0.0;
        }
        self.service_ms * rho / (2.0 * f64::from(self.servers.max(1)) * (1.0 - rho))
    }

    /// The delay ceiling: [`queue_delay_ms`](Self::queue_delay_ms) at the
    /// admission cap.
    pub fn max_queue_delay_ms(&self) -> f64 {
        self.service_ms * self.max_utilization
            / (2.0 * f64::from(self.servers.max(1)) * (1.0 - self.max_utilization))
    }

    /// Fraction of offered queries shed at this rate: zero up to the
    /// admission cap, then `1 − max_utilization/ρ` (the overflow fraction),
    /// rising toward 1 as the offered rate grows without bound.
    pub fn shed_probability(&self, offered_qps: f64) -> f64 {
        let rho = self.utilization(offered_qps);
        if rho <= self.max_utilization {
            return 0.0;
        }
        1.0 - self.max_utilization / rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_servers_over_service_time() {
        let q = QueueModel::new(4, 2.0);
        assert_eq!(q.capacity_qps(), 2000.0);
        let one = QueueModel::new(1, 2.5);
        assert_eq!(one.capacity_qps(), 400.0);
    }

    #[test]
    fn zero_load_means_zero_delay_and_no_shedding() {
        let q = QueueModel::new(8, 1.0);
        assert_eq!(q.queue_delay_ms(0.0), 0.0);
        assert_eq!(q.shed_probability(0.0), 0.0);
        assert_eq!(q.queue_delay_ms(-5.0), 0.0, "negative rates clamp to 0");
    }

    #[test]
    fn delay_saturates_at_admission_cap() {
        let q = QueueModel::new(1, 2.5);
        let at_cap = q.queue_delay_ms(q.capacity_qps() * q.max_utilization);
        assert!((at_cap - q.max_queue_delay_ms()).abs() < 1e-9);
        assert_eq!(q.queue_delay_ms(q.capacity_qps() * 100.0), at_cap);
    }

    #[test]
    fn shedding_starts_past_the_cap_and_grows() {
        let q = QueueModel::new(2, 1.0);
        let cap = q.capacity_qps();
        assert_eq!(q.shed_probability(cap * 0.94), 0.0);
        let p2 = q.shed_probability(cap * 2.0);
        let p8 = q.shed_probability(cap * 8.0);
        assert!(p2 > 0.0 && p8 > p2 && p8 < 1.0);
        assert!((q.shed_probability(cap * 1e9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_service_time_is_infinite_capacity() {
        let q = QueueModel::new(1, 0.0);
        assert_eq!(q.utilization(1e12), 0.0);
        assert_eq!(q.queue_delay_ms(1e12), 0.0);
        assert_eq!(q.shed_probability(1e12), 0.0);
    }
}
