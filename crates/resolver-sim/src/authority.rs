//! The authoritative side of the DNS: a miniature root → TLD → authoritative
//! hierarchy the simulated recursive resolvers iterate against on cache
//! misses.
//!
//! Zones are held in-memory with real [`dns_wire`] record data; name-server
//! placement matters because a cache miss costs the recursive resolver real
//! (simulated) round trips to each level of the hierarchy.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use dns_wire::{Name, RData, RecordType};
use netsim::geo::{cities, City};

/// What an authoritative server says about a query.
#[derive(Debug, Clone, PartialEq)]
pub enum AuthorityAnswer {
    /// The server is authoritative and has records.
    Answer {
        /// The records.
        records: Vec<RData>,
        /// Their TTL in seconds.
        ttl_secs: u64,
    },
    /// The server is authoritative and the name does not exist.
    NxDomain,
    /// The server delegates to a child zone.
    Delegation {
        /// The delegated zone apex.
        zone: Name,
        /// Where the child zone's name server lives (for latency).
        ns_location: City,
    },
}

/// One zone: its apex, its records, and where its name servers sit.
#[derive(Debug, Clone)]
pub struct Zone {
    /// Zone apex name.
    pub apex: Name,
    /// Name-server location (one representative site).
    pub location: City,
    /// Records by (relative or absolute) owner name and type.
    records: BTreeMap<(Name, RecordType), (Vec<RData>, u64)>,
}

impl Zone {
    /// Creates an empty zone.
    pub fn new(apex: Name, location: City) -> Self {
        Zone {
            apex,
            location,
            records: BTreeMap::new(),
        }
    }

    /// Adds a record set.
    pub fn add(&mut self, owner: Name, rtype: RecordType, records: Vec<RData>, ttl_secs: u64) {
        self.records.insert((owner, rtype), (records, ttl_secs));
    }

    /// Adds a wildcard record set (`*.apex`, RFC 1034 §4.3.3): synthesised
    /// for any name under the apex that has no explicit records.
    pub fn add_wildcard(&mut self, rtype: RecordType, records: Vec<RData>, ttl_secs: u64) {
        // detlint:allow(unwrap, a single-asterisk label always fits the 63-octet limit)
        let star = self.apex.child("*").expect("wildcard label fits");
        self.records.insert((star, rtype), (records, ttl_secs));
    }

    fn lookup(&self, qname: &Name, qtype: RecordType) -> Option<(Vec<RData>, u64)> {
        if let Some(hit) = self.records.get(&(qname.clone(), qtype)) {
            return Some(hit.clone());
        }
        // Wildcard synthesis: only when no explicit records exist for the
        // name and the name sits strictly below the apex.
        if !self.contains_name(qname) && qname != &self.apex {
            let star = self.apex.child("*").ok()?;
            return self.records.get(&(star, qtype)).cloned();
        }
        None
    }

    fn contains_name(&self, qname: &Name) -> bool {
        self.records.keys().any(|(n, _)| n == qname)
    }

    fn has_wildcard(&self) -> bool {
        self.records
            .keys()
            .any(|(n, _)| n.labels().next() == Some(b"*".as_slice()))
    }
}

/// The full hierarchy: root, TLDs, and leaf zones.
#[derive(Debug)]
pub struct AuthorityTree {
    /// Leaf zones by apex.
    zones: Vec<Zone>,
    /// TLD name → representative TLD-server location.
    tlds: BTreeMap<Name, City>,
    /// Root server location (anycast in reality; one site suffices since
    /// recursive resolvers prime the root hint rarely).
    pub root_location: City,
}

impl AuthorityTree {
    /// Builds an empty tree with root servers in Ashburn.
    pub fn new() -> Self {
        AuthorityTree {
            zones: Vec::new(),
            tlds: BTreeMap::new(),
            root_location: cities::ASHBURN_VA,
        }
    }

    /// Registers a TLD with its server location.
    pub fn add_tld(&mut self, tld: &str, location: City) {
        self.tlds
            // detlint:allow(unwrap, TLDs are registered from fixed literals in standard(); a bad one is a programming error)
            .insert(Name::parse(tld).expect("valid tld"), location);
    }

    /// Registers a leaf zone.
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.push(zone);
    }

    /// Finds the most specific zone containing `qname`.
    pub fn zone_for(&self, qname: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| qname.is_subdomain_of(&z.apex))
            .max_by_key(|z| z.apex.label_count())
    }

    /// What the root servers answer: a delegation to the TLD, or NXDOMAIN
    /// for unknown TLDs.
    pub fn root_referral(&self, qname: &Name) -> AuthorityAnswer {
        let labels: Vec<&[u8]> = qname.labels().collect();
        let Some(tld_label) = labels.last() else {
            return AuthorityAnswer::NxDomain;
        };
        // detlint:allow(unwrap, a single label taken from an already-parsed name is always valid)
        let tld = Name::from_labels([*tld_label]).expect("tld label");
        match self.tlds.get(&tld) {
            Some(loc) => AuthorityAnswer::Delegation {
                zone: tld,
                ns_location: *loc,
            },
            None => AuthorityAnswer::NxDomain,
        }
    }

    /// What a TLD server answers: a delegation to the leaf zone, or NXDOMAIN.
    pub fn tld_referral(&self, qname: &Name) -> AuthorityAnswer {
        match self.zone_for(qname) {
            Some(z) => AuthorityAnswer::Delegation {
                zone: z.apex.clone(),
                ns_location: z.location,
            },
            None => AuthorityAnswer::NxDomain,
        }
    }

    /// What the leaf authoritative server answers.
    pub fn authoritative_answer(&self, qname: &Name, qtype: RecordType) -> AuthorityAnswer {
        match self.zone_for(qname) {
            Some(z) => match z.lookup(qname, qtype) {
                Some((records, ttl_secs)) => AuthorityAnswer::Answer { records, ttl_secs },
                // NODATA vs NXDOMAIN distinction: if any type exists for the
                // name (or a wildcard covers it), answer empty.
                None if z.contains_name(qname) || (z.has_wildcard() && qname != &z.apex) => {
                    AuthorityAnswer::Answer {
                        records: Vec::new(),
                        ttl_secs: 300,
                    }
                }
                None => AuthorityAnswer::NxDomain,
            },
            None => AuthorityAnswer::NxDomain,
        }
    }

    /// Parses a compile-time-constant name used by the built-in zone data.
    fn static_name(s: &str) -> Name {
        // detlint:allow(unwrap, zone literals are fixed at compile time and covered by tests)
        Name::parse(s).expect("static zone name parses")
    }

    /// Builds the hierarchy the measurement campaign queries: `.com`, `.org`
    /// and the three measured domains — google.com, amazon.com,
    /// wikipedia.com (the paper §3.2) — plus wikipedia.org for realism.
    pub fn standard() -> Self {
        let mut t = AuthorityTree::new();
        t.add_tld("com", cities::ASHBURN_VA);
        t.add_tld("org", cities::ASHBURN_VA);
        t.add_tld("net", cities::ASHBURN_VA);

        let mut google = Zone::new(Self::static_name("google.com"), cities::ASHBURN_VA);
        google.add(
            Self::static_name("google.com"),
            RecordType::A,
            vec![RData::A(Ipv4Addr::new(142, 250, 190, 78))],
            300,
        );
        google.add(
            Self::static_name("google.com"),
            RecordType::AAAA,
            vec![RData::Aaaa(
                // detlint:allow(unwrap, fixed IPv6 literal parses)
                "2607:f8b0:4009:819::200e".parse().expect("static ip"),
            )],
            300,
        );
        t.add_zone(google);

        let mut amazon = Zone::new(Self::static_name("amazon.com"), cities::ASHBURN_VA);
        amazon.add(
            Self::static_name("amazon.com"),
            RecordType::A,
            vec![
                RData::A(Ipv4Addr::new(205, 251, 242, 103)),
                RData::A(Ipv4Addr::new(52, 94, 236, 248)),
                RData::A(Ipv4Addr::new(54, 239, 28, 85)),
            ],
            60,
        );
        t.add_zone(amazon);

        let mut wikipedia = Zone::new(Self::static_name("wikipedia.com"), cities::ASHBURN_VA);
        wikipedia.add(
            Self::static_name("wikipedia.com"),
            RecordType::A,
            vec![RData::A(Ipv4Addr::new(208, 80, 154, 232))],
            600,
        );
        t.add_zone(wikipedia);

        let mut wikipedia_org = Zone::new(Self::static_name("wikipedia.org"), cities::AMSTERDAM);
        wikipedia_org.add(
            Self::static_name("wikipedia.org"),
            RecordType::A,
            vec![RData::A(Ipv4Addr::new(91, 198, 174, 192))],
            600,
        );
        t.add_zone(wikipedia_org);

        // example.com with a wildcard: synthetic workloads (Zipf domain
        // universes like site-0042.example.com) resolve through it.
        let mut example = Zone::new(Self::static_name("example.com"), cities::LOS_ANGELES);
        example.add(
            Self::static_name("example.com"),
            RecordType::A,
            vec![RData::A(Ipv4Addr::new(93, 184, 216, 34))],
            3600,
        );
        example.add_wildcard(
            RecordType::A,
            vec![RData::A(Ipv4Addr::new(93, 184, 216, 34))],
            300,
        );
        t.add_zone(example);

        // Third-party web zones for the page-load experiments (CDN, ads,
        // telemetry, embeds) — all wildcarded.
        t.add_tld("io", cities::ASHBURN_VA);
        for (apex, city, a) in [
            ("example-static.net", cities::ASHBURN_VA, [151, 101, 1, 6]),
            ("example-exchange.com", cities::NEW_YORK, [34, 120, 8, 9]),
            ("example-metrics.io", cities::FREMONT_CA, [104, 16, 2, 3]),
            ("example-social.org", cities::AMSTERDAM, [157, 240, 1, 35]),
        ] {
            let mut z = Zone::new(Self::static_name(apex), city);
            let ip = Ipv4Addr::new(a[0], a[1], a[2], a[3]);
            z.add(
                Self::static_name(apex),
                RecordType::A,
                vec![RData::A(ip)],
                300,
            );
            z.add_wildcard(RecordType::A, vec![RData::A(ip)], 300);
            t.add_zone(z);
        }
        t
    }
}

impl Default for AuthorityTree {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn root_delegates_known_tlds() {
        let t = AuthorityTree::standard();
        match t.root_referral(&n("google.com")) {
            AuthorityAnswer::Delegation { zone, .. } => assert_eq!(zone, n("com")),
            other => panic!("expected delegation, got {other:?}"),
        }
        assert_eq!(
            t.root_referral(&n("foo.invalid")),
            AuthorityAnswer::NxDomain
        );
    }

    #[test]
    fn tld_delegates_to_leaf_zone() {
        let t = AuthorityTree::standard();
        match t.tld_referral(&n("www.google.com")) {
            AuthorityAnswer::Delegation { zone, .. } => assert_eq!(zone, n("google.com")),
            other => panic!("expected delegation, got {other:?}"),
        }
        assert_eq!(
            t.tld_referral(&n("no-such-domain.com")),
            AuthorityAnswer::NxDomain
        );
    }

    #[test]
    fn authoritative_answers_for_measured_domains() {
        let t = AuthorityTree::standard();
        for d in ["google.com", "amazon.com", "wikipedia.com"] {
            match t.authoritative_answer(&n(d), RecordType::A) {
                AuthorityAnswer::Answer { records, ttl_secs } => {
                    assert!(!records.is_empty(), "{d} should have A records");
                    assert!(ttl_secs > 0);
                }
                other => panic!("{d}: expected answer, got {other:?}"),
            }
        }
    }

    #[test]
    fn nodata_for_existing_name_wrong_type() {
        let t = AuthorityTree::standard();
        // amazon.com exists but we only loaded A records.
        match t.authoritative_answer(&n("amazon.com"), RecordType::TXT) {
            AuthorityAnswer::Answer { records, .. } => assert!(records.is_empty()),
            other => panic!("expected empty answer (NODATA), got {other:?}"),
        }
    }

    #[test]
    fn nxdomain_for_unknown_leaf() {
        let t = AuthorityTree::standard();
        assert_eq!(
            t.authoritative_answer(&n("nope.google.com"), RecordType::A),
            AuthorityAnswer::NxDomain
        );
    }

    #[test]
    fn most_specific_zone_wins() {
        let mut t = AuthorityTree::standard();
        let mut sub = Zone::new(n("maps.google.com"), cities::FRANKFURT);
        sub.add(
            n("maps.google.com"),
            RecordType::A,
            vec![RData::A(Ipv4Addr::new(1, 2, 3, 4))],
            60,
        );
        t.add_zone(sub);
        let z = t.zone_for(&n("maps.google.com")).unwrap();
        assert_eq!(z.apex, n("maps.google.com"));
        // Parent still serves the apex.
        let z = t.zone_for(&n("google.com")).unwrap();
        assert_eq!(z.apex, n("google.com"));
    }

    #[test]
    fn wildcard_synthesises_answers_below_the_apex() {
        let t = AuthorityTree::standard();
        for sub in ["site-0001.example.com", "deep.nested.example.com"] {
            match t.authoritative_answer(&n(sub), RecordType::A) {
                AuthorityAnswer::Answer { records, .. } => {
                    assert!(!records.is_empty(), "{sub} should match the wildcard");
                }
                other => panic!("{sub}: {other:?}"),
            }
        }
        // Explicit records still win at the apex, and the wildcard never
        // covers the apex itself for other types (NODATA).
        match t.authoritative_answer(&n("example.com"), RecordType::TXT) {
            AuthorityAnswer::Answer { records, .. } => assert!(records.is_empty()),
            other => panic!("apex TXT: {other:?}"),
        }
        // Wildcard NODATA for types it doesn't define.
        match t.authoritative_answer(&n("x.example.com"), RecordType::MX) {
            AuthorityAnswer::Answer { records, .. } => assert!(records.is_empty()),
            other => panic!("wildcard MX: {other:?}"),
        }
    }

    #[test]
    fn explicit_name_shadows_wildcard() {
        let mut t = AuthorityTree::standard();
        let mut z = Zone::new(n("w.test"), cities::FRANKFURT);
        t.add_tld("test", cities::ASHBURN_VA);
        z.add_wildcard(RecordType::A, vec![RData::A(Ipv4Addr::new(1, 1, 1, 1))], 60);
        z.add(n("special.w.test"), RecordType::TXT, vec![], 60);
        t.add_zone(z);
        // special.w.test exists (TXT) so the wildcard must NOT synthesise A.
        match t.authoritative_answer(&n("special.w.test"), RecordType::A) {
            AuthorityAnswer::Answer { records, .. } => {
                assert!(records.is_empty(), "explicit name shadows wildcard");
            }
            other => panic!("{other:?}"),
        }
        // Unrelated names still match the wildcard.
        match t.authoritative_answer(&n("other.w.test"), RecordType::A) {
            AuthorityAnswer::Answer { records, .. } => assert!(!records.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aaaa_records_present_for_google() {
        let t = AuthorityTree::standard();
        match t.authoritative_answer(&n("google.com"), RecordType::AAAA) {
            AuthorityAnswer::Answer { records, .. } => {
                assert!(matches!(records[0], RData::Aaaa(_)));
            }
            other => panic!("{other:?}"),
        }
    }
}
