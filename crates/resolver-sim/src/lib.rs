//! # resolver-sim
//!
//! The server side of the measurement study: simulated recursive DNS
//! resolvers with real TTL caches, a root → TLD → authoritative hierarchy
//! they iterate against on cache misses, per-site frontends with processing
//! and load models, and per-probe health (the availability axis of the
//! paper).
//!
//! A [`ResolverInstance`] bundles everything a probe touches:
//!
//! * a [`netsim::Deployment`] — where the sites are and how clients route
//!   to them (unicast vs anycast);
//! * one [`ResolverServer`] per site — processing-time profile, diurnal
//!   load, cache warmth, and a [`RecursiveResolver`] engine with a real
//!   [`RecordCache`];
//! * an ICMP policy — some resolvers silently drop pings;
//! * a [`HealthModel`] — per-probe probabilities of refused connections,
//!   blackholes, TLS breakage, bad certificates and HTTP errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod cache;
pub mod deployment;
pub mod queue;
pub mod recursive;
pub mod server;
pub mod zonefile;

pub use authority::{AuthorityAnswer, AuthorityTree, Zone};
pub use cache::{CacheStats, RecordCache};
pub use deployment::{ResolverInstance, SiteLoad};
pub use queue::QueueModel;
pub use recursive::{RecursiveResolver, Resolution};
pub use server::{HealthModel, ProbeHealth, ResolverServer, ServerProfile};
pub use zonefile::{parse_zone, ZoneParseError};
