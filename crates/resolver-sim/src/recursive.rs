//! The recursive-resolution engine running at each resolver site: answer
//! from cache when possible, otherwise iterate root → TLD → authoritative
//! and pay the network round trips each referral costs.

use dns_wire::{Name, RData, Rcode, RecordType};
use netsim::geo::City;
use netsim::{AccessProfile, Path, SimDuration, SimRng, SimTime};

use crate::authority::{AuthorityAnswer, AuthorityTree};
use crate::cache::RecordCache;

/// The outcome of resolving one query at the recursive resolver.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolution {
    /// The response code.
    pub rcode: Rcode,
    /// Answer records (empty for NXDOMAIN/NODATA).
    pub records: Vec<RData>,
    /// Time spent querying upstream authorities (zero on cache hit).
    pub upstream_time: SimDuration,
    /// Whether the answer came from cache.
    pub cache_hit: bool,
}

/// A recursive resolver engine located at one site.
#[derive(Debug)]
pub struct RecursiveResolver {
    /// Where this resolver site is (drives upstream latencies).
    pub location: City,
    cache: RecordCache,
    /// RFC 2308 negative cache: names known not to exist, with expiry.
    negative: std::collections::HashMap<(Name, RecordType), netsim::SimTime>,
    /// Number of upstream exchanges performed (for tests/metrics).
    pub upstream_queries: u64,
}

/// Negative-caching TTL (RFC 2308 caps it at the zone SOA minimum; our
/// standard zones use 300 s).
const NEGATIVE_TTL: SimDuration = SimDuration::from_secs(300);

/// Bytes of a typical upstream UDP query / response.
const UPSTREAM_QUERY_BYTES: usize = 64;
const UPSTREAM_RESPONSE_BYTES: usize = 240;

impl RecursiveResolver {
    /// Creates a resolver engine at `location` with the given cache size.
    pub fn new(location: City, cache_capacity: usize) -> Self {
        RecursiveResolver {
            location,
            cache: RecordCache::new(cache_capacity),
            negative: std::collections::HashMap::new(),
            upstream_queries: 0,
        }
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// One round trip from this site to an authority at `target`.
    fn upstream_rtt(&mut self, target: City, rng: &mut SimRng) -> SimDuration {
        self.upstream_queries += 1;
        let path = Path::between(
            self.location.point,
            AccessProfile::datacenter(),
            target.point,
            AccessProfile::datacenter(),
        );
        // Authorities are redundant; a lost packet costs one retry at a
        // conservative 400 ms timeout, after which a replica answers.
        match path.sample_rtt(UPSTREAM_QUERY_BYTES, UPSTREAM_RESPONSE_BYTES, rng) {
            Some(rtt) => rtt,
            None => {
                let retry = path
                    .sample_rtt(UPSTREAM_QUERY_BYTES, UPSTREAM_RESPONSE_BYTES, rng)
                    .unwrap_or(SimDuration::from_millis(60));
                SimDuration::from_millis(400) + retry
            }
        }
    }

    /// Resolves `qname`/`qtype` at simulated time `now`.
    pub fn resolve(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        authorities: &AuthorityTree,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Resolution {
        if let Some(records) = self.cache.lookup(qname, qtype, now) {
            return Resolution {
                rcode: Rcode::NoError,
                records,
                upstream_time: SimDuration::ZERO,
                cache_hit: true,
            };
        }
        // RFC 2308 negative cache: a recent NXDOMAIN answers instantly.
        if let Some(&expiry) = self.negative.get(&(qname.clone(), qtype)) {
            if expiry > now {
                return Resolution {
                    rcode: Rcode::NxDomain,
                    records: Vec::new(),
                    upstream_time: SimDuration::ZERO,
                    cache_hit: true,
                };
            }
            self.negative.remove(&(qname.clone(), qtype));
        }

        let mut upstream = SimDuration::ZERO;

        // Query the root (resolvers cache TLD referrals for days; charge a
        // root round trip only when the TLD referral is not cached).
        let tld_key = {
            let labels: Vec<&[u8]> = qname.labels().collect();
            match labels.last() {
                // detlint:allow(unwrap, a single label taken from an already-parsed name is always valid)
                Some(l) => Name::from_labels([*l]).expect("tld label"),
                None => Name::root(),
            }
        };
        let tld_loc = if self.cache.lookup(&tld_key, RecordType::NS, now).is_none() {
            upstream += self.upstream_rtt(authorities.root_location, rng);
            match authorities.root_referral(qname) {
                AuthorityAnswer::Delegation { ns_location, .. } => {
                    self.cache.insert(
                        tld_key.clone(),
                        RecordType::NS,
                        vec![],
                        SimDuration::from_hours(48),
                        now,
                    );
                    Some(ns_location)
                }
                _ => None,
            }
        } else {
            // Referral cached: recover the location from the tree directly.
            match authorities.root_referral(qname) {
                AuthorityAnswer::Delegation { ns_location, .. } => Some(ns_location),
                _ => None,
            }
        };

        let Some(tld_loc) = tld_loc else {
            self.negative
                .insert((qname.clone(), qtype), now + NEGATIVE_TTL);
            return Resolution {
                rcode: Rcode::NxDomain,
                records: Vec::new(),
                upstream_time: upstream,
                cache_hit: false,
            };
        };

        // Query the TLD for the leaf delegation.
        upstream += self.upstream_rtt(tld_loc, rng);
        let leaf = match authorities.tld_referral(qname) {
            AuthorityAnswer::Delegation { ns_location, .. } => ns_location,
            _ => {
                self.negative
                    .insert((qname.clone(), qtype), now + NEGATIVE_TTL);
                return Resolution {
                    rcode: Rcode::NxDomain,
                    records: Vec::new(),
                    upstream_time: upstream,
                    cache_hit: false,
                };
            }
        };

        // Query the authoritative server.
        upstream += self.upstream_rtt(leaf, rng);
        match authorities.authoritative_answer(qname, qtype) {
            AuthorityAnswer::Answer { records, ttl_secs } => {
                self.cache.insert(
                    qname.clone(),
                    qtype,
                    records.clone(),
                    SimDuration::from_secs(ttl_secs),
                    now,
                );
                Resolution {
                    rcode: Rcode::NoError,
                    records,
                    upstream_time: upstream,
                    cache_hit: false,
                }
            }
            _ => {
                self.negative
                    .insert((qname.clone(), qtype), now + NEGATIVE_TTL);
                Resolution {
                    rcode: Rcode::NxDomain,
                    records: Vec::new(),
                    upstream_time: upstream,
                    cache_hit: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn cold_then_warm_resolution() {
        let auth = AuthorityTree::standard();
        let mut r = RecursiveResolver::new(cities::FRANKFURT, 1024);
        let mut rng = SimRng::from_seed(1);
        let cold = r.resolve(&n("google.com"), RecordType::A, &auth, at(0), &mut rng);
        assert_eq!(cold.rcode, Rcode::NoError);
        assert!(!cold.cache_hit);
        assert!(!cold.records.is_empty());
        assert!(cold.upstream_time > SimDuration::ZERO);
        // Root + TLD + auth = 3 upstream exchanges on a fully cold cache.
        assert_eq!(r.upstream_queries, 3);

        let warm = r.resolve(&n("google.com"), RecordType::A, &auth, at(1), &mut rng);
        assert!(warm.cache_hit);
        assert_eq!(warm.upstream_time, SimDuration::ZERO);
        assert_eq!(warm.records, cold.records);
        assert_eq!(r.upstream_queries, 3, "warm hit adds no upstream queries");
    }

    #[test]
    fn tld_referral_is_cached_across_domains() {
        let auth = AuthorityTree::standard();
        let mut r = RecursiveResolver::new(cities::FRANKFURT, 1024);
        let mut rng = SimRng::from_seed(2);
        r.resolve(&n("google.com"), RecordType::A, &auth, at(0), &mut rng);
        let q_after_first = r.upstream_queries;
        assert_eq!(q_after_first, 3);
        // Second .com domain: root referral cached, so 2 new exchanges.
        r.resolve(&n("amazon.com"), RecordType::A, &auth, at(1), &mut rng);
        assert_eq!(r.upstream_queries, 5);
    }

    #[test]
    fn expired_entry_triggers_refetch() {
        let auth = AuthorityTree::standard();
        let mut r = RecursiveResolver::new(cities::FRANKFURT, 1024);
        let mut rng = SimRng::from_seed(3);
        // amazon.com has a 60 s TTL.
        r.resolve(&n("amazon.com"), RecordType::A, &auth, at(0), &mut rng);
        let res = r.resolve(&n("amazon.com"), RecordType::A, &auth, at(61), &mut rng);
        assert!(!res.cache_hit);
        assert!(res.upstream_time > SimDuration::ZERO);
    }

    #[test]
    fn nxdomain_for_unknown_tld_and_leaf() {
        let auth = AuthorityTree::standard();
        let mut r = RecursiveResolver::new(cities::SEOUL, 64);
        let mut rng = SimRng::from_seed(4);
        let res = r.resolve(&n("host.invalid"), RecordType::A, &auth, at(0), &mut rng);
        assert_eq!(res.rcode, Rcode::NxDomain);
        let res = r.resolve(
            &n("unknown-zone.com"),
            RecordType::A,
            &auth,
            at(1),
            &mut rng,
        );
        assert_eq!(res.rcode, Rcode::NxDomain);
    }

    #[test]
    fn nxdomain_is_negatively_cached() {
        let auth = AuthorityTree::standard();
        let mut r = RecursiveResolver::new(cities::FRANKFURT, 64);
        let mut rng = SimRng::from_seed(9);
        // First NXDOMAIN pays upstream round trips.
        let first = r.resolve(&n("nope.google.com"), RecordType::A, &auth, at(0), &mut rng);
        assert_eq!(first.rcode, Rcode::NxDomain);
        assert!(!first.cache_hit);
        assert!(first.upstream_time > SimDuration::ZERO);
        let queries_after_first = r.upstream_queries;
        // Within the negative TTL: instant, no new upstream queries.
        let second = r.resolve(
            &n("nope.google.com"),
            RecordType::A,
            &auth,
            at(10),
            &mut rng,
        );
        assert_eq!(second.rcode, Rcode::NxDomain);
        assert!(second.cache_hit);
        assert_eq!(second.upstream_time, SimDuration::ZERO);
        assert_eq!(r.upstream_queries, queries_after_first);
        // After the negative TTL (300 s): re-resolved upstream.
        let third = r.resolve(
            &n("nope.google.com"),
            RecordType::A,
            &auth,
            at(301),
            &mut rng,
        );
        assert!(!third.cache_hit);
        assert!(r.upstream_queries > queries_after_first);
    }

    #[test]
    fn negative_cache_is_per_type() {
        let auth = AuthorityTree::standard();
        let mut r = RecursiveResolver::new(cities::FRANKFURT, 64);
        let mut rng = SimRng::from_seed(10);
        r.resolve(&n("nope.google.com"), RecordType::A, &auth, at(0), &mut rng);
        // A different type for the same name is not negatively cached.
        let res = r.resolve(
            &n("nope.google.com"),
            RecordType::AAAA,
            &auth,
            at(1),
            &mut rng,
        );
        assert!(!res.cache_hit);
    }

    #[test]
    fn distant_resolver_pays_more_upstream_time() {
        let auth = AuthorityTree::standard();
        let mut near = RecursiveResolver::new(cities::ASHBURN_VA, 64);
        let mut far = RecursiveResolver::new(cities::SEOUL, 64);
        let mut rng = SimRng::from_seed(5);
        // Authorities for .com sit in Ashburn, so a Seoul resolver pays
        // trans-Pacific round trips on a cold miss.
        let near_t = near
            .resolve(&n("google.com"), RecordType::A, &auth, at(0), &mut rng)
            .upstream_time;
        let far_t = far
            .resolve(&n("google.com"), RecordType::A, &auth, at(0), &mut rng)
            .upstream_time;
        assert!(
            far_t.as_millis_f64() > near_t.as_millis_f64() * 5.0,
            "near {near_t} vs far {far_t}"
        );
    }
}
