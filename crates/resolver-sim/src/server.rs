//! The resolver frontend: per-query processing time (with diurnal load and
//! overload tails), background-traffic cache warmth, and per-probe health.

use dns_wire::{Name, RecordType};
use netsim::geo::City;
use netsim::{SimDuration, SimRng, SimTime};

use crate::authority::AuthorityTree;
use crate::queue::QueueModel;
use crate::recursive::{RecursiveResolver, Resolution};

/// Tunable performance profile of one resolver frontend.
#[derive(Debug, Clone, Copy)]
pub struct ServerProfile {
    /// Median frontend processing time for a cache-hit query, ms.
    pub proc_median_ms: f64,
    /// Log-space sigma of processing time.
    pub proc_sigma: f64,
    /// Diurnal load amplitude: processing is multiplied by
    /// `1 + amplitude·sin(...)` across the simulated day.
    pub load_amplitude: f64,
    /// Probability a query lands during a transient overload.
    pub overload_prob: f64,
    /// Mean extra delay during overload, ms (exponential).
    pub overload_mean_ms: f64,
    /// Probability the queried (popular) name is warm in cache thanks to
    /// background traffic from other users.
    pub cache_warmth: f64,
    /// Parallel workers per site — the `c` of the per-site
    /// [`QueueModel`]. Sets the site's saturation throughput together
    /// with [`service_ms`](Self::service_ms).
    pub servers_per_site: u32,
    /// Deterministic per-query service time of the queueing model, ms
    /// (independent of the stochastic `proc_*` response-time draw: it
    /// sets *capacity*, not the per-query latency sample).
    pub service_ms: f64,
}

impl ServerProfile {
    /// A large production service (mainstream resolvers): sub-millisecond
    /// processing, high cache warmth, tiny overload tail.
    pub fn production() -> Self {
        ServerProfile {
            proc_median_ms: 0.4,
            proc_sigma: 0.25,
            load_amplitude: 0.10,
            overload_prob: 0.002,
            overload_mean_ms: 5.0,
            cache_warmth: 0.995,
            servers_per_site: 4000,
            service_ms: 0.4,
        }
    }

    /// A competently run mid-size service.
    pub fn midsize() -> Self {
        ServerProfile {
            proc_median_ms: 1.0,
            proc_sigma: 0.40,
            load_amplitude: 0.20,
            overload_prob: 0.01,
            overload_mean_ms: 15.0,
            cache_warmth: 0.97,
            servers_per_site: 64,
            service_ms: 1.0,
        }
    }

    /// A hobbyist box: milliseconds of processing, colder cache, visible
    /// overload tail.
    pub fn hobbyist() -> Self {
        ServerProfile {
            proc_median_ms: 2.5,
            proc_sigma: 0.60,
            load_amplitude: 0.35,
            overload_prob: 0.04,
            overload_mean_ms: 40.0,
            cache_warmth: 0.90,
            servers_per_site: 1,
            service_ms: 2.5,
        }
    }

    /// An Oblivious-DoH target behind a relay: every query pays an extra
    /// proxy hop and decryption, which the paper's ODoH rows
    /// (`odoh-target-*.alekberg.net`) show as uniformly higher times.
    pub fn odoh_target() -> Self {
        ServerProfile {
            proc_median_ms: 6.0,
            proc_sigma: 0.45,
            load_amplitude: 0.20,
            overload_prob: 0.02,
            overload_mean_ms: 25.0,
            cache_warmth: 0.95,
            servers_per_site: 8,
            service_ms: 6.0,
        }
    }

    /// The per-site queueing model this profile implies.
    pub fn queue(&self) -> QueueModel {
        QueueModel::new(self.servers_per_site, self.service_ms)
    }
}

/// The health of a resolver for one probe: what the client will observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeHealth {
    /// Everything works.
    Healthy,
    /// TCP connections are refused (service down, port closed).
    Refusing,
    /// Packets to the service are blackholed (outage, route loss).
    Blackholed,
    /// TLS handshakes never complete (middlebox, broken config).
    TlsBroken,
    /// TLS presents an invalid certificate (expired cert — common among
    /// hobbyist deployments).
    BadCertificate,
    /// The HTTP layer answers with a 5xx.
    HttpError,
}

/// Per-probe failure probabilities for a resolver.
#[derive(Debug, Clone, Copy)]
pub struct HealthModel {
    /// P(connection refused).
    pub p_refuse: f64,
    /// P(blackholed).
    pub p_blackhole: f64,
    /// P(TLS handshake failure).
    pub p_tls: f64,
    /// P(bad certificate).
    pub p_bad_cert: f64,
    /// P(HTTP 5xx).
    pub p_http: f64,
}

impl HealthModel {
    /// A reliable service (≈99.9 % probe success).
    pub fn reliable() -> Self {
        HealthModel {
            p_refuse: 0.0003,
            p_blackhole: 0.0003,
            p_tls: 0.0002,
            p_bad_cert: 0.0,
            p_http: 0.0002,
        }
    }

    /// A typical non-mainstream service (≈99 % probe success).
    pub fn typical() -> Self {
        HealthModel {
            p_refuse: 0.004,
            p_blackhole: 0.003,
            p_tls: 0.001,
            p_bad_cert: 0.0005,
            p_http: 0.0015,
        }
    }

    /// A flaky service (≈90 % probe success).
    pub fn flaky() -> Self {
        HealthModel {
            p_refuse: 0.04,
            p_blackhole: 0.03,
            p_tls: 0.015,
            p_bad_cert: 0.005,
            p_http: 0.01,
        }
    }

    /// A mostly-dead service (the handful of resolvers the paper could
    /// rarely reach; they dominate the error count).
    pub fn mostly_down() -> Self {
        HealthModel {
            p_refuse: 0.30,
            p_blackhole: 0.55,
            p_tls: 0.05,
            p_bad_cert: 0.0,
            p_http: 0.02,
        }
    }

    /// Total per-probe failure probability.
    pub fn failure_prob(&self) -> f64 {
        self.p_refuse + self.p_blackhole + self.p_tls + self.p_bad_cert + self.p_http
    }

    /// Samples the health observed by one probe.
    pub fn sample(&self, rng: &mut SimRng) -> ProbeHealth {
        let u = rng.uniform();
        let mut acc = self.p_refuse;
        if u < acc {
            return ProbeHealth::Refusing;
        }
        acc += self.p_blackhole;
        if u < acc {
            return ProbeHealth::Blackholed;
        }
        acc += self.p_tls;
        if u < acc {
            return ProbeHealth::TlsBroken;
        }
        acc += self.p_bad_cert;
        if u < acc {
            return ProbeHealth::BadCertificate;
        }
        acc += self.p_http;
        if u < acc {
            return ProbeHealth::HttpError;
        }
        ProbeHealth::Healthy
    }
}

/// One resolver frontend at one site: owns a recursive engine and applies
/// the processing model.
#[derive(Debug)]
pub struct ResolverServer {
    /// Performance profile.
    pub profile: ServerProfile,
    engine: RecursiveResolver,
}

impl ResolverServer {
    /// Creates a frontend at `location`.
    pub fn new(location: City, profile: ServerProfile) -> Self {
        ResolverServer {
            profile,
            engine: RecursiveResolver::new(location, 4096),
        }
    }

    /// The site this server runs at.
    pub fn location(&self) -> City {
        self.engine.location
    }

    /// Diurnal load multiplier at `now` (peaks in the simulated evening).
    fn load_factor(&self, now: SimTime) -> f64 {
        let day_secs = 86_400.0;
        let phase = (now.as_secs() as f64 % day_secs) / day_secs * std::f64::consts::TAU;
        1.0 + self.profile.load_amplitude * (phase - 1.0).sin().max(-0.8)
    }

    /// Handles one query, returning the total server-side time (processing
    /// plus any upstream recursion) and the resolution.
    pub fn handle_query(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        authorities: &AuthorityTree,
        now: SimTime,
        rng: &mut SimRng,
    ) -> (SimDuration, Resolution) {
        self.handle_query_loaded(qname, qtype, authorities, now, 1.0, 0.0, rng)
    }

    /// [`handle_query`](Self::handle_query) under an injected brownout
    /// and/or population load: frontend processing is scaled by `slowdown`
    /// (`1.0` = none), then the deterministic M/D/c queueing delay of the
    /// site's [`QueueModel`] at `offered_qps` (`0.0` = idle) is added. The
    /// RNG draw sequence is identical to the unloaded path and the added
    /// delay is exactly `0.0` at zero offered load, so a fault plan or
    /// load model perturbs only the probes it covers — byte-transparency
    /// at rest is a tested invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_query_loaded(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        authorities: &AuthorityTree,
        now: SimTime,
        slowdown: f64,
        offered_qps: f64,
        rng: &mut SimRng,
    ) -> (SimDuration, Resolution) {
        // Background traffic from the resolver's other users keeps popular
        // names warm with probability `cache_warmth`: pre-resolve silently.
        if rng.chance(self.profile.cache_warmth) {
            let mut warm_rng = rng.clone();
            let _ = self
                .engine
                .resolve(qname, qtype, authorities, now, &mut warm_rng);
        }

        let resolution = self.engine.resolve(qname, qtype, authorities, now, rng);

        let mut proc_ms = rng
            .lognormal_median(self.profile.proc_median_ms, self.profile.proc_sigma)
            * self.load_factor(now);
        if rng.chance(self.profile.overload_prob) {
            proc_ms += rng.exponential(self.profile.overload_mean_ms);
        }
        proc_ms *= slowdown.max(1.0);
        // Deterministic queueing wait from the offered-load rate: exactly
        // 0.0 when idle, so `x + 0.0` keeps the unloaded path bit-identical.
        proc_ms += self.profile.queue().queue_delay_ms(offered_qps);
        let total = SimDuration::from_millis_f64(proc_ms) + resolution.upstream_time;
        (total, resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn production_is_faster_than_hobbyist_in_median() {
        let auth = AuthorityTree::standard();
        let mut prod = ResolverServer::new(cities::ASHBURN_VA, ServerProfile::production());
        let mut hob = ResolverServer::new(cities::ASHBURN_VA, ServerProfile::hobbyist());
        let mut rng = SimRng::from_seed(1);
        let mut p_times = Vec::new();
        let mut h_times = Vec::new();
        for i in 0..500 {
            let (t, _) = prod.handle_query(&n("google.com"), RecordType::A, &auth, at(i), &mut rng);
            p_times.push(t.as_millis_f64());
            let (t, _) = hob.handle_query(&n("google.com"), RecordType::A, &auth, at(i), &mut rng);
            h_times.push(t.as_millis_f64());
        }
        p_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        h_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            p_times[250] < h_times[250],
            "production median {} vs hobbyist {}",
            p_times[250],
            h_times[250]
        );
    }

    #[test]
    fn brownout_slowdown_scales_processing_only() {
        let auth = AuthorityTree::standard();
        let mut a = ResolverServer::new(cities::ASHBURN_VA, ServerProfile::production());
        let mut b = ResolverServer::new(cities::ASHBURN_VA, ServerProfile::production());
        // Identical seeds: the loaded path must consume the RNG identically.
        let mut rng_a = SimRng::from_seed(9);
        let mut rng_b = SimRng::from_seed(9);
        for i in 0..50 {
            let (t1, r1) =
                a.handle_query(&n("google.com"), RecordType::A, &auth, at(i), &mut rng_a);
            let (t5, r5) = b.handle_query_loaded(
                &n("google.com"),
                RecordType::A,
                &auth,
                at(i),
                5.0,
                0.0,
                &mut rng_b,
            );
            assert_eq!(r1.cache_hit, r5.cache_hit);
            let proc1 = t1.saturating_sub(r1.upstream_time).as_millis_f64();
            let proc5 = t5.saturating_sub(r5.upstream_time).as_millis_f64();
            assert!(
                (proc5 - proc1 * 5.0).abs() < 1e-4,
                "slowdown must scale processing 5x: {proc1} vs {proc5}"
            );
        }
        // A slowdown of 1.0 at zero offered load is the identity.
        let mut rng_a = SimRng::from_seed(10);
        let mut rng_b = SimRng::from_seed(10);
        let (t1, _) = a.handle_query(&n("google.com"), RecordType::A, &auth, at(99), &mut rng_a);
        let (t2, _) = b.handle_query_loaded(
            &n("google.com"),
            RecordType::A,
            &auth,
            at(99),
            1.0,
            0.0,
            &mut rng_b,
        );
        assert_eq!(t1, t2);
    }

    #[test]
    fn offered_load_adds_queue_delay_without_touching_rng() {
        let auth = AuthorityTree::standard();
        let mut a = ResolverServer::new(cities::ASHBURN_VA, ServerProfile::hobbyist());
        let mut b = ResolverServer::new(cities::ASHBURN_VA, ServerProfile::hobbyist());
        let mut rng_a = SimRng::from_seed(11);
        let mut rng_b = SimRng::from_seed(11);
        let offered = ServerProfile::hobbyist().queue().capacity_qps() * 0.5;
        let expect = ServerProfile::hobbyist().queue().queue_delay_ms(offered);
        assert!(expect > 0.0);
        for i in 0..50 {
            let (t0, r0) =
                a.handle_query(&n("google.com"), RecordType::A, &auth, at(i), &mut rng_a);
            let (tl, rl) = b.handle_query_loaded(
                &n("google.com"),
                RecordType::A,
                &auth,
                at(i),
                1.0,
                offered,
                &mut rng_b,
            );
            assert_eq!(r0.cache_hit, rl.cache_hit, "RNG stream must not shift");
            let d0 = t0.saturating_sub(r0.upstream_time).as_millis_f64();
            let dl = tl.saturating_sub(rl.upstream_time).as_millis_f64();
            assert!(
                (dl - d0 - expect).abs() < 1e-4,
                "queue delay must add {expect} ms: {d0} vs {dl}"
            );
        }
    }

    #[test]
    fn warm_cache_keeps_most_queries_local() {
        let auth = AuthorityTree::standard();
        let mut s = ResolverServer::new(cities::FRANKFURT, ServerProfile::production());
        let mut rng = SimRng::from_seed(2);
        let mut hits = 0;
        for i in 0..200 {
            let (_, res) = s.handle_query(&n("google.com"), RecordType::A, &auth, at(i), &mut rng);
            if res.cache_hit {
                hits += 1;
            }
        }
        assert!(
            hits > 190,
            "warmth should make most probes cache hits: {hits}"
        );
    }

    #[test]
    fn cold_cache_miss_costs_upstream_time() {
        let auth = AuthorityTree::standard();
        let mut profile = ServerProfile::hobbyist();
        profile.cache_warmth = 0.0;
        let mut s = ResolverServer::new(cities::SEOUL, profile);
        let mut rng = SimRng::from_seed(3);
        let (t, res) = s.handle_query(&n("google.com"), RecordType::A, &auth, at(0), &mut rng);
        assert!(!res.cache_hit);
        // Seoul → Ashburn authorities: three exchanges ≈ several hundred ms.
        assert!(t.as_millis_f64() > 100.0, "cold miss too cheap: {t}");
    }

    #[test]
    fn health_sampling_respects_probabilities() {
        let m = HealthModel::flaky();
        let mut rng = SimRng::from_seed(4);
        let n = 100_000;
        let mut fails = 0;
        for _ in 0..n {
            if m.sample(&mut rng) != ProbeHealth::Healthy {
                fails += 1;
            }
        }
        let rate = fails as f64 / n as f64;
        let expect = m.failure_prob();
        assert!(
            (rate - expect).abs() < 0.01,
            "failure rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn health_models_are_ordered() {
        assert!(HealthModel::reliable().failure_prob() < HealthModel::typical().failure_prob());
        assert!(HealthModel::typical().failure_prob() < HealthModel::flaky().failure_prob());
        assert!(HealthModel::flaky().failure_prob() < HealthModel::mostly_down().failure_prob());
        assert!(HealthModel::mostly_down().failure_prob() > 0.8);
    }

    #[test]
    fn all_failure_modes_reachable() {
        let m = HealthModel {
            p_refuse: 0.15,
            p_blackhole: 0.15,
            p_tls: 0.15,
            p_bad_cert: 0.15,
            p_http: 0.15,
        };
        let mut rng = SimRng::from_seed(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(m.sample(&mut rng));
        }
        assert_eq!(seen.len(), 6, "all six health states should appear");
    }

    #[test]
    fn diurnal_load_varies_processing() {
        let s = ResolverServer::new(cities::ASHBURN_VA, ServerProfile::hobbyist());
        let mut factors = Vec::new();
        for h in 0..24 {
            factors.push(s.load_factor(at(h * 3600)));
        }
        let max = factors.iter().cloned().fold(f64::MIN, f64::max);
        let min = factors.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > min + 0.2, "diurnal swing too small: {min}..{max}");
        assert!(min > 0.5, "load factor must stay positive: {min}");
    }
}
