//! A complete resolver instance: deployment topology (sites + routing),
//! one frontend per site, ICMP policy and health model.

use netsim::{Deployment, Host, IcmpPolicy, Path, SimRng, SimTime};

use crate::server::{HealthModel, ResolverServer, ServerProfile};

/// A fully assembled simulated resolver service.
#[derive(Debug)]
pub struct ResolverInstance {
    /// Hostname, e.g. `dns.google`.
    pub hostname: String,
    /// Network topology: sites and unicast/anycast routing.
    pub deployment: Deployment,
    /// One frontend per site (parallel to `deployment.sites`).
    pub servers: Vec<ResolverServer>,
    /// Whether the service answers ICMP echo.
    pub icmp: IcmpPolicy,
    /// Per-probe failure model.
    pub health: HealthModel,
    /// Scheduled outage windows: while simulated time is inside one, every
    /// probe sees a blackholed service (the paper's conclusion that
    /// non-mainstream "availability and performance may be more variable
    /// over time" made testable).
    pub outages: Vec<(SimTime, SimTime)>,
}

impl ResolverInstance {
    /// Assembles an instance, building one frontend per site with the given
    /// profile.
    pub fn new(
        hostname: impl Into<String>,
        deployment: Deployment,
        profile: ServerProfile,
        icmp: IcmpPolicy,
        health: HealthModel,
    ) -> Self {
        let servers = deployment
            .sites
            .iter()
            .map(|s| ResolverServer::new(s.city, profile))
            .collect();
        ResolverInstance {
            hostname: hostname.into(),
            deployment,
            servers,
            icmp,
            health,
            outages: Vec::new(),
        }
    }

    /// Schedules an outage window.
    pub fn add_outage(&mut self, from: SimTime, until: SimTime) {
        assert!(until > from, "outage must have positive duration");
        self.outages.push((from, until));
    }

    /// True when `now` falls inside a scheduled outage.
    pub fn in_outage(&self, now: SimTime) -> bool {
        self.outages.iter().any(|(a, b)| now >= *a && now < *b)
    }

    /// Samples this probe's observed health at simulated time `now`,
    /// honouring scheduled outages.
    pub fn sample_health_at(&self, now: SimTime, rng: &mut SimRng) -> crate::server::ProbeHealth {
        if self.in_outage(now) {
            return crate::server::ProbeHealth::Blackholed;
        }
        self.health.sample(rng)
    }

    /// Routes a client to its serving site, returning the site index and
    /// path (anycast picks the nearest site).
    pub fn route(&self, client: &Host) -> (usize, Path) {
        self.deployment.path_from(client)
    }

    /// Mutable access to the frontend at `site`.
    pub fn server_mut(&mut self, site: usize) -> &mut ResolverServer {
        &mut self.servers[site]
    }

    /// Samples this probe's observed health.
    pub fn sample_health(&self, rng: &mut SimRng) -> crate::server::ProbeHealth {
        self.health.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;
    use netsim::{AccessProfile, HostId, Site};

    fn client(city: netsim::City) -> Host {
        Host::in_city(HostId(0), "c", city, AccessProfile::cloud_vm())
    }

    fn anycast_instance() -> ResolverInstance {
        ResolverInstance::new(
            "dns.example",
            Deployment::anycast(vec![
                Site::datacenter(cities::ASHBURN_VA),
                Site::datacenter(cities::FRANKFURT),
                Site::datacenter(cities::SEOUL),
            ]),
            ServerProfile::production(),
            IcmpPolicy::Respond,
            HealthModel::reliable(),
        )
    }

    #[test]
    fn one_server_per_site() {
        let inst = anycast_instance();
        assert_eq!(inst.servers.len(), 3);
        assert_eq!(inst.servers[1].location().name, "Frankfurt");
    }

    #[test]
    fn routing_reaches_different_servers_by_region() {
        let inst = anycast_instance();
        let (us, _) = inst.route(&client(cities::CHICAGO));
        let (eu, _) = inst.route(&client(cities::MUNICH));
        let (asia, _) = inst.route(&client(cities::TOKYO));
        assert_eq!((us, eu, asia), (0, 1, 2));
    }

    #[test]
    fn unicast_instance_has_single_server() {
        let inst = ResolverInstance::new(
            "small.example",
            Deployment::unicast(Site::small(cities::MALMO)),
            ServerProfile::hobbyist(),
            IcmpPolicy::Filtered,
            HealthModel::typical(),
        );
        assert_eq!(inst.servers.len(), 1);
        let (site, path) = inst.route(&client(cities::SEOUL));
        assert_eq!(site, 0);
        assert!(path.base_one_way_ms() > 40.0, "Seoul→Malmö is far");
    }

    #[test]
    fn health_sampling_works() {
        let inst = anycast_instance();
        let mut rng = SimRng::from_seed(1);
        let healthy = (0..1000)
            .filter(|_| inst.sample_health(&mut rng) == crate::server::ProbeHealth::Healthy)
            .count();
        assert!(healthy > 990);
    }

    #[test]
    fn outage_windows_blackhole_probes() {
        use netsim::SimDuration;
        let mut inst = anycast_instance();
        let start = SimTime::ZERO + SimDuration::from_hours(10);
        let end = SimTime::ZERO + SimDuration::from_hours(14);
        inst.add_outage(start, end);
        let mut rng = SimRng::from_seed(2);
        // Inside the window: always blackholed.
        for h in 10..14 {
            let t = SimTime::ZERO + SimDuration::from_hours(h);
            assert!(inst.in_outage(t));
            assert_eq!(
                inst.sample_health_at(t, &mut rng),
                crate::server::ProbeHealth::Blackholed
            );
        }
        // Outside: normal sampling (reliable => almost always healthy).
        let before = SimTime::ZERO + SimDuration::from_hours(9);
        assert!(!inst.in_outage(before));
        let healthy = (0..100)
            .filter(|_| {
                inst.sample_health_at(before, &mut rng) == crate::server::ProbeHealth::Healthy
            })
            .count();
        assert!(healthy > 95);
        // The end boundary is exclusive.
        assert!(!inst.in_outage(end));
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_outage_rejected() {
        let mut inst = anycast_instance();
        inst.add_outage(SimTime::ZERO, SimTime::ZERO);
    }
}
