//! A complete resolver instance: deployment topology (sites + routing),
//! one frontend per site, ICMP policy and health model.

use netsim::{Deployment, Host, IcmpPolicy, Path, SimRng, SimTime};

use crate::server::{HealthModel, ResolverServer, ServerProfile};

/// A fully assembled simulated resolver service.
#[derive(Debug)]
pub struct ResolverInstance {
    /// Hostname, e.g. `dns.google`.
    pub hostname: String,
    /// Network topology: sites and unicast/anycast routing.
    pub deployment: Deployment,
    /// One frontend per site (parallel to `deployment.sites`).
    pub servers: Vec<ResolverServer>,
    /// Whether the service answers ICMP echo.
    pub icmp: IcmpPolicy,
    /// Per-probe failure model.
    pub health: HealthModel,
    /// Scheduled outage windows: while simulated time is inside one, every
    /// probe sees a blackholed service (the paper's conclusion that
    /// non-mainstream "availability and performance may be more variable
    /// over time" made testable).
    pub outages: Vec<(SimTime, SimTime)>,
}

impl ResolverInstance {
    /// Assembles an instance, building one frontend per site with the given
    /// profile.
    pub fn new(
        hostname: impl Into<String>,
        deployment: Deployment,
        profile: ServerProfile,
        icmp: IcmpPolicy,
        health: HealthModel,
    ) -> Self {
        let servers = deployment
            .sites
            .iter()
            .map(|s| ResolverServer::new(s.city, profile))
            .collect();
        ResolverInstance {
            hostname: hostname.into(),
            deployment,
            servers,
            icmp,
            health,
            outages: Vec::new(),
        }
    }

    /// Schedules an outage window.
    pub fn add_outage(&mut self, from: SimTime, until: SimTime) {
        assert!(until > from, "outage must have positive duration");
        self.outages.push((from, until));
    }

    /// True when `now` falls inside a scheduled outage.
    pub fn in_outage(&self, now: SimTime) -> bool {
        self.outages.iter().any(|(a, b)| now >= *a && now < *b)
    }

    /// Samples this probe's observed health at simulated time `now` — the
    /// **single audited health path**: scheduled outage windows are checked
    /// here and nowhere else, so a caller can never observe a healthy
    /// service inside an outage. (A former `sample_health` twin skipped
    /// the outage check; it was unified into this method and removed.)
    pub fn sample_health_at(&self, now: SimTime, rng: &mut SimRng) -> crate::server::ProbeHealth {
        if self.in_outage(now) {
            return crate::server::ProbeHealth::Blackholed;
        }
        self.health.sample(rng)
    }

    /// Routes a client to its serving site, returning the site index and
    /// path (anycast picks the nearest site).
    pub fn route(&self, client: &Host) -> (usize, Path) {
        self.deployment.path_from(client)
    }

    /// Load-sensitive routing: the nearest site whose utilization against
    /// `offered` (per-site offered-load rates, qps, parallel to
    /// `deployment.sites`) is below `spill`, falling back to the nearest
    /// site when every site is saturated. With zero offered load this is
    /// exactly [`route`](Self::route) — anycast absorbs regional overload
    /// by spilling clients outward, a unicast deployment has nowhere to
    /// spill.
    pub fn route_loaded(&self, client: &Host, offered: &[f64], spill: f64) -> (usize, Path) {
        let order = self.deployment.site_order(client);
        let pick = order
            .iter()
            .copied()
            .find(|&i| {
                let q = self.servers[i].profile.queue();
                q.utilization(offered.get(i).copied().unwrap_or(0.0)) < spill
            })
            .unwrap_or(order[0]);
        (pick, self.deployment.path_to_site(client, pick))
    }

    /// The deterministic per-site load table against `offered` (qps per
    /// site, parallel to `deployment.sites`): utilization, queueing delay
    /// and shed probability per site, in site order. Pure — the report's
    /// load tables and the two-seed stable-ordering tests are built on it.
    pub fn site_load_table(&self, offered: &[f64]) -> Vec<SiteLoad> {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, server)| {
                let q = server.profile.queue();
                let qps = offered.get(i).copied().unwrap_or(0.0);
                SiteLoad {
                    site: i,
                    city: server.location().name,
                    offered_qps: qps,
                    utilization: q.utilization(qps),
                    queue_delay_ms: q.queue_delay_ms(qps),
                    shed_probability: q.shed_probability(qps),
                }
            })
            .collect()
    }

    /// Mutable access to the frontend at `site`.
    pub fn server_mut(&mut self, site: usize) -> &mut ResolverServer {
        &mut self.servers[site]
    }
}

/// One row of a per-site load table: the queueing model of one site
/// evaluated against its offered-load rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteLoad {
    /// Site index (parallel to `deployment.sites`).
    pub site: usize,
    /// The site's city name.
    pub city: &'static str,
    /// Offered-load rate at the site, queries per second.
    pub offered_qps: f64,
    /// Raw utilization `λ / capacity` (may exceed 1 past saturation).
    pub utilization: f64,
    /// Mean queueing delay of an admitted query, ms.
    pub queue_delay_ms: f64,
    /// Fraction of offered queries shed at this rate.
    pub shed_probability: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;
    use netsim::{AccessProfile, HostId, Site};

    fn client(city: netsim::City) -> Host {
        Host::in_city(HostId(0), "c", city, AccessProfile::cloud_vm())
    }

    fn anycast_instance() -> ResolverInstance {
        ResolverInstance::new(
            "dns.example",
            Deployment::anycast(vec![
                Site::datacenter(cities::ASHBURN_VA),
                Site::datacenter(cities::FRANKFURT),
                Site::datacenter(cities::SEOUL),
            ]),
            ServerProfile::production(),
            IcmpPolicy::Respond,
            HealthModel::reliable(),
        )
    }

    #[test]
    fn one_server_per_site() {
        let inst = anycast_instance();
        assert_eq!(inst.servers.len(), 3);
        assert_eq!(inst.servers[1].location().name, "Frankfurt");
    }

    #[test]
    fn routing_reaches_different_servers_by_region() {
        let inst = anycast_instance();
        let (us, _) = inst.route(&client(cities::CHICAGO));
        let (eu, _) = inst.route(&client(cities::MUNICH));
        let (asia, _) = inst.route(&client(cities::TOKYO));
        assert_eq!((us, eu, asia), (0, 1, 2));
    }

    #[test]
    fn unicast_instance_has_single_server() {
        let inst = ResolverInstance::new(
            "small.example",
            Deployment::unicast(Site::small(cities::MALMO)),
            ServerProfile::hobbyist(),
            IcmpPolicy::Filtered,
            HealthModel::typical(),
        );
        assert_eq!(inst.servers.len(), 1);
        let (site, path) = inst.route(&client(cities::SEOUL));
        assert_eq!(site, 0);
        assert!(path.base_one_way_ms() > 40.0, "Seoul→Malmö is far");
    }

    #[test]
    fn health_sampling_works() {
        let inst = anycast_instance();
        let mut rng = SimRng::from_seed(1);
        let healthy = (0..1000)
            .filter(|_| {
                inst.sample_health_at(SimTime::ZERO, &mut rng)
                    == crate::server::ProbeHealth::Healthy
            })
            .count();
        assert!(healthy > 990);
    }

    #[test]
    fn outage_boundary_instants_are_exact() {
        use netsim::SimDuration;
        let mut inst = anycast_instance();
        let from = SimTime::ZERO + SimDuration::from_hours(10);
        let until = SimTime::ZERO + SimDuration::from_hours(14);
        inst.add_outage(from, until);
        let mut rng = SimRng::from_seed(7);
        // The start instant is inside the window: blackholed, no RNG draw
        // needed — repeated samples at `from` never disagree.
        for _ in 0..50 {
            assert_eq!(
                inst.sample_health_at(from, &mut rng),
                crate::server::ProbeHealth::Blackholed
            );
        }
        // One nanosecond before the window: normal sampling resumes.
        let just_before = SimTime::from_nanos(from.as_nanos() - 1);
        assert!(!inst.in_outage(just_before));
        // The end instant is outside the (half-open) window.
        let healthy_at_end = (0..200)
            .filter(|_| {
                inst.sample_health_at(until, &mut rng) == crate::server::ProbeHealth::Healthy
            })
            .count();
        assert!(healthy_at_end > 190, "end instant must sample normally");
    }

    #[test]
    fn route_loaded_spills_to_next_site_and_falls_back() {
        let inst = anycast_instance();
        let c = client(cities::CHICAGO);
        let capacity = inst.servers[0].profile.queue().capacity_qps();
        // Idle: identical to plain routing.
        let (site, _) = inst.route_loaded(&c, &[0.0, 0.0, 0.0], 0.8);
        assert_eq!(site, inst.route(&c).0);
        // The nearest site saturated: spill to the next-nearest.
        let (site, path) = inst.route_loaded(&c, &[capacity * 2.0, 0.0, 0.0], 0.8);
        assert_ne!(site, 0);
        assert!(path.base_one_way_ms() > 0.0);
        // Everything saturated: fall back to the nearest site.
        let all = [capacity * 2.0, capacity * 2.0, capacity * 2.0];
        let (site, _) = inst.route_loaded(&c, &all, 0.8);
        assert_eq!(site, inst.route(&c).0);
    }

    #[test]
    fn site_load_table_reports_per_site_queueing() {
        let inst = anycast_instance();
        let capacity = inst.servers[0].profile.queue().capacity_qps();
        let table = inst.site_load_table(&[0.0, capacity * 0.5, capacity * 2.0]);
        assert_eq!(table.len(), 3);
        assert_eq!(
            (table[0].site, table[1].site, table[2].site),
            (0, 1, 2),
            "rows in site order"
        );
        assert_eq!(table[0].queue_delay_ms, 0.0);
        assert!(table[1].queue_delay_ms > 0.0);
        assert_eq!(table[1].shed_probability, 0.0);
        assert!(table[2].shed_probability > 0.0);
        assert_eq!(table[1].city, "Frankfurt");
    }

    #[test]
    fn outage_windows_blackhole_probes() {
        use netsim::SimDuration;
        let mut inst = anycast_instance();
        let start = SimTime::ZERO + SimDuration::from_hours(10);
        let end = SimTime::ZERO + SimDuration::from_hours(14);
        inst.add_outage(start, end);
        let mut rng = SimRng::from_seed(2);
        // Inside the window: always blackholed.
        for h in 10..14 {
            let t = SimTime::ZERO + SimDuration::from_hours(h);
            assert!(inst.in_outage(t));
            assert_eq!(
                inst.sample_health_at(t, &mut rng),
                crate::server::ProbeHealth::Blackholed
            );
        }
        // Outside: normal sampling (reliable => almost always healthy).
        let before = SimTime::ZERO + SimDuration::from_hours(9);
        assert!(!inst.in_outage(before));
        let healthy = (0..100)
            .filter(|_| {
                inst.sample_health_at(before, &mut rng) == crate::server::ProbeHealth::Healthy
            })
            .count();
        assert!(healthy > 95);
        // The end boundary is exclusive.
        assert!(!inst.in_outage(end));
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_outage_rejected() {
        let mut inst = anycast_instance();
        inst.add_outage(SimTime::ZERO, SimTime::ZERO);
    }
}
