//! Micro-benchmarks of the simulation substrate: path sampling, anycast
//! routing, event queue, recursive-resolver cache, and single probes per
//! protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dns_wire::Name;
use measure::{ProbeConfig, ProbeTarget, Prober, Protocol};
use netsim::geo::cities;
use netsim::{AccessProfile, Deployment, EventQueue, Host, HostId, Path, SimRng, SimTime, Site};

fn bench_path_sampling(c: &mut Criterion) {
    let path = Path::between(
        cities::COLUMBUS_OH.point,
        AccessProfile::cloud_vm(),
        cities::FRANKFURT.point,
        AccessProfile::datacenter(),
    );
    let mut rng = SimRng::from_seed(1);
    c.bench_function("path_sample_rtt", |b| {
        b.iter(|| black_box(&path).sample_rtt(100, 200, &mut rng))
    });
}

fn bench_anycast_route(c: &mut Criterion) {
    let deployment = Deployment::anycast(vec![
        Site::datacenter(cities::ASHBURN_VA),
        Site::datacenter(cities::FRANKFURT),
        Site::datacenter(cities::TOKYO),
        Site::datacenter(cities::SYDNEY),
        Site::datacenter(cities::LONDON),
        Site::datacenter(cities::SINGAPORE),
    ]);
    let client = Host::in_city(HostId(0), "c", cities::SEOUL, AccessProfile::cloud_vm());
    c.bench_function("anycast_route_6_sites", |b| {
        b.iter(|| black_box(&deployment).route(black_box(&client)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                // Scatter times to exercise heap reordering.
                let t = SimTime::from_nanos((i * 2_654_435_761) % 1_000_000);
                q.schedule(t, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            sum
        })
    });
}

fn bench_probe_per_protocol(c: &mut Criterion) {
    let prober = Prober::new();
    let client = Host::in_city(
        HostId(0),
        "ec2-ohio",
        cities::COLUMBUS_OH,
        AccessProfile::cloud_vm(),
    );
    let domain = Name::parse("google.com").unwrap();
    for protocol in [Protocol::Do53, Protocol::DoT, Protocol::DoH, Protocol::DoQ] {
        c.bench_function(format!("probe_{}", protocol.label()), |b| {
            let mut target =
                ProbeTarget::from_entry(catalog::resolvers::find("dns.quad9.net").unwrap());
            let mut rng = SimRng::from_seed(7);
            let cfg = ProbeConfig {
                protocol,
                ..ProbeConfig::default()
            };
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                prober.probe(
                    &client,
                    &mut target,
                    &domain,
                    SimTime::from_nanos(i * 3_600_000_000_000),
                    false,
                    cfg,
                    &mut rng,
                )
            })
        });
    }
}

criterion_group!(
    benches,
    bench_path_sampling,
    bench_anycast_route,
    bench_event_queue,
    bench_probe_per_protocol
);
criterion_main!(benches);
