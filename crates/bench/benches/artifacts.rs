//! Artifact-regeneration benches: one Criterion group per table and figure
//! of the paper. Each group prints the regenerated artifact once (so
//! `cargo bench` output shows the same rows/series the paper reports) and
//! then measures the cost of regenerating it from a fresh campaign.
//!
//! | group | paper artifact |
//! |---|---|
//! | `table1` | Table 1 (browser matrix) |
//! | `availability` | §4 success/error counts |
//! | `figure1` | Figure 1 (NA from Ohio) |
//! | `figure2` | Figure 2 (NA × 4 vantages) |
//! | `figure3` | Figure 3 (EU × 4 vantages) |
//! | `figure4` | Figure 4 (Asia × 4 vantages) |
//! | `table2` | Table 2 (Asia, Seoul vs Frankfurt) |
//! | `table3` | Table 3 (EU, Frankfurt vs Seoul) |
//! | `headline` | §4 crossover findings |

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::{campaign, dataset, region_hosts};
use netsim::Region;
use report::experiments::{availability, figures, headline, table1, tables23};
use report::Dataset;

/// Rounds per day for the bench campaigns (kept small; the artifact shape
/// is stable because the simulation is calibrated, not sampled to death).
const ROUNDS: u32 = 2;

fn table1_bench(c: &mut Criterion) {
    eprintln!("\n{}", table1::render());
    c.bench_function("table1_regenerate", |b| b.iter(table1::render));
}

fn availability_bench(c: &mut Criterion) {
    let d = dataset(1, 3, &bench::BENCH_MIX);
    eprintln!("\n{}", availability::render(&d));
    c.bench_function("availability_analysis", |b| {
        b.iter(|| availability::run(black_box(&d)))
    });
    c.bench_function("availability_campaign_plus_analysis", |b| {
        b.iter(|| {
            let d = Dataset::new(campaign(1, ROUNDS, &bench::BENCH_MIX).run().records);
            availability::run(&d)
        })
    });
}

fn figure_bench(c: &mut Criterion, name: &str, region: Region) {
    let hosts = region_hosts(region);
    let host_refs: Vec<&str> = hosts.clone();
    let d = dataset(2, 3, &host_refs);
    // Print the regenerated figure once (all four panels).
    eprintln!("\n{}", figures::render(&d, region, 64));
    c.bench_function(format!("{name}_analysis"), |b| {
        b.iter(|| figures::figure(black_box(&d), region))
    });
    c.bench_function(format!("{name}_campaign_plus_render"), |b| {
        b.iter(|| {
            let d = Dataset::new(campaign(2, ROUNDS, &host_refs).run().records);
            figures::render(&d, region, 64).len()
        })
    });
}

fn figure1_bench(c: &mut Criterion) {
    let hosts = region_hosts(Region::NorthAmerica);
    let d = dataset(2, 3, &hosts);
    eprintln!("\nFigure 1:\n{}", figures::figure1(&d).render(64));
    c.bench_function("figure1_regenerate", |b| {
        b.iter(|| figures::figure1(black_box(&d)).rows.len())
    });
}

fn figure2_bench(c: &mut Criterion) {
    figure_bench(c, "figure2_north_america", Region::NorthAmerica);
}

fn figure3_bench(c: &mut Criterion) {
    figure_bench(c, "figure3_europe", Region::Europe);
}

fn figure4_bench(c: &mut Criterion) {
    figure_bench(c, "figure4_asia", Region::Asia);
}

fn tables_hosts() -> Vec<&'static str> {
    tables23::TABLE2_RESOLVERS
        .iter()
        .chain(&tables23::TABLE3_RESOLVERS)
        .copied()
        .collect()
}

fn table2_bench(c: &mut Criterion) {
    let hosts = tables_hosts();
    let d = dataset(3, 4, &hosts);
    eprintln!("\n{}", tables23::render_table2(&d));
    c.bench_function("table2_regenerate", |b| {
        b.iter(|| tables23::table2(black_box(&d)))
    });
}

fn table3_bench(c: &mut Criterion) {
    let hosts = tables_hosts();
    let d = dataset(3, 4, &hosts);
    eprintln!("\n{}", tables23::render_table3(&d));
    c.bench_function("table3_regenerate", |b| {
        b.iter(|| tables23::table3(black_box(&d)))
    });
}

fn headline_bench(c: &mut Criterion) {
    let mut hosts: Vec<&str> = catalog::resolvers::mainstream()
        .iter()
        .map(|e| e.hostname)
        .collect();
    hosts.extend([
        "ordns.he.net",
        "freedns.controld.com",
        "dns.brahma.world",
        "dns.alidns.com",
        "doh.ffmuc.net",
        "dns.bebasid.com",
        "public.dns.iij.jp",
    ]);
    let d = dataset(4, 6, &hosts);
    eprintln!("\n{}", headline::render(&d));
    c.bench_function("headline_findings", |b| {
        b.iter(|| headline::run(black_box(&d)))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = table1_bench, availability_bench, figure1_bench, figure2_bench,
        figure3_bench, figure4_bench, table2_bench, table3_bench, headline_bench
}
criterion_main!(benches);
