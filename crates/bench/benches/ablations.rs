//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * connection reuse (cold vs warm vs 0-RTT) — the Zhu/Böttger finding;
//! * anycast vs unicast deployment of the same service;
//! * query padding (RFC 8467) cost;
//! * campaign parallelism scaling.

use criterion::{criterion_group, criterion_main, Criterion};

use dns_wire::Name;
use measure::{ProbeConfig, ProbeTarget, Prober};
use netsim::geo::cities;
use netsim::{AccessProfile, Host, HostId, Path, SimDuration, SimRng, SimTime};
use transport::{
    QuicConfig, QuicConnection, TcpConfig, TcpConnection, TlsConfig, TlsServerBehavior, TlsSession,
};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Reports simulated medians (the scientific quantity) once, then measures
/// the host-CPU cost of the cold path.
fn connection_reuse(c: &mut Criterion) {
    let path = Path::between(
        cities::COLUMBUS_OH.point,
        AccessProfile::cloud_vm(),
        cities::ASHBURN_VA.point,
        AccessProfile::datacenter(),
    );
    let server = SimDuration::from_micros(500);
    let mut rng = SimRng::from_seed(3);
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    let mut zrtt = Vec::new();
    for _ in 0..500 {
        let (mut tcp, connect) =
            TcpConnection::connect(&path, false, &mut rng, TcpConfig::default()).unwrap();
        let tls = TlsSession::handshake(
            &mut tcp,
            &path,
            TlsConfig::default(),
            TlsServerBehavior::Normal,
            None,
            &mut rng,
        )
        .unwrap();
        let q = tcp
            .request_response(&path, 300, 468, server, &mut rng)
            .unwrap();
        cold.push((connect + tls.handshake_time + q.elapsed).as_millis_f64());
        let q = tcp
            .request_response(&path, 120, 468, server, &mut rng)
            .unwrap();
        warm.push(q.elapsed.as_millis_f64());
        let (conn, _) = QuicConnection::connect(&path, QuicConfig::default(), &mut rng).unwrap();
        let mut r = QuicConnection::resume_zero_rtt(&path, QuicConfig::default(), conn.ticket);
        let q = r
            .stream_exchange(&path, 120, 468, server, &mut rng)
            .unwrap();
        zrtt.push(q.elapsed.as_millis_f64());
    }
    eprintln!(
        "\nconnection reuse ablation (simulated medians, Ohio->Ashburn):\n  \
         cold DoH {:.1} ms | warm {:.1} ms | DoQ 0-RTT {:.1} ms\n",
        median(cold),
        median(warm),
        median(zrtt)
    );

    c.bench_function("ablation_cold_doh_transaction", |b| {
        let mut rng = SimRng::from_seed(4);
        b.iter(|| {
            let (mut tcp, _) =
                TcpConnection::connect(&path, false, &mut rng, TcpConfig::default()).unwrap();
            let _ = TlsSession::handshake(
                &mut tcp,
                &path,
                TlsConfig::default(),
                TlsServerBehavior::Normal,
                None,
                &mut rng,
            );
            tcp.request_response(&path, 300, 468, server, &mut rng)
        })
    });
}

/// Same service deployed unicast vs anycast: reports the simulated medians
/// per vantage and measures the probe cost.
fn anycast_vs_unicast(c: &mut Criterion) {
    let prober = Prober::new();
    let domain = Name::parse("google.com").unwrap();
    let clients = [
        ("Ohio", cities::COLUMBUS_OH),
        ("Frankfurt", cities::FRANKFURT),
        ("Seoul", cities::SEOUL),
    ];
    eprintln!("\nanycast-vs-unicast ablation (median cold-DoH ms per vantage):");
    for (label, hostname) in [("anycast", "dns.quad9.net"), ("unicast", "doh.ffmuc.net")] {
        let mut line = format!("  {label:<8}");
        for (cname, city) in clients {
            let client = Host::in_city(HostId(0), "c", city, AccessProfile::cloud_vm());
            let mut target = ProbeTarget::from_entry(catalog::resolvers::find(hostname).unwrap());
            let mut rng = SimRng::from_seed(5);
            let mut times = Vec::new();
            for i in 0..120 {
                let (o, _) = prober.probe(
                    &client,
                    &mut target,
                    &domain,
                    SimTime::from_nanos(i * 3_600_000_000_000),
                    false,
                    ProbeConfig::default(),
                    &mut rng,
                );
                if let Some(rt) = o.response_time() {
                    times.push(rt.as_millis_f64());
                }
            }
            line.push_str(&format!("  {cname} {:>6.1}", median(times)));
        }
        eprintln!("{line}");
    }
    eprintln!();

    c.bench_function("ablation_probe_anycast", |b| {
        let client = Host::in_city(HostId(0), "c", cities::SEOUL, AccessProfile::cloud_vm());
        let mut target =
            ProbeTarget::from_entry(catalog::resolvers::find("dns.quad9.net").unwrap());
        let mut rng = SimRng::from_seed(6);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            prober.probe(
                &client,
                &mut target,
                &domain,
                SimTime::from_nanos(i * 3_600_000_000_000),
                false,
                ProbeConfig::default(),
                &mut rng,
            )
        })
    });
}

/// RFC 8467 padding: wire-size cost of padding queries to 128 octets.
fn padding_cost(c: &mut Criterion) {
    let prober = Prober::new();
    let domain = Name::parse("google.com").unwrap();
    let client = Host::in_city(
        HostId(0),
        "c",
        cities::COLUMBUS_OH,
        AccessProfile::cloud_vm(),
    );
    for (name, padding) in [("padded", true), ("unpadded", false)] {
        c.bench_function(format!("ablation_doh_probe_{name}"), |b| {
            let mut target =
                ProbeTarget::from_entry(catalog::resolvers::find("dns.google").unwrap());
            let mut rng = SimRng::from_seed(7);
            let cfg = ProbeConfig {
                padding,
                ..ProbeConfig::default()
            };
            let mut i = 0;
            b.iter(|| {
                i += 1;
                prober.probe(
                    &client,
                    &mut target,
                    &domain,
                    SimTime::from_nanos(i * 3_600_000_000_000),
                    false,
                    cfg,
                    &mut rng,
                )
            })
        });
    }
}

/// Campaign parallelism: serial vs multi-threaded wall-clock.
fn parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_campaign_threads");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let campaign = bench::campaign(8, 2, &bench::BENCH_MIX);
                if threads == 1 {
                    campaign.run().records.len()
                } else {
                    campaign.run_parallel(threads).records.len()
                }
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = connection_reuse, anycast_vs_unicast, padding_cost, parallelism
}
criterion_main!(benches);
