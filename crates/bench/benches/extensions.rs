//! Benches for the extension experiments: query-distribution strategies
//! (K-resolver) and page-load-time by resolver choice. Each group prints
//! its result table once, then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};

use distribute::{Session, Strategy, Workload};
use measure::ProbeTarget;
use netsim::geo::cities;
use netsim::{AccessProfile, Host, HostId, SimRng, SimTime};
use webperf::{Loader, Page};

const SET: [&str; 5] = [
    "dns.quad9.net",
    "dns.google",
    "ordns.he.net",
    "freedns.controld.com",
    "security.cloudflare-dns.com",
];

fn distribution_bench(c: &mut Criterion) {
    let client = Host::in_city(
        HostId(0),
        "c",
        cities::COLUMBUS_OH,
        AccessProfile::cloud_vm(),
    );
    let workload = Workload::zipf(100, 1.0);

    eprintln!("\nquery-distribution tradeoff (200 queries, 5 resolvers):");
    eprintln!(
        "{:<16}{:>12}{:>14}{:>18}",
        "strategy", "median ms", "max share", "profile coverage"
    );
    for strategy in [
        Strategy::Single(0),
        Strategy::RoundRobin,
        Strategy::HashByDomain,
        Strategy::Race(2),
    ] {
        let mut session = Session::new(&client, false, &SET);
        let r = session.run(&strategy, &workload, 200, 1);
        eprintln!(
            "{:<16}{:>12.1}{:>13.0}%{:>17.0}%",
            r.strategy,
            r.median_ms().unwrap_or(f64::NAN),
            100.0 * r.exposure.max_query_share(),
            100.0 * r.exposure.max_profile_coverage(),
        );
    }
    eprintln!();

    c.bench_function("distribution_hash_by_domain_100q", |b| {
        b.iter(|| {
            let mut session = Session::new(&client, false, &SET);
            session
                .run(&Strategy::HashByDomain, &workload, 100, 2)
                .median_ms()
        })
    });
}

fn page_load_bench(c: &mut Criterion) {
    let loader = Loader::default();
    let page = Page::news_site("news.example.com");
    let client = Host::in_city(
        HostId(0),
        "home-1",
        cities::CHICAGO,
        AccessProfile::home_cable(),
    );

    eprintln!("\npage-load medians by resolver (news page, Chicago home):");
    for hostname in [
        "ordns.he.net",
        "dns.google",
        "doh.ffmuc.net",
        "dns.bebasid.com",
    ] {
        let mut target = ProbeTarget::from_entry(catalog::resolvers::find(hostname).unwrap());
        let mut rng = SimRng::derived(3, hostname);
        let mut plts = Vec::new();
        for i in 0..20 {
            let r = loader.load(
                &page,
                &client,
                true,
                &mut target,
                SimTime::from_nanos(i * 3_600_000_000_000),
                &mut rng,
            );
            if r.failed_domains.is_empty() {
                plts.push(r.plt_ms);
            }
        }
        plts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if plts.is_empty() {
            eprintln!("  {hostname:<28} (all loads failed)");
        } else {
            eprintln!("  {hostname:<28} {:>8.0} ms", plts[plts.len() / 2]);
        }
    }
    eprintln!();

    c.bench_function("page_load_news_site", |b| {
        let mut target = ProbeTarget::from_entry(catalog::resolvers::find("dns.google").unwrap());
        let mut rng = SimRng::from_seed(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            loader
                .load(
                    &page,
                    &client,
                    true,
                    &mut target,
                    SimTime::from_nanos(i * 3_600_000_000_000),
                    &mut rng,
                )
                .plt_ms
        })
    });
}

fn protocols_bench(c: &mut Criterion) {
    let hosts = ["dns.google", "dns.quad9.net", "security.cloudflare-dns.com"];
    eprintln!("\n{}", report::experiments::protocols::render(9, 2, &hosts));
    c.bench_function("protocol_comparison_campaigns", |b| {
        b.iter(|| report::experiments::protocols::run(9, 1, &hosts).len())
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = distribution_bench, page_load_bench, protocols_bench
}
criterion_main!(benches);
