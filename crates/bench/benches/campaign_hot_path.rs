//! Benchmarks of the campaign hot path the interning/merge/streaming
//! rework targets: end-to-end campaign execution, per-pair merge
//! ordering, streaming JSONL serialization, and metrics aggregation.
//!
//! Headline numbers (probes/sec, MB/s) are tracked by
//! `BENCH_campaign.json` at the repo root, regenerated with
//! `cargo run --release -p bench --bin campaign_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use measure::{metrics_of, Campaign, CampaignConfig, CampaignResult};

fn quick_campaign(rounds: u32) -> Campaign {
    Campaign::new(CampaignConfig::quick(42, rounds))
}

/// End-to-end: schedule, probe, merge. The dominant cost of the tool.
fn bench_campaign_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    let campaign = quick_campaign(2);
    g.bench_function("run_serial_quick2", |b| {
        b.iter(|| black_box(&campaign).run())
    });
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    g.bench_function("run_parallel_quick2", |b| {
        b.iter(|| black_box(&campaign).run_parallel(threads))
    });
    g.finish();
}

/// Serialization: records → JSON Lines (streaming writer, no Json tree).
fn bench_jsonl(c: &mut Criterion) {
    let result = quick_campaign(2).run();
    let mut g = c.benchmark_group("serialize");
    g.sample_size(20);
    g.bench_function("to_json_lines_quick2", |b| {
        b.iter(|| black_box(&result).to_json_lines())
    });
    let doc = result.to_json_lines();
    g.bench_function("from_json_lines_quick2", |b| {
        b.iter(|| CampaignResult::from_json_lines(42, black_box(&doc)).unwrap())
    });
    g.finish();
}

/// Metrics: records → resolver × vantage × protocol snapshot.
fn bench_metrics(c: &mut Criterion) {
    let result = quick_campaign(2).run();
    let mut g = c.benchmark_group("metrics");
    g.sample_size(20);
    g.bench_function("metrics_of_quick2", |b| {
        b.iter(|| metrics_of(black_box(&result.records)))
    });
    g.finish();
}

criterion_group!(benches, bench_campaign_run, bench_jsonl, bench_metrics);
criterion_main!(benches);
