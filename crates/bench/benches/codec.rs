//! Micro-benchmarks of the wire-format substrate: DNS message codec,
//! base64url, HPACK, HTTP/2 framing, DNS stamps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dns_wire::{base64url, Message, MessageBuilder, Name, RecordType};
use transport::http2::hpack::{Decoder, Encoder, HeaderField};
use transport::{doh_headers, H2Connection, H2Request};

fn typical_query() -> Message {
    MessageBuilder::query(0, Name::parse("www.example.com").unwrap(), RecordType::A)
        .recursion_desired(true)
        .edns_udp_size(1232)
        .padding_to(128)
        .build()
}

fn bench_dns_codec(c: &mut Criterion) {
    let msg = typical_query();
    let wire = msg.encode().unwrap();
    c.bench_function("dns_encode_query", |b| {
        b.iter(|| black_box(&msg).encode().unwrap())
    });
    c.bench_function("dns_decode_query", |b| {
        b.iter(|| Message::decode(black_box(&wire)).unwrap())
    });
}

fn bench_base64url(c: &mut Criterion) {
    let wire = typical_query().encode().unwrap();
    let enc = base64url::encode(&wire);
    c.bench_function("base64url_encode_128B", |b| {
        b.iter(|| base64url::encode(black_box(&wire)))
    });
    c.bench_function("base64url_decode_128B", |b| {
        b.iter(|| base64url::decode(black_box(&enc)).unwrap())
    });
}

fn bench_hpack(c: &mut Criterion) {
    let headers: Vec<HeaderField> = doh_headers(
        "dns.google",
        "/dns-query?dns=AAABAAABAAAAAAAAA3d3dwdleGFtcGxlA2NvbQAAAQAB",
        false,
        0,
    );
    c.bench_function("hpack_encode_doh_headers_cold", |b| {
        b.iter_batched(
            Encoder::default,
            |mut enc| enc.encode(black_box(&headers)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("hpack_round_trip_warm", |b| {
        let mut enc = Encoder::default();
        let mut dec = Decoder::default();
        b.iter(|| {
            let block = enc.encode(black_box(&headers));
            dec.decode(&block).unwrap()
        })
    });
}

fn bench_h2_request(c: &mut Criterion) {
    let headers = doh_headers("dns.google", "/dns-query?dns=AAAB", false, 0);
    c.bench_function("h2_encode_doh_request", |b| {
        b.iter_batched(
            H2Connection::new,
            |mut conn| {
                conn.encode_request(black_box(&H2Request {
                    headers: headers.clone(),
                    body: bytes::Bytes::new(),
                }))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_stamps(c: &mut Criterion) {
    let stamp = catalog::Stamp::doh("dns.quad9.net", "/dns-query");
    let enc = stamp.encode();
    c.bench_function("stamp_encode", |b| b.iter(|| black_box(&stamp).encode()));
    c.bench_function("stamp_decode", |b| {
        b.iter(|| catalog::Stamp::decode(black_box(&enc)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_dns_codec,
    bench_base64url,
    bench_hpack,
    bench_h2_request,
    bench_stamps
);
criterion_main!(benches);
