//! Flight-recorder differential harness, run by the `longitudinal` CI
//! job. Four invariants, each a loud process-exit failure:
//!
//! 1. **Recorder determinism** — two same-seed sharded runs export
//!    byte-identical `events.jsonl`, health JSONL, and Chrome trace
//!    documents.
//! 2. **Resume transparency** — a campaign killed after two shards and
//!    resumed produces the same events/health/trace bytes AND the same
//!    campaign-wide `pairs_run`/`records_produced` counters as the
//!    one-shot run.
//! 3. **Recorder neutrality** — the measured JSONL output is
//!    byte-identical whether the journal is enabled or disabled, and
//!    matches the in-memory `Campaign::run()` reference.
//! 4. **Trace schema sanity** — the exported trace parses as JSON and
//!    carries the `traceEvents` array Chrome/Perfetto expect, with
//!    balanced begin/end events.
//!
//! ```text
//! cargo run --release -p bench --bin flight_recorder_check
//! ```

use std::path::PathBuf;

use measure::{Campaign, CampaignConfig, HealthSeries, ShardedOutcome, ShardedRunner};

const SHARDS: u32 = 5;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn campaign() -> Campaign {
    let entries = ["dns.google", "dns.quad9.net", "doh.ffmuc.net"]
        .into_iter()
        .map(|h| catalog::resolvers::find(h).unwrap())
        .collect();
    // 12 longitudinal days under the seeded fault plan: long enough for
    // the trailing-window drift baseline to arm, faulty enough that the
    // journal carries fault windows and retry exhaustions.
    Campaign::with_resolvers(
        CampaignConfig::longitudinal(11, 12).with_default_faults(),
        entries,
    )
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("edns-flight-recorder-{}-{tag}", std::process::id()))
}

/// The recorder's three export documents for one outcome.
fn exports(outcome: &ShardedOutcome) -> (String, String, String) {
    (
        outcome.journal.to_jsonl(),
        outcome.health.to_jsonl(),
        obs::traceview::chrome_trace(&outcome.spans),
    )
}

fn main() {
    let c = campaign();

    // One-shot reference run.
    let dir_a = scratch("oneshot");
    let runner = ShardedRunner::new(&c, SHARDS, &dir_a).unwrap();
    let a = runner.run(2).unwrap();
    let (events_a, health_a, trace_a) = exports(&a);
    let jsonl_a = std::fs::read_to_string(&a.jsonl_path).unwrap();

    // 1. Determinism: an identical second run exports identical bytes.
    let dir_b = scratch("repeat");
    let b = ShardedRunner::new(&c, SHARDS, &dir_b)
        .unwrap()
        .run(2)
        .unwrap();
    let (events_b, health_b, trace_b) = exports(&b);
    if events_a != events_b {
        fail("same-seed runs exported different event journals");
    }
    if health_a != health_b {
        fail("same-seed runs exported different health series");
    }
    if trace_a != trace_b {
        fail("same-seed runs exported different traces");
    }

    // 2. Resume transparency: kill after two shards, resume, compare.
    let dir_c = scratch("resume");
    let partial = ShardedRunner::new(&c, SHARDS, &dir_c).unwrap();
    let remaining = partial.advance(2).unwrap();
    assert_eq!(remaining, SHARDS as usize - 2);
    let resumed = ShardedRunner::new(&c, SHARDS, &dir_c)
        .unwrap()
        .run(2)
        .unwrap();
    let (events_r, health_r, trace_r) = exports(&resumed);
    if events_r != events_a {
        fail("kill+resume changed the exported event journal");
    }
    if health_r != health_a {
        fail("kill+resume changed the exported health series");
    }
    if trace_r != trace_a {
        fail("kill+resume changed the exported trace");
    }
    if std::fs::read_to_string(&resumed.jsonl_path).unwrap() != jsonl_a {
        fail("kill+resume changed the measured JSONL output");
    }
    if resumed.run.shards_resumed.get() != 2 {
        fail("resume did not adopt the two checkpointed shards");
    }
    if resumed.run.pairs_run.get() != a.run.pairs_run.get() {
        fail("campaign-wide pairs_run differs between one-shot and resume");
    }
    if resumed.run.records_produced.get() != a.run.records_produced.get() {
        fail("campaign-wide records_produced differs between one-shot and resume");
    }

    // 3. Neutrality: journal off => measured output unchanged, and both
    // match the in-memory reference (including its health fold).
    let dir_d = scratch("silent");
    let silent = ShardedRunner::new(&c, SHARDS, &dir_d)
        .unwrap()
        .with_journal_capacity(0)
        .run(2)
        .unwrap();
    if silent.journal.is_enabled() || silent.journal.recorded() != 0 {
        fail("capacity 0 must disable the journal");
    }
    if std::fs::read_to_string(&silent.jsonl_path).unwrap() != jsonl_a {
        fail("disabling the journal changed the measured JSONL output");
    }
    let reference = c.run();
    if reference.to_json_lines() != jsonl_a {
        fail("sharded JSONL diverged from the in-memory reference");
    }
    if HealthSeries::of(&c, &reference.records).to_jsonl() != health_a {
        fail("sharded health series diverged from the in-memory fold");
    }

    // 4. Trace schema sanity.
    let doc = measure::json::parse(trace_a.trim_end())
        .unwrap_or_else(|e| fail(&format!("trace is not valid JSON: {e}")));
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| fail("trace lacks a traceEvents array"));
    let phase = |ev: &measure::json::Json| {
        ev.get("ph")
            .and_then(|p| p.as_str())
            .map(str::to_string)
            .unwrap_or_default()
    };
    let begins = events.iter().filter(|e| phase(e) == "B").count();
    let ends = events.iter().filter(|e| phase(e) == "E").count();
    if begins == 0 || begins != ends {
        fail(&format!("unbalanced trace: {begins} begins vs {ends} ends"));
    }

    for dir in [dir_a, dir_b, dir_c, dir_d] {
        let _ = std::fs::remove_dir_all(dir);
    }
    println!(
        "{{\"records\":{},\"events\":{},\"health_rows\":{},\"drift_findings\":{},\"trace_events\":{}}}",
        a.records,
        a.journal.recorded(),
        a.health.resolver_rows().len(),
        a.drift.len(),
        events.len(),
    );
    eprintln!("flight recorder OK: determinism, resume transparency, neutrality, trace schema");
}
