//! Campaign hot-path throughput check: runs a full-population campaign and
//! reports a staged breakdown — probe generation (the arena/`PairContext`
//! fast path, measured separately per worker-thread count), merge/assembly,
//! JSONL serialization, metrics aggregation, flight-recorder overhead, and
//! the end-to-end pipeline rate — as one JSON object on stdout.
//!
//! Used three ways:
//!
//! * `cargo run --release -p bench --bin campaign_throughput` — the numbers
//!   recorded in `BENCH_campaign.json` at the repo root, including the
//!   1/2/4/8-thread probe-generation sweep;
//! * `-- --quick` — the CI smoke profile: a smaller campaign plus hard
//!   floors on the single-thread probe-generation and pipeline rates so
//!   hot-path regressions fail the workflow loudly;
//! * `-- --quick --threads 1,2,4` — the CI scaling profile: the same
//!   floors plus a parallel-efficiency floor at the highest requested
//!   thread count (enforced only when the machine actually has that many
//!   cores — a 1-core runner still checks byte-identity, not speedup).
//!
//! Every sweep entry's assembled output is asserted byte-identical to the
//! serial run before any timing is reported: a thread count that changed
//! a single record is a correctness bug, not a data point.

// Bench harness: real elapsed time is the measurement itself.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use measure::{metrics_of, Campaign, CampaignConfig, SessionConfig};

/// CI floor for the quick profile, in end-to-end pipeline probes/sec
/// (probe + merge + JSONL + metrics). The pre-interning implementation
/// measured ~2.1e4 on the reference container, the streaming hot path
/// ~6.1e4, and the arena/`PairContext` fast path ~1.0e5. Tripping this
/// floor means probe generation lost the fast path's advantage (hoisted
/// wire templates regressing to per-probe rebuilds shows up here first).
const QUICK_FLOOR_PIPELINE_PROBES_PER_SEC: f64 = 55_000.0;

/// CI floor on single-thread probe generation alone (the `generate`
/// stage, before merge/serialization). The fast path measures ~1.3e5 on
/// the reference container vs ~8.4e4 for the pre-context path; the floor
/// sits above the old rate so losing the hoisting cannot pass CI.
const QUICK_FLOOR_PROBE_GEN_PROBES_PER_SEC: f64 = 90_000.0;

/// Minimum parallel efficiency — `pps(n) / (n · pps(1))` — at the highest
/// swept thread count, enforced only when the host really has that many
/// cores. Probe generation is embarrassingly parallel over pairs, so
/// anything below 0.7 means a new serial bottleneck (a shared lock, a
/// global allocator fight) crept into the per-pair path.
const QUICK_FLOOR_SCALING_EFFICIENCY: f64 = 0.7;

/// CI ceiling for the session layer's cost relative to cold-only probe
/// generation: the same campaign under the full-reuse session model must
/// not run more than 5% slower. Per probe the layer adds one schedule
/// draw, a couple of timestamp comparisons and the mode bookkeeping —
/// and warm probes *skip* handshake flights, so the measured delta on the
/// reference container is negative; 5% leaves room for CI noise while
/// failing loudly if session state ever grows per-probe allocation or
/// re-derivation.
const QUICK_CEILING_SESSION_OVERHEAD: f64 = 0.05;

/// CI ceiling for the flight recorder's share of the pipeline: folding
/// the per-(resolver, day) health series plus running the drift detector
/// must cost under 5% of the end-to-end pipeline time. The fold is one
/// branch-light pass over the record stream, so it measures well under
/// 1% on the reference container; 5% leaves headroom for CI noise while
/// still failing loudly if the recorder ever grows a per-record
/// allocation or sort.
const QUICK_CEILING_RECORDER_OVERHEAD: f64 = 0.05;

fn campaign(rounds: u32) -> Campaign {
    Campaign::new(CampaignConfig::quick(42, rounds))
}

/// Parses `--threads a,b,c` from the argument list (default `1,2,4,8`).
fn thread_sweep(args: &[String]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|n| n.trim().parse().expect("--threads takes e.g. 1,2,4"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 6 } else { 40 };
    let sweep = thread_sweep(&args);
    assert!(
        sweep.contains(&1),
        "the sweep needs a 1-thread baseline row"
    );

    // Warm up lazy statics (catalog tables, label interner) outside the
    // timed region.
    campaign(1).run();

    let c = campaign(rounds);
    let probes = c.probe_count() as f64;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Probe-generation sweep: time `generate(t)` for each thread count,
    // then assemble and pin byte-identity against the serial result.
    let mut rows = Vec::new();
    let mut serial: Option<measure::CampaignResult> = None;
    let mut serial_gen_s = 0.0;
    for &threads in &sweep {
        let t = Instant::now();
        let generated = c.generate(threads);
        let gen_s = t.elapsed().as_secs_f64();
        assert_eq!(generated.record_count() as f64, probes);
        let result = c.assemble(generated);
        match &serial {
            None => {
                serial_gen_s = gen_s;
                serial = Some(result);
            }
            Some(base) => assert_eq!(
                base.records, result.records,
                "{threads}-thread generate diverged from serial"
            ),
        }
        rows.push((threads, gen_s, probes / gen_s));
    }
    let serial = serial.expect("sweep starts at 1 thread");

    // Merge/assembly stage, timed on a fresh single-thread generation so
    // the pipeline total below is an honest serial end-to-end figure.
    let generated = c.generate(1);
    let t = Instant::now();
    let assembled = c.assemble(generated);
    let assemble_s = t.elapsed().as_secs_f64();
    assert_eq!(assembled.records, serial.records, "assembly determinism");

    let t = Instant::now();
    let jsonl = serial.to_json_lines();
    let jsonl_s = t.elapsed().as_secs_f64();
    let jsonl_bytes = jsonl.len() as f64;

    let t = Instant::now();
    let snapshot = metrics_of(&serial.records);
    let metrics_s = t.elapsed().as_secs_f64();
    assert!(snapshot.total_probes() as f64 == probes);

    // Flight recorder stage: the per-(resolver, day) health fold plus the
    // drift detector, exactly what an enabled recorder adds per record.
    let t = Instant::now();
    let health = measure::HealthSeries::of(&c, &serial.records);
    let findings = measure::detect_drift(&health.resolver_rows(), &measure::DriftConfig::default());
    let recorder_s = t.elapsed().as_secs_f64();
    assert_eq!(health.probes() as f64, probes, "recorder saw every probe");

    // Session-layer stage: the same campaign under the full-reuse session
    // model (ticket cache, pools, 0-RTT). Its records differ from the
    // cold-only run by design, so the comparison is generation *time*,
    // not bytes — the byte claims live in the session differential tests.
    // Both sides are min-of-3, measured back-to-back with the same code:
    // single runs on a shared 1-core CI container jitter by ±50%, far
    // more than the ceiling this stage enforces.
    let min_gen = |c: &Campaign| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let generated = c.generate(1);
                let gen_s = t.elapsed().as_secs_f64();
                assert_eq!(generated.record_count() as f64, probes);
                gen_s
            })
            .fold(f64::INFINITY, f64::min)
    };
    let session_campaign =
        Campaign::new(CampaignConfig::quick(42, rounds).with_session(SessionConfig::warm()));
    let cold_gen_s = min_gen(&c);
    let session_gen_s = min_gen(&session_campaign);

    let probe_gen_pps = probes / serial_gen_s;
    let pipeline_s = serial_gen_s + assemble_s + jsonl_s + metrics_s;
    let pipeline_pps = probes / pipeline_s;
    let recorder_overhead = recorder_s / pipeline_s;
    let session_overhead = session_gen_s / cold_gen_s - 1.0;

    let sweep_json: Vec<String> = rows
        .iter()
        .map(|(threads, gen_s, pps)| {
            let efficiency = pps / (*threads as f64 * probe_gen_pps);
            format!(
                concat!(
                    "{{\"threads\":{},\"probe_gen_s\":{:.3},",
                    "\"probe_gen_probes_per_sec\":{:.0},\"scaling_efficiency\":{:.2}}}"
                ),
                threads, gen_s, pps, efficiency
            )
        })
        .collect();

    println!(
        concat!(
            "{{\"profile\":\"{}\",\"probes\":{},\"cores\":{},",
            "\"probe_gen_s\":{:.3},\"probe_gen_probes_per_sec\":{:.0},",
            "\"assemble_s\":{:.3},",
            "\"jsonl_bytes\":{},\"jsonl_s\":{:.3},\"jsonl_mb_per_sec\":{:.1},",
            "\"metrics_s\":{:.3},\"metrics_probes_per_sec\":{:.0},",
            "\"recorder_s\":{:.4},\"recorder_overhead\":{:.4},\"drift_findings\":{},",
            "\"session_gen_s\":{:.3},\"session_overhead\":{:.4},",
            "\"pipeline_s\":{:.3},\"pipeline_probes_per_sec\":{:.0},",
            "\"thread_sweep\":[{}]}}"
        ),
        if quick { "quick" } else { "full" },
        probes as u64,
        cores,
        serial_gen_s,
        probe_gen_pps,
        assemble_s,
        jsonl_bytes as u64,
        jsonl_s,
        jsonl_bytes / jsonl_s / 1e6,
        metrics_s,
        probes / metrics_s,
        recorder_s,
        recorder_overhead,
        findings.len(),
        session_gen_s,
        session_overhead,
        pipeline_s,
        pipeline_pps,
        sweep_json.join(","),
    );

    if !quick {
        return;
    }
    let mut failed = false;
    if pipeline_pps < QUICK_FLOOR_PIPELINE_PROBES_PER_SEC {
        eprintln!(
            "FAIL: pipeline throughput {pipeline_pps:.0} probes/sec below floor {QUICK_FLOOR_PIPELINE_PROBES_PER_SEC:.0}"
        );
        failed = true;
    }
    if probe_gen_pps < QUICK_FLOOR_PROBE_GEN_PROBES_PER_SEC {
        eprintln!(
            "FAIL: single-thread probe generation {probe_gen_pps:.0} probes/sec below floor {QUICK_FLOOR_PROBE_GEN_PROBES_PER_SEC:.0}"
        );
        failed = true;
    }
    if session_overhead > QUICK_CEILING_SESSION_OVERHEAD {
        eprintln!(
            "FAIL: session-layer probe generation {:.2}% slower than cold-only exceeds ceiling {:.0}%",
            session_overhead * 100.0,
            QUICK_CEILING_SESSION_OVERHEAD * 100.0
        );
        failed = true;
    }
    if recorder_overhead > QUICK_CEILING_RECORDER_OVERHEAD {
        eprintln!(
            "FAIL: flight recorder overhead {:.2}% of pipeline exceeds ceiling {:.0}%",
            recorder_overhead * 100.0,
            QUICK_CEILING_RECORDER_OVERHEAD * 100.0
        );
        failed = true;
    }
    // Scaling floor: only meaningful where the OS actually grants the
    // parallelism — a 1-core container still validated byte-identity above.
    let &(top_threads, _, top_pps) = rows.iter().max_by_key(|(t, _, _)| *t).unwrap();
    if top_threads > 1 && cores >= top_threads {
        let efficiency = top_pps / (top_threads as f64 * probe_gen_pps);
        if efficiency < QUICK_FLOOR_SCALING_EFFICIENCY {
            eprintln!(
                "FAIL: {top_threads}-thread probe generation efficiency {efficiency:.2} below floor {QUICK_FLOOR_SCALING_EFFICIENCY}"
            );
            failed = true;
        }
    } else if top_threads > 1 {
        eprintln!(
            "note: scaling floor skipped — host has {cores} core(s), sweep tops out at {top_threads} threads"
        );
    }
    if failed {
        std::process::exit(1);
    }
}
