//! Campaign hot-path throughput check: runs a full-population campaign and
//! reports probes/sec (serial and parallel), JSONL serialization bytes/sec,
//! metrics-aggregation probes/sec, and the end-to-end pipeline rate
//! (probe → merge → JSONL → metrics) as one JSON object on stdout.
//!
//! Used two ways:
//!
//! * `cargo run --release -p bench --bin campaign_throughput` — the numbers
//!   recorded in `BENCH_campaign.json` at the repo root;
//! * `cargo run --release -p bench --bin campaign_throughput -- --quick`
//!   — the CI smoke profile: a smaller campaign plus a hard floor on the
//!   pipeline rate so hot-path regressions fail the workflow loudly.

// Bench harness: real elapsed time is the measurement itself.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use measure::{metrics_of, Campaign, CampaignConfig};

/// CI floor for the quick profile, in end-to-end pipeline probes/sec
/// (probe + merge + JSONL + metrics). The pre-interning implementation
/// measured ~2.1e4 on the reference container; the streaming hot path
/// clears 7e4. Tripping this floor means the hot path lost its ≥2×
/// advantage over the old tree-serializing, globally-sorting pipeline.
const QUICK_FLOOR_PIPELINE_PROBES_PER_SEC: f64 = 40_000.0;

/// CI ceiling for the flight recorder's share of the pipeline: folding
/// the per-(resolver, day) health series plus running the drift detector
/// must cost under 5% of the end-to-end pipeline time. The fold is one
/// branch-light pass over the record stream, so it measures well under
/// 1% on the reference container; 5% leaves headroom for CI noise while
/// still failing loudly if the recorder ever grows a per-record
/// allocation or sort.
const QUICK_CEILING_RECORDER_OVERHEAD: f64 = 0.05;

fn campaign(rounds: u32) -> Campaign {
    Campaign::new(CampaignConfig::quick(42, rounds))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 6 } else { 40 };

    // Warm up lazy statics (catalog tables, label interner) outside the
    // timed region.
    campaign(1).run();

    let c = campaign(rounds);
    let probes = c.probe_count() as f64;

    let t = Instant::now();
    let serial = c.run();
    let serial_s = t.elapsed().as_secs_f64();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t = Instant::now();
    let parallel = c.run_parallel(threads);
    let parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(serial.records, parallel.records, "parallel determinism");

    let t = Instant::now();
    let jsonl = serial.to_json_lines();
    let jsonl_s = t.elapsed().as_secs_f64();
    let jsonl_bytes = jsonl.len() as f64;

    let t = Instant::now();
    let snapshot = metrics_of(&serial.records);
    let metrics_s = t.elapsed().as_secs_f64();
    assert!(snapshot.total_probes() as f64 == probes);

    // Flight recorder stage: the per-(resolver, day) health fold plus the
    // drift detector, exactly what an enabled recorder adds per record.
    let t = Instant::now();
    let health = measure::HealthSeries::of(&c, &serial.records);
    let findings = measure::detect_drift(&health.resolver_rows(), &measure::DriftConfig::default());
    let recorder_s = t.elapsed().as_secs_f64();
    assert_eq!(health.probes() as f64, probes, "recorder saw every probe");

    let serial_pps = probes / serial_s;
    let parallel_pps = probes / parallel_s;
    let pipeline_s = serial_s + jsonl_s + metrics_s;
    let pipeline_pps = probes / pipeline_s;
    let recorder_overhead = recorder_s / pipeline_s;
    println!(
        concat!(
            "{{\"profile\":\"{}\",\"probes\":{},\"threads\":{},",
            "\"serial_s\":{:.3},\"serial_probes_per_sec\":{:.0},",
            "\"parallel_s\":{:.3},\"parallel_probes_per_sec\":{:.0},",
            "\"jsonl_bytes\":{},\"jsonl_s\":{:.3},\"jsonl_mb_per_sec\":{:.1},",
            "\"metrics_s\":{:.3},\"metrics_probes_per_sec\":{:.0},",
            "\"recorder_s\":{:.4},\"recorder_overhead\":{:.4},\"drift_findings\":{},",
            "\"pipeline_s\":{:.3},\"pipeline_probes_per_sec\":{:.0}}}"
        ),
        if quick { "quick" } else { "full" },
        probes as u64,
        threads,
        serial_s,
        serial_pps,
        parallel_s,
        parallel_pps,
        jsonl_bytes as u64,
        jsonl_s,
        jsonl_bytes / jsonl_s / 1e6,
        metrics_s,
        probes / metrics_s,
        recorder_s,
        recorder_overhead,
        findings.len(),
        pipeline_s,
        pipeline_pps,
    );

    if quick && pipeline_pps < QUICK_FLOOR_PIPELINE_PROBES_PER_SEC {
        eprintln!(
            "FAIL: pipeline throughput {pipeline_pps:.0} probes/sec below floor {QUICK_FLOOR_PIPELINE_PROBES_PER_SEC:.0}"
        );
        std::process::exit(1);
    }
    if quick && recorder_overhead > QUICK_CEILING_RECORDER_OVERHEAD {
        eprintln!(
            "FAIL: flight recorder overhead {:.2}% of pipeline exceeds ceiling {:.0}%",
            recorder_overhead * 100.0,
            QUICK_CEILING_RECORDER_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
}
