//! Regenerates the shard-scheduler golden fixture under
//! `crates/measure/tests/golden/`. Run from the repo root after an
//! *intentional* checkpoint-format change:
//!
//! ```text
//! cargo run --release -p bench --bin shard_golden_regen
//! ```
//!
//! The fixture pins the complete `manifest.ckpt` bytes (header, checksum,
//! per-shard record/byte counts, and aggregate cells) for a fixed-seed
//! campaign split into five shards; `crates/measure/tests/shard_golden.rs`
//! asserts the scheduler reproduces them byte-for-byte and that the
//! assembled JSONL still matches the one-shot golden fixture.

use measure::{Campaign, CampaignConfig, ShardedRunner};

fn entries() -> Vec<catalog::ResolverEntry> {
    [
        "dns.google",
        "dns.quad9.net",
        "doh.ffmuc.net",
        "chewbacca.meganerd.nl",
    ]
    .into_iter()
    .map(|h| catalog::resolvers::find(h).unwrap())
    .collect()
}

fn main() {
    let golden = std::path::Path::new("crates/measure/tests/golden");
    std::fs::create_dir_all(golden).unwrap();

    let scratch = std::env::temp_dir().join(format!("edns-shard-golden-{}", std::process::id()));
    let campaign = Campaign::with_resolvers(CampaignConfig::quick(4, 3), entries());
    let runner = ShardedRunner::new(&campaign, 5, &scratch).unwrap();
    let outcome = runner.run(2).unwrap();

    let manifest = std::fs::read_to_string(scratch.join("manifest.ckpt")).unwrap();
    std::fs::write(golden.join("shard_manifest_seed4.ckpt"), &manifest).unwrap();
    eprintln!(
        "wrote shard_manifest_seed4.ckpt ({} bytes, {} records across 5 shards)",
        manifest.len(),
        outcome.records
    );
    std::fs::remove_dir_all(&scratch).unwrap();
}
