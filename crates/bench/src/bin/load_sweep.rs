//! Load-sweep bench: runs the same campaign at a ladder of load
//! multipliers and records throughput/latency curves per deployment
//! class — the "anycast absorbs, single-site collapses" acceptance run
//! recorded in `BENCH_campaign.json`.
//!
//! Two profiles:
//!
//! * `cargo run --release -p bench --bin load_sweep` — the full-population
//!   ladder whose numbers are recorded in `BENCH_campaign.json`;
//! * `-- --quick` — the CI smoke: a small roster and short ladder, plus a
//!   hard floor on loaded probe-generation throughput (the load model's
//!   per-attempt site pick must stay a handful of float ops, not a new
//!   hot-path cost) and the qualitative shape assertions.
//!
//! Shape assertions (both profiles):
//!
//! * across the sub-saturation ladder, the single-site class's p99/p999
//!   degrade monotonically (the deterministic queueing delay grows with
//!   offered load, and nothing sheds yet, so the success set is fixed);
//! * past saturation, single-site availability collapses (shedding);
//! * the production anycast class stays flat in p99 and availability
//!   across the whole ladder.

// Bench harness: real elapsed time is the measurement itself.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use measure::{Campaign, CampaignConfig, LoadModel};
use report::{LoadClass, LoadSweep};

/// CI floor on loaded probe generation in the quick profile, probes/sec
/// end-to-end (`run()`: generate + merge). The unloaded fast path clears
/// ~1e5 on the reference container; the load model adds a per-attempt
/// site pick (a few float ops per site over a precomputed table), which
/// measures within noise of unloaded. Tripping half that means the pick
/// grew a per-attempt allocation or re-derivation.
const QUICK_FLOOR_LOADED_PROBES_PER_SEC: f64 = 40_000.0;

/// Sub-saturation rungs: the hobbyist class's queueing delay grows
/// monotonically here while nothing sheds, so tail percentiles must be
/// non-decreasing rung to rung.
const SUB_SATURATION: [f64; 3] = [0.0, 1.0, 2.0];

/// Deep-overload rung: single-site frontends shed most offered load.
const OVERLOAD: f64 = 8.0;

fn roster(quick: bool) -> Vec<catalog::ResolverEntry> {
    if quick {
        [
            "dns.google",
            "dns.quad9.net",
            "doh.safesurfer.io",
            "doh.ffmuc.net",
            "doh.nl.ahadns.net",
        ]
        .into_iter()
        .map(|h| catalog::resolvers::find(h).expect("known host"))
        .collect()
    } else {
        catalog::resolvers::all()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 12 };
    let seed = 42;
    let entries = roster(quick);

    // Warm lazy statics outside the timed region.
    Campaign::with_resolvers(CampaignConfig::quick(seed, 1), entries.clone()).run();

    let mut sweep = LoadSweep::new();
    let mut points = Vec::new();
    let mut loaded_pps = f64::INFINITY;
    for &m in SUB_SATURATION.iter().chain(std::iter::once(&OVERLOAD)) {
        let mut config = CampaignConfig::quick(seed, rounds);
        if m > 0.0 {
            config = config.with_load(LoadModel::standard(seed).with_multiplier(m));
        }
        let campaign = Campaign::with_resolvers(config, entries.clone());
        let probes = campaign.probe_count() as f64;
        let t = Instant::now();
        let result = campaign.run();
        let elapsed = t.elapsed().as_secs_f64();
        let pps = probes / elapsed;
        if m > 0.0 {
            loaded_pps = loaded_pps.min(pps);
        }
        sweep.add_point(m, &entries, &result.records);
        points.push((m, probes as u64, elapsed, pps));
    }

    // ---- Shape assertions -------------------------------------------------
    let single: Vec<_> = sweep.class_rows(LoadClass::SingleSite);
    let prod: Vec<_> = sweep.class_rows(LoadClass::ProductionAnycast);
    assert_eq!(single.len(), SUB_SATURATION.len() + 1);

    // Monotone p99/p999 degradation below saturation for single-site.
    for w in single[..SUB_SATURATION.len()].windows(2) {
        let (a, b) = (w[0], w[1]);
        let (p99a, p99b) = (a.p99_ms.expect("p99"), b.p99_ms.expect("p99"));
        let (p999a, p999b) = (a.p999_ms.expect("p999"), b.p999_ms.expect("p999"));
        assert!(
            p99b >= p99a && p999b >= p999a,
            "single-site tails must degrade monotonically: \
             {}x p99 {p99a:.1} p999 {p999a:.1} -> {}x p99 {p99b:.1} p999 {p999b:.1}",
            a.multiplier,
            b.multiplier,
        );
    }
    // Past saturation the class sheds: availability collapses.
    let idle = single[0];
    let hot = single[single.len() - 1];
    assert!(
        hot.availability < idle.availability - 0.2,
        "overloaded single-site must shed: {:.2} -> {:.2}",
        idle.availability,
        hot.availability,
    );
    // Production anycast stays flat across the whole ladder.
    let prod_idle_p99 = prod[0].p99_ms.expect("p99");
    for r in &prod {
        let p99 = r.p99_ms.expect("p99");
        assert!(
            (p99 - prod_idle_p99).abs() < prod_idle_p99 * 0.05,
            "production p99 must stay flat: idle {prod_idle_p99:.1} vs {:.1} at {}x",
            p99,
            r.multiplier,
        );
        assert!(
            r.availability > idle.availability.min(0.95) - 0.02,
            "production availability must hold at {}x: {:.3}",
            r.multiplier,
            r.availability,
        );
    }

    // ---- Report -----------------------------------------------------------
    eprintln!("{}", sweep.render());
    let point_json: Vec<String> = points
        .iter()
        .map(|(m, probes, s, pps)| {
            format!(
                "{{\"multiplier\":{m},\"probes\":{probes},\"run_s\":{s:.3},\"probes_per_sec\":{pps:.0}}}"
            )
        })
        .collect();
    let row_json: Vec<String> = sweep
        .rows()
        .iter()
        .map(|r| {
            let ms = |v: Option<f64>| {
                v.map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "null".into())
            };
            format!(
                concat!(
                    "{{\"multiplier\":{},\"class\":\"{}\",\"probes\":{},",
                    "\"availability\":{:.4},\"p50_ms\":{},\"p99_ms\":{},\"p999_ms\":{}}}"
                ),
                r.multiplier,
                r.class.label(),
                r.probes,
                r.availability,
                ms(r.p50_ms),
                ms(r.p99_ms),
                ms(r.p999_ms),
            )
        })
        .collect();
    println!(
        "{{\"profile\":\"{}\",\"resolvers\":{},\"points\":[{}],\"classes\":[{}]}}",
        if quick { "quick" } else { "full" },
        entries.len(),
        point_json.join(","),
        row_json.join(","),
    );

    if quick && loaded_pps < QUICK_FLOOR_LOADED_PROBES_PER_SEC {
        eprintln!(
            "FAIL: loaded campaign throughput {loaded_pps:.0} probes/sec below floor {QUICK_FLOOR_LOADED_PROBES_PER_SEC:.0}"
        );
        std::process::exit(1);
    }
}
