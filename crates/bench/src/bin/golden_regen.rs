//! Regenerates the golden campaign fixtures under
//! `crates/measure/tests/golden/`. Run from the repo root after an
//! *intentional* output-format change:
//!
//! ```text
//! cargo run --release -p bench --bin golden_regen
//! ```
//!
//! The fixtures pin the JSONL byte format and the metrics snapshot render
//! for a fixed-seed campaign; `crates/measure/tests/golden_output.rs`
//! asserts the hot path reproduces them byte-for-byte. The metrics-export
//! fixtures under `crates/report/tests/golden/` pin the JSON and CSV
//! export formats the same way (`crates/report/tests/golden_metrics.rs`).

use measure::{metrics_of, Campaign, CampaignConfig, LoadModel, Protocol, SessionConfig};

fn entries() -> Vec<catalog::ResolverEntry> {
    [
        "dns.google",
        "dns.quad9.net",
        "doh.ffmuc.net",
        "chewbacca.meganerd.nl",
    ]
    .into_iter()
    .map(|h| catalog::resolvers::find(h).unwrap())
    .collect()
}

fn main() {
    let dir = std::path::Path::new("crates/measure/tests/golden");
    std::fs::create_dir_all(dir).unwrap();

    // Baseline: retries disabled, no fault plan. This fixture predates the
    // retry layer and must never change when retry/fault code does — the
    // disabled layer is byte-transparent. Regenerated under 4 worker
    // threads and asserted against the serial run, so a fixture can never
    // be written from a thread count that would change its bytes.
    let baseline = Campaign::with_resolvers(CampaignConfig::quick(4, 3), entries());
    let result = baseline.run();
    assert_eq!(
        result.records,
        baseline.run_parallel(4).records,
        "4-thread regeneration must be byte-identical to serial"
    );
    std::fs::write(dir.join("campaign_seed4.jsonl"), result.to_json_lines()).unwrap();
    std::fs::write(
        dir.join("campaign_seed4.metrics.txt"),
        result.metrics().render(),
    )
    .unwrap();
    eprintln!("wrote {} records", result.records.len());

    // Extended schema: the same campaign under dig-default retries and the
    // seeded fault plan, pinning the per-attempt accounting keys.
    let faulted_campaign =
        Campaign::with_resolvers(CampaignConfig::quick(4, 3).with_default_faults(), entries());
    let faulted = faulted_campaign.run();
    assert_eq!(
        faulted.records,
        faulted_campaign.run_parallel(4).records,
        "4-thread faulted regeneration must be byte-identical to serial"
    );
    std::fs::write(
        dir.join("campaign_seed4_retries.jsonl"),
        faulted.to_json_lines(),
    )
    .unwrap();
    std::fs::write(
        dir.join("campaign_seed4_retries.metrics.txt"),
        faulted.metrics().render(),
    )
    .unwrap();
    eprintln!("wrote {} faulted records", faulted.records.len());

    // Metrics exports: the same baseline campaign's snapshot as JSON and
    // CSV, pinning key order, quoting, and float formatting.
    let report_dir = std::path::Path::new("crates/report/tests/golden");
    std::fs::create_dir_all(report_dir).unwrap();
    let snapshot = metrics_of(&result.records);
    let mut json = report::metrics_json(&snapshot).to_string_compact();
    json.push('\n');
    std::fs::write(report_dir.join("metrics_seed4.json"), json).unwrap();
    std::fs::write(
        report_dir.join("metrics_seed4.csv"),
        report::metrics_csv(&snapshot).render(),
    )
    .unwrap();
    eprintln!("wrote metrics exports for {} cells", snapshot.cells.len());

    // Load-sweep table: the same roster at a load ladder, pinning the
    // per-(multiplier, class) tail-latency/availability rows and their
    // render. The 4-thread ≡ serial assertion extends to loaded configs:
    // the load model is a pure function of (model, pair, time), so thread
    // count must not move a single byte.
    let mut sweep = report::LoadSweep::new();
    for multiplier in [0.0, 2.0, 8.0] {
        let mut config = CampaignConfig::quick(4, 3);
        if multiplier > 0.0 {
            config = config.with_load(LoadModel::standard(4).with_multiplier(multiplier));
        }
        let campaign = Campaign::with_resolvers(config, entries());
        let loaded = campaign.run();
        assert_eq!(
            loaded.records,
            campaign.run_parallel(4).records,
            "4-thread loaded regeneration (x{multiplier}) must be byte-identical to serial"
        );
        sweep.add_point(multiplier, &entries(), &loaded.records);
    }
    std::fs::write(report_dir.join("load_sweep_seed4.txt"), sweep.render()).unwrap();
    eprintln!("wrote load sweep with {} rows", sweep.rows().len());

    // Reuse-ablation table: the same roster per connection-oriented
    // protocol under the interleaved session model, pinning the
    // per-(protocol, mode) rows. Session state is per-pair, so the
    // 4-thread ≡ serial assertion must keep holding with live pools.
    let mut ablation = report::ReuseAblation::new();
    for protocol in [Protocol::DoH, Protocol::DoT, Protocol::DoQ] {
        let mut config = CampaignConfig::quick(4, 3).with_session(SessionConfig::interleaved(0.3));
        config.probe.protocol = protocol;
        let campaign = Campaign::with_resolvers(config, entries());
        let warm = campaign.run();
        assert_eq!(
            warm.records,
            campaign.run_parallel(4).records,
            "4-thread session regeneration ({protocol:?}) must be byte-identical to serial"
        );
        ablation.add_campaign(&warm.records);
    }
    std::fs::write(
        report_dir.join("reuse_ablation_seed4.txt"),
        ablation.render(),
    )
    .unwrap();
    eprintln!("wrote reuse ablation with {} rows", ablation.rows().len());
}
