//! Regenerates the golden campaign fixtures under
//! `crates/measure/tests/golden/`. Run from the repo root after an
//! *intentional* output-format change:
//!
//! ```text
//! cargo run --release -p bench --bin golden_regen
//! ```
//!
//! The fixtures pin the JSONL byte format and the metrics snapshot render
//! for a fixed-seed campaign; `crates/measure/tests/golden_output.rs`
//! asserts the hot path reproduces them byte-for-byte.

use measure::{Campaign, CampaignConfig};

fn main() {
    let entries = [
        "dns.google",
        "dns.quad9.net",
        "doh.ffmuc.net",
        "chewbacca.meganerd.nl",
    ]
    .into_iter()
    .map(|h| catalog::resolvers::find(h).unwrap())
    .collect();
    let result = Campaign::with_resolvers(CampaignConfig::quick(4, 3), entries).run();
    let dir = std::path::Path::new("crates/measure/tests/golden");
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("campaign_seed4.jsonl"), result.to_json_lines()).unwrap();
    std::fs::write(
        dir.join("campaign_seed4.metrics.txt"),
        result.metrics().render(),
    )
    .unwrap();
    eprintln!("wrote {} records", result.records.len());
}
