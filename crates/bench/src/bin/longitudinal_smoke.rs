//! Longitudinal campaign smoke: runs a sharded, checkpointed multi-month
//! simulated campaign over the full resolver population and proves the
//! engine's memory stays O(shard) while JSONL streams to disk — the
//! property that makes multi-million-probe campaigns feasible.
//!
//! Two profiles:
//!
//! * `cargo run --release -p bench --bin longitudinal_smoke` — the full
//!   profile: 133 simulated days (>1M probes), 64 shards. The numbers
//!   recorded in `BENCH_campaign.json` at the repo root.
//! * `-- --quick` — the CI profile: 20 simulated days (~150k probes),
//!   16 shards, with a hard peak-RSS cap so an accumulation regression
//!   (anything re-growing a whole-campaign `Vec<ProbeRecord>`) fails the
//!   workflow loudly.
//!
//! Both profiles exercise a kill/resume: the run is stopped after a few
//! shards, resumed by a fresh runner, and the checkpointed shard count is
//! asserted. Prints one JSON object on stdout.

// Bench harness: real elapsed time is the measurement itself.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use measure::{Campaign, CampaignConfig, ShardedRunner};

/// Peak-RSS cap for the CI profile. The bounded-memory engine peaks well
/// under 200 MB on the reference container; holding every record of even
/// the quick-profile campaign in memory again would blow past this.
const QUICK_RSS_CAP_KB: u64 = 512 * 1024;

/// Peak RSS of this process in kB, from /proc/self/status (VmHWM).
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (days, shards, kill_after) = if quick {
        (20, 16u32, 3)
    } else {
        (133, 64u32, 8)
    };

    let config = CampaignConfig::longitudinal(42, days);
    let campaign = Campaign::new(config);
    let probes = campaign.probe_count() as u64;
    assert!(
        quick || probes >= 1_000_000,
        "full profile must simulate at least one million probes, got {probes}"
    );

    let dir = std::env::temp_dir().join(format!("edns-longitudinal-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // `--threads N` pins the worker count (the scaling CI step sweeps it);
    // the default tracks the host so local runs use every core.
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|n| n.parse().expect("--threads takes a worker count"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let t = Instant::now();
    // Phase 1: run a few shards, then drop the runner — the kill.
    let first = ShardedRunner::new(&campaign, shards, &dir).unwrap();
    let remaining = first.advance(kill_after).unwrap();
    assert_eq!(remaining, shards as usize - kill_after);
    drop(first);

    // Phase 2: a fresh runner resumes from the checkpoint directory and
    // finishes the campaign.
    let runner = ShardedRunner::new(&campaign, shards, &dir).unwrap();
    let outcome = runner.run(threads).unwrap();
    let elapsed = t.elapsed().as_secs_f64();

    assert_eq!(outcome.records, probes, "record count must match the plan");
    assert_eq!(
        outcome.run.shards_resumed.get(),
        kill_after as u64,
        "resume must adopt exactly the checkpointed shards"
    );
    let jsonl_bytes = std::fs::metadata(&outcome.jsonl_path).unwrap().len();
    let overall = outcome.aggregates.overall();
    let rss_kb = peak_rss_kb();
    if quick {
        assert!(
            rss_kb > 0 && rss_kb < QUICK_RSS_CAP_KB,
            "peak RSS {rss_kb} kB breaches the {QUICK_RSS_CAP_KB} kB bounded-memory cap"
        );
    }

    println!(
        concat!(
            "{{\"profile\":\"{}\",\"days\":{},\"shards\":{},\"threads\":{},",
            "\"probes\":{},\"resumed_shards\":{},\"jsonl_bytes\":{},",
            "\"elapsed_s\":{:.3},\"probes_per_sec\":{:.0},",
            "\"peak_rss_kb\":{},\"availability_pct\":{:.2},",
            "\"response_p50_ms\":{:.1},\"response_p95_ms\":{:.1}}}"
        ),
        if quick { "quick" } else { "full" },
        days,
        shards,
        threads,
        outcome.records,
        kill_after,
        jsonl_bytes,
        elapsed,
        outcome.records as f64 / elapsed,
        rss_kb,
        overall.availability.availability() * 100.0,
        overall.response.quantile(0.5).unwrap_or(0.0),
        overall.response.quantile(0.95).unwrap_or(0.0),
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
