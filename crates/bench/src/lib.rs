//! Shared helpers for the Criterion benches: canned campaigns and datasets
//! sized so each bench target regenerates its paper artifact in seconds.

#![forbid(unsafe_code)]

use measure::{Campaign, CampaignConfig};
use report::Dataset;

/// Resolvers that exercise every deployment class without probing all 76.
pub const BENCH_MIX: [&str; 12] = [
    "dns.google",
    "dns.quad9.net",
    "security.cloudflare-dns.com",
    "ordns.he.net",
    "freedns.controld.com",
    "dns.brahma.world",
    "dns0.eu",
    "doh.ffmuc.net",
    "dns.alidns.com",
    "dns.twnic.tw",
    "antivirus.bebasid.com",
    "chewbacca.meganerd.nl",
];

/// A campaign over a named subset at the given rounds-per-day.
pub fn campaign(seed: u64, rounds: u32, hostnames: &[&str]) -> Campaign {
    let entries = hostnames
        .iter()
        .filter_map(|h| catalog::resolvers::find(h))
        .collect();
    Campaign::with_resolvers(CampaignConfig::quick(seed, rounds), entries)
}

/// A campaign over the full population.
pub fn full_campaign(seed: u64, rounds: u32) -> Campaign {
    Campaign::new(CampaignConfig::quick(seed, rounds))
}

/// Runs a campaign into an analysable dataset.
pub fn dataset(seed: u64, rounds: u32, hostnames: &[&str]) -> Dataset {
    Dataset::new(campaign(seed, rounds, hostnames).run().records)
}

/// The regional populations each figure plots (region + mainstream refs).
pub fn region_hosts(region: netsim::Region) -> Vec<&'static str> {
    catalog::resolvers::all()
        .into_iter()
        .filter(|e| e.region() == region || e.mainstream)
        .map(|e| e.hostname)
        .collect()
}
