//! # edns-bench
//!
//! Top-level crate of the reproduction of *"Global Measurements of the
//! Availability and Response Times of Public Encrypted DNS Resolvers"*
//! (Sharma & Feamster, IMC 2025 poster; arXiv:2208.04999).
//!
//! The paper measures 90+ public DoH resolvers from seven vantage points
//! (four Chicago home networks; EC2 Ohio, Frankfurt, Seoul). This workspace
//! rebuilds the entire stack against a deterministic network simulator:
//!
//! * [`dns_wire`] — RFC 1035 wire codec, EDNS(0), base64url;
//! * [`netsim`] — geographic latency, anycast routing, loss, ICMP;
//! * [`transport`] — TCP, TLS 1.3, HTTP/2 (+HPACK), QUIC state machines;
//! * [`resolver_sim`] — recursive resolvers, caches, authority hierarchy;
//! * [`catalog`] — the measured resolver population with deployment
//!   profiles; Table 1's browser matrix; DNS stamps;
//! * [`measure`] — the paper's measurement tool (probe engine, campaign
//!   scheduler, JSON results);
//! * [`edns_stats`] / [`report`] — statistics and every table/figure.
//!
//! ## One-call reproduction
//!
//! ```
//! use edns_bench::{Reproduction, Scale};
//!
//! let repro = Reproduction::run_subset(
//!     42,
//!     Scale::Quick,
//!     &["dns.google", "ordns.he.net", "doh.ffmuc.net"],
//! );
//! let availability = repro.availability();
//! assert!(availability.successes > 0);
//! println!("{}", repro.table1());
//! ```
//!
//! Run `Reproduction::run(seed, Scale::Paper)` for the full multi-month
//! campaign (~620k probes), then `render_all` to regenerate every figure
//! and table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;

pub use experiment::{available_threads, Reproduction, Scale};

// Re-export the component crates so downstream users need a single
// dependency.
pub use catalog;
pub use distribute;
pub use dns_wire;
pub use edns_stats;
pub use measure;
pub use netsim;
pub use obs;
pub use report;
pub use resolver_sim;
pub use transport;
pub use webperf;
