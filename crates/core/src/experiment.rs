//! The one-call reproduction API: run the campaign at a chosen scale, then
//! regenerate any of the paper's artifacts from it.

use measure::{Campaign, CampaignConfig, CampaignResult};
use netsim::Region;
use report::experiments::{availability, figures, headline, table1, tables23};
use report::{Dataset, FigurePanel};

/// How much measurement to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few rounds per vantage — seconds of wall-clock; for tests.
    Quick,
    /// A day-scale campaign — good statistics in tens of seconds.
    Standard,
    /// The paper's full multi-month schedule (~620k probes).
    Paper,
}

impl Scale {
    /// Builds the campaign configuration for this scale.
    pub fn config(self, seed: u64) -> CampaignConfig {
        match self {
            Scale::Quick => CampaignConfig::quick(seed, 4),
            Scale::Standard => CampaignConfig::quick(seed, 24),
            Scale::Paper => CampaignConfig::paper(seed),
        }
    }
}

/// A completed reproduction: campaign output plus accessors for every paper
/// artifact.
#[derive(Debug)]
pub struct Reproduction {
    /// The analysed dataset.
    pub dataset: Dataset,
    /// The master seed used.
    pub seed: u64,
}

impl Reproduction {
    /// Runs the full-population campaign at `scale` across worker threads.
    pub fn run(seed: u64, scale: Scale) -> Self {
        Self::run_with_threads(seed, scale, available_threads())
    }

    /// Runs with an explicit worker-thread count (1 = serial).
    pub fn run_with_threads(seed: u64, scale: Scale, threads: usize) -> Self {
        let campaign = Campaign::new(scale.config(seed));
        let result = if threads <= 1 {
            campaign.run()
        } else {
            campaign.run_parallel(threads)
        };
        Self::from_result(result)
    }

    /// Runs over a resolver subset (for focused experiments).
    pub fn run_subset(seed: u64, scale: Scale, hostnames: &[&str]) -> Self {
        let entries = hostnames
            .iter()
            .filter_map(|h| catalog::resolvers::find(h))
            .collect();
        let result = Campaign::with_resolvers(scale.config(seed), entries).run();
        Self::from_result(result)
    }

    /// Wraps existing campaign output.
    pub fn from_result(result: CampaignResult) -> Self {
        Reproduction {
            seed: result.seed,
            dataset: Dataset::new(result.records),
        }
    }

    /// Total probes.
    pub fn probe_count(&self) -> usize {
        self.dataset.records.len()
    }

    /// Table 1 (static — browser matrix).
    pub fn table1(&self) -> String {
        table1::render()
    }

    /// The §4 availability analysis.
    pub fn availability(&self) -> availability::AvailabilityReport {
        availability::run(&self.dataset)
    }

    /// Figure 1: North-America resolvers from Ohio.
    pub fn figure1(&self) -> FigurePanel {
        figures::figure1(&self.dataset)
    }

    /// Figures 2–4: four panels for a region.
    pub fn figure(&self, region: Region) -> Vec<FigurePanel> {
        figures::figure(&self.dataset, region)
    }

    /// Table 2 rows (Asia, Seoul vs Frankfurt).
    pub fn table2(&self) -> Vec<tables23::GapRow> {
        tables23::table2(&self.dataset)
    }

    /// Table 3 rows (Europe, Frankfurt vs Seoul).
    pub fn table3(&self) -> Vec<tables23::GapRow> {
        tables23::table3(&self.dataset)
    }

    /// The §4 headline findings.
    pub fn headline(&self) -> headline::Findings {
        headline::run(&self.dataset)
    }

    /// The resolver × vantage × protocol metrics snapshot: counters, error
    /// tallies, and response / ping / per-phase latency histograms. Built
    /// from the canonically ordered records, so two same-seed reproductions
    /// snapshot identically.
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        measure::metrics_of(&self.dataset.records)
    }

    /// Temporal drift between the paper's EC2 measurement windows (the main
    /// Sep–Oct 2023 span and the Feb/Mar/Apr 2024 follow-ups). Meaningful
    /// for [`Scale::Paper`] campaigns, whose schedule contains those spans.
    pub fn drift_report(&self) -> String {
        use report::experiments::drift;
        use report::VantageGroup;
        // Window boundaries in days since the campaign epoch (2023-06-22):
        // EC2 main span day 89, follow-ups at days 231, 264 and 295.
        const WINDOWS: [u64; 4] = [89, 231, 264, 295];
        let mut out = String::new();
        for v in ["ec2-ohio", "ec2-frankfurt", "ec2-seoul"] {
            out.push_str(&drift::render(
                &self.dataset,
                &VantageGroup::Label(v),
                &WINDOWS,
                0.30,
            ));
            out.push('\n');
        }
        out
    }

    /// Renders every artifact into one report document.
    pub fn render_all(&self, figure_width: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.table1());
        out.push('\n');
        out.push_str(&availability::render(&self.dataset));
        out.push('\n');
        out.push_str("Figure 1:\n");
        out.push_str(&self.figure1().render(figure_width));
        for (label, region) in [
            ("Figure 2 (North America)", Region::NorthAmerica),
            ("Figure 3 (Europe)", Region::Europe),
            ("Figure 4 (Asia)", Region::Asia),
        ] {
            out.push_str(&format!("\n{label}:\n"));
            out.push_str(&figures::render(&self.dataset, region, figure_width));
        }
        out.push('\n');
        out.push_str(&tables23::render_table2(&self.dataset));
        out.push('\n');
        out.push_str(&tables23::render_table3(&self.dataset));
        out.push('\n');
        out.push_str(&headline::render(&self.dataset));
        out
    }
}

/// A sensible worker count for the current machine.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_reproduction_over_subset() {
        let r = Reproduction::run_subset(
            3,
            Scale::Quick,
            &["dns.google", "doh.ffmuc.net", "dns.alidns.com"],
        );
        // 7 vantages × 3 resolvers × 4 rounds × 3 domains.
        assert_eq!(r.probe_count(), 7 * 3 * 4 * 3);
        let av = r.availability();
        assert!(av.successes > 0);
        let metrics = r.metrics();
        assert_eq!(metrics.total_probes() as usize, r.probe_count());
        assert_eq!(metrics.cells.len(), 7 * 3);
    }

    #[test]
    fn scales_order_by_size() {
        let q = Scale::Quick.config(1).probe_count(76);
        let s = Scale::Standard.config(1).probe_count(76);
        let p = Scale::Paper.config(1).probe_count(76);
        assert!(q < s && s < p, "{q} {s} {p}");
    }

    #[test]
    fn render_all_produces_every_artifact() {
        let r = Reproduction::run_subset(
            5,
            Scale::Quick,
            &[
                "dns.google",
                "dns.quad9.net",
                "dns.cloudflare.com",
                "ordns.he.net",
                "doh.ffmuc.net",
                "dns0.eu",
                "open.dns0.eu",
                "kids.dns0.eu",
                "dns.njal.la",
                "antivirus.bebasid.com",
                "dns.twnic.tw",
                "dnslow.me",
                "jp.tiar.app",
                "public.dns.iij.jp",
            ],
        );
        let doc = r.render_all(60);
        for needle in [
            "Table 1", "Figure 1", "Figure 3", "Table 2", "Table 3", "Headline",
        ] {
            assert!(doc.contains(needle), "missing {needle}");
        }
    }
}
