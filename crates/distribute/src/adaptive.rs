//! Measurement-informed resolver selection: an ε-greedy bandit that learns
//! which resolvers perform well from this vantage point and concentrates
//! traffic on them — the paper's conclusion ("users need easy ways of
//! finding and selecting these alternatives") as an algorithm.

use edns_stats::RunningMoments;
use netsim::SimRng;

/// Per-resolver online state.
#[derive(Debug, Default, Clone)]
struct Arm {
    latency: RunningMoments,
    failures: u64,
}

impl Arm {
    /// Score: mean latency with a heavy penalty per observed failure share.
    fn score(&self) -> f64 {
        let mean = self.latency.mean().unwrap_or(f64::INFINITY);
        let total = self.latency.count() + self.failures;
        if total == 0 {
            return f64::INFINITY;
        }
        let failure_rate = self.failures as f64 / total as f64;
        mean + 2_000.0 * failure_rate
    }
}

/// An ε-greedy selector over a fixed resolver set.
#[derive(Debug)]
pub struct AdaptiveSelector {
    arms: Vec<Arm>,
    epsilon: f64,
    observations: u64,
}

impl AdaptiveSelector {
    /// Creates a selector for `n` resolvers exploring with probability
    /// `epsilon`.
    pub fn new(n: usize, epsilon: f64) -> Self {
        assert!(n > 0, "need at least one resolver");
        AdaptiveSelector {
            arms: vec![Arm::default(); n],
            epsilon: epsilon.clamp(0.0, 1.0),
            observations: 0,
        }
    }

    /// Picks the next resolver: explore with probability ε (or while any
    /// arm is unobserved), otherwise exploit the best score.
    pub fn pick(&self, rng: &mut SimRng) -> usize {
        if let Some(unseen) = self
            .arms
            .iter()
            .position(|a| a.latency.count() + a.failures == 0)
        {
            return unseen;
        }
        if rng.chance(self.epsilon) {
            return rng.below(self.arms.len());
        }
        self.arms
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.score().total_cmp(&b.1.score()))
            .map(|(i, _)| i)
            // detlint:allow(unwrap, constructor asserts at least one arm)
            .expect("non-empty arms")
    }

    /// Records a successful probe's latency.
    pub fn observe_success(&mut self, resolver: usize, latency_ms: f64) {
        self.arms[resolver].latency.observe(latency_ms);
        self.observations += 1;
    }

    /// Records a failed probe.
    pub fn observe_failure(&mut self, resolver: usize) {
        self.arms[resolver].failures += 1;
        self.observations += 1;
    }

    /// Total observations.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The currently best resolver index (exploit choice).
    pub fn best(&self) -> usize {
        self.arms
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.score().total_cmp(&b.1.score()))
            .map(|(i, _)| i)
            // detlint:allow(unwrap, constructor asserts at least one arm)
            .expect("non-empty arms")
    }

    /// Mean observed latency per arm (None while unobserved).
    pub fn arm_means(&self) -> Vec<Option<f64>> {
        self.arms.iter().map(|a| a.latency.mean()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic environment: arm latencies with deterministic noise.
    fn env_latency(arm: usize, step: u64) -> f64 {
        let base = [20.0, 150.0, 45.0, 300.0][arm];
        base + ((step * 7919 + arm as u64 * 104729) % 100) as f64 / 25.0
    }

    #[test]
    fn converges_on_the_fastest_arm() {
        let mut sel = AdaptiveSelector::new(4, 0.1);
        let mut rng = SimRng::from_seed(1);
        let mut picks = [0usize; 4];
        for step in 0..500 {
            let arm = sel.pick(&mut rng);
            picks[arm] += 1;
            sel.observe_success(arm, env_latency(arm, step));
        }
        assert_eq!(sel.best(), 0);
        // Exploitation dominates: the best arm gets most traffic.
        assert!(picks[0] > 300, "best arm should dominate picks: {picks:?}");
        // ...but exploration never stops entirely.
        assert!(picks.iter().all(|&p| p > 5), "{picks:?}");
    }

    #[test]
    fn failures_disqualify_a_fast_but_flaky_arm() {
        let mut sel = AdaptiveSelector::new(2, 0.05);
        let mut rng = SimRng::from_seed(2);
        for step in 0..300 {
            let arm = sel.pick(&mut rng);
            if arm == 0 {
                // Arm 0: 10 ms but fails 40% of the time.
                if step % 5 < 2 {
                    sel.observe_failure(0);
                } else {
                    sel.observe_success(0, 10.0);
                }
            } else {
                // Arm 1: steady 60 ms, never fails.
                sel.observe_success(1, 60.0);
            }
        }
        assert_eq!(sel.best(), 1, "reliability should beat raw speed");
    }

    #[test]
    fn every_arm_sampled_before_exploitation() {
        let mut sel = AdaptiveSelector::new(5, 0.0);
        let mut rng = SimRng::from_seed(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            let arm = sel.pick(&mut rng);
            seen.insert(arm);
            sel.observe_success(arm, 10.0 + arm as f64);
        }
        assert_eq!(seen.len(), 5, "initial sweep covers every arm");
        // With epsilon 0, it then always exploits the best.
        for _ in 0..20 {
            assert_eq!(sel.pick(&mut rng), 0);
        }
    }

    #[test]
    fn arm_means_report_observations() {
        let mut sel = AdaptiveSelector::new(2, 0.1);
        sel.observe_success(1, 42.0);
        let means = sel.arm_means();
        assert_eq!(means[0], None);
        assert_eq!(means[1], Some(42.0));
        assert_eq!(sel.observations(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one resolver")]
    fn empty_selector_rejected() {
        AdaptiveSelector::new(0, 0.1);
    }
}
