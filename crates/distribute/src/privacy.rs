//! Privacy metrics for query distribution: how much of the user's query
//! stream — and of their *domain profile* — each resolver gets to see.

use std::collections::{BTreeMap, HashSet};

use dns_wire::Name;

/// What each resolver observed over a session.
#[derive(Debug, Clone, Default)]
pub struct Exposure {
    /// Queries seen per resolver index.
    pub query_counts: BTreeMap<usize, u64>,
    /// Distinct domains seen per resolver index.
    pub domains_seen: BTreeMap<usize, HashSet<Name>>,
    /// Total queries issued.
    pub total_queries: u64,
    /// Total distinct domains queried.
    pub total_domains: usize,
}

impl Exposure {
    /// Records that `resolver` saw a query for `domain`.
    pub fn record(&mut self, resolver: usize, domain: &Name) {
        *self.query_counts.entry(resolver).or_insert(0) += 1;
        self.domains_seen
            .entry(resolver)
            .or_default()
            .insert(domain.clone());
    }

    /// Finalises totals (call once after the session).
    pub fn finish(&mut self, total_queries: u64, total_domains: usize) {
        self.total_queries = total_queries;
        self.total_domains = total_domains;
    }

    /// The largest share of the query stream any single resolver saw —
    /// 1.0 for the browser-default single-resolver setup.
    pub fn max_query_share(&self) -> f64 {
        if self.total_queries == 0 {
            return 0.0;
        }
        self.query_counts
            .values()
            .map(|&c| c as f64 / self.total_queries as f64)
            .fold(0.0, f64::max)
    }

    /// The largest fraction of the user's *domain profile* any single
    /// resolver can reconstruct — K-resolver's metric of interest.
    pub fn max_profile_coverage(&self) -> f64 {
        if self.total_domains == 0 {
            return 0.0;
        }
        self.domains_seen
            .values()
            .map(|s| s.len() as f64 / self.total_domains as f64)
            .fold(0.0, f64::max)
    }

    /// Shannon entropy of the query distribution over resolvers, in bits.
    /// log2(n) for a perfectly uniform spread over n resolvers; 0 when one
    /// resolver sees everything.
    pub fn entropy_bits(&self) -> f64 {
        if self.total_queries == 0 {
            return 0.0;
        }
        let total = self.total_queries as f64;
        let h = -self
            .query_counts
            .values()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                p * p.log2()
            })
            .sum::<f64>();
        // Avoid the cosmetic -0.0 of the single-resolver case.
        h.max(0.0)
    }

    /// Number of resolvers that saw at least one query.
    pub fn resolvers_used(&self) -> usize {
        self.query_counts.values().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn record_n(e: &mut Exposure, resolver: usize, domain: &str, count: u64) {
        for _ in 0..count {
            e.record(resolver, &n(domain));
        }
    }

    #[test]
    fn single_resolver_has_zero_entropy_full_share() {
        let mut e = Exposure::default();
        record_n(&mut e, 0, "a.com", 5);
        record_n(&mut e, 0, "b.com", 5);
        e.finish(10, 2);
        assert_eq!(e.max_query_share(), 1.0);
        assert_eq!(e.max_profile_coverage(), 1.0);
        assert_eq!(e.entropy_bits(), 0.0);
        assert_eq!(e.resolvers_used(), 1);
    }

    #[test]
    fn uniform_split_has_log2_entropy() {
        let mut e = Exposure::default();
        for r in 0..4 {
            record_n(&mut e, r, &format!("d{r}.com"), 25);
        }
        e.finish(100, 4);
        assert!((e.entropy_bits() - 2.0).abs() < 1e-9);
        assert!((e.max_query_share() - 0.25).abs() < 1e-9);
        assert!((e.max_profile_coverage() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn racing_exposes_full_profile_despite_spread_queries() {
        // Race-2 over 2 resolvers: both see every domain.
        let mut e = Exposure::default();
        for d in ["a.com", "b.com", "c.com"] {
            record_n(&mut e, 0, d, 1);
            record_n(&mut e, 1, d, 1);
        }
        e.finish(6, 3);
        assert!((e.max_query_share() - 0.5).abs() < 1e-9);
        assert_eq!(e.max_profile_coverage(), 1.0, "racing leaks everything");
    }

    #[test]
    fn sharding_caps_profile_coverage() {
        // Hash-sharded: resolver 0 sees {a}, resolver 1 sees {b, c}.
        let mut e = Exposure::default();
        record_n(&mut e, 0, "a.com", 10);
        record_n(&mut e, 1, "b.com", 5);
        record_n(&mut e, 1, "c.com", 5);
        e.finish(20, 3);
        assert!((e.max_profile_coverage() - 2.0 / 3.0).abs() < 1e-9);
        assert!(e.entropy_bits() > 0.9);
    }

    #[test]
    fn empty_exposure_is_safe() {
        let e = Exposure::default();
        assert_eq!(e.max_query_share(), 0.0);
        assert_eq!(e.max_profile_coverage(), 0.0);
        assert_eq!(e.entropy_bits(), 0.0);
    }
}
