//! A distribution session: run a query workload through a strategy against
//! real (simulated) resolvers, collecting latency and exposure.

use dns_wire::Name;
use measure::{ProbeConfig, ProbeTarget, Prober};
use netsim::{Host, SimDuration, SimRng, SimTime};

use crate::privacy::Exposure;
use crate::strategy::Strategy;
use crate::workload::Workload;

/// The result of running one strategy over a workload.
#[derive(Debug)]
pub struct SessionResult {
    /// Strategy name.
    pub strategy: String,
    /// Response time of each answered query, ms (races count the fastest).
    pub latencies_ms: Vec<f64>,
    /// Queries with no successful answer.
    pub failures: u64,
    /// Who saw what.
    pub exposure: Exposure,
}

impl SessionResult {
    /// Median answered latency.
    pub fn median_ms(&self) -> Option<f64> {
        edns_stats::median(&self.latencies_ms)
    }

    /// 95th percentile latency.
    pub fn p95_ms(&self) -> Option<f64> {
        edns_stats::quantile(&self.latencies_ms, 0.95)
    }

    /// Fraction of queries answered.
    pub fn success_rate(&self) -> f64 {
        let total = self.latencies_ms.len() as u64 + self.failures;
        if total == 0 {
            0.0
        } else {
            self.latencies_ms.len() as f64 / total as f64
        }
    }
}

/// Runs workloads through strategies against a fixed resolver set.
pub struct Session<'a> {
    prober: Prober,
    client: &'a Host,
    is_home: bool,
    targets: Vec<ProbeTarget>,
}

impl<'a> Session<'a> {
    /// Builds a session for `client` against the named resolvers.
    pub fn new(client: &'a Host, is_home: bool, hostnames: &[&str]) -> Self {
        let targets = hostnames
            .iter()
            .map(|h| {
                ProbeTarget::from_entry(
                    // detlint:allow(unwrap, resolver hostnames come from the static catalog; a typo is a programming error)
                    catalog::resolvers::find(h).unwrap_or_else(|| panic!("unknown resolver {h}")),
                )
            })
            .collect();
        Session {
            prober: Prober::new(),
            client,
            is_home,
            targets,
        }
    }

    /// Number of resolvers in the set.
    pub fn resolver_count(&self) -> usize {
        self.targets.len()
    }

    /// Hostname of resolver `i`.
    pub fn hostname(&self, i: usize) -> &str {
        self.targets[i].entry.hostname
    }

    /// Runs `queries` workload samples through `strategy`.
    pub fn run(
        &mut self,
        strategy: &Strategy,
        workload: &Workload,
        queries: usize,
        seed: u64,
    ) -> SessionResult {
        let mut rng = SimRng::derived(seed, &format!("session:{}", strategy.name()));
        let mut exposure = Exposure::default();
        let mut latencies = Vec::new();
        let mut failures = 0u64;
        let n = self.targets.len();
        let cfg = ProbeConfig::default();

        let mut seen_domains = std::collections::HashSet::new();
        for seq in 0..queries {
            let domain: Name = workload.sample(&mut rng).clone();
            seen_domains.insert(domain.clone());
            let picks = strategy.choose(&domain, seq as u64, n, &mut rng);
            // Space queries ~30 s apart in simulated time.
            let now = SimTime::from_nanos(seq as u64 * 30_000_000_000);
            let mut best: Option<SimDuration> = None;
            for &i in &picks {
                exposure.record(i, &domain);
                let (outcome, _) = self.prober.probe(
                    self.client,
                    &mut self.targets[i],
                    &domain,
                    now,
                    self.is_home,
                    cfg,
                    &mut rng,
                );
                if let Some(rt) = outcome.response_time() {
                    best = Some(match best {
                        Some(b) if b <= rt => b,
                        _ => rt,
                    });
                }
            }
            match best {
                Some(rt) => latencies.push(rt.as_millis_f64()),
                None => failures += 1,
            }
        }
        exposure.finish(queries as u64, seen_domains.len());
        SessionResult {
            strategy: strategy.name(),
            latencies_ms: latencies,
            failures,
            exposure,
        }
    }

    /// Runs the workload through an ε-greedy [`AdaptiveSelector`]: each
    /// query goes to one resolver chosen by learned latency/reliability.
    pub fn run_adaptive(
        &mut self,
        epsilon: f64,
        workload: &Workload,
        queries: usize,
        seed: u64,
    ) -> SessionResult {
        use crate::adaptive::AdaptiveSelector;

        let mut rng = SimRng::derived(seed, "session:adaptive");
        let mut selector = AdaptiveSelector::new(self.targets.len(), epsilon);
        let mut exposure = Exposure::default();
        let mut latencies = Vec::new();
        let mut failures = 0u64;
        let cfg = ProbeConfig::default();
        let mut seen_domains = std::collections::HashSet::new();
        for seq in 0..queries {
            let domain: Name = workload.sample(&mut rng).clone();
            seen_domains.insert(domain.clone());
            let i = selector.pick(&mut rng);
            exposure.record(i, &domain);
            let now = SimTime::from_nanos(seq as u64 * 30_000_000_000);
            let (outcome, _) = self.prober.probe(
                self.client,
                &mut self.targets[i],
                &domain,
                now,
                self.is_home,
                cfg,
                &mut rng,
            );
            match outcome.response_time() {
                Some(rt) => {
                    let ms = rt.as_millis_f64();
                    selector.observe_success(i, ms);
                    latencies.push(ms);
                }
                None => {
                    selector.observe_failure(i);
                    failures += 1;
                }
            }
        }
        exposure.finish(queries as u64, seen_domains.len());
        SessionResult {
            strategy: format!("adaptive(eps={epsilon})"),
            latencies_ms: latencies,
            failures,
            exposure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;
    use netsim::{AccessProfile, HostId};

    const SET: [&str; 4] = [
        "dns.google",
        "dns.quad9.net",
        "security.cloudflare-dns.com",
        "ordns.he.net",
    ];

    fn client() -> Host {
        Host::in_city(
            HostId(0),
            "c",
            cities::COLUMBUS_OH,
            AccessProfile::cloud_vm(),
        )
    }

    #[test]
    fn single_exposes_everything_to_one_resolver() {
        let c = client();
        let mut s = Session::new(&c, false, &SET);
        let w = Workload::zipf(30, 1.0);
        let r = s.run(&Strategy::Single(0), &w, 60, 1);
        assert!(r.success_rate() > 0.9);
        assert_eq!(r.exposure.resolvers_used(), 1);
        assert_eq!(r.exposure.max_profile_coverage(), 1.0);
    }

    #[test]
    fn sharding_reduces_profile_coverage() {
        let c = client();
        let mut s = Session::new(&c, false, &SET);
        let w = Workload::zipf(40, 1.0);
        let sharded = s.run(&Strategy::HashByDomain, &w, 120, 2);
        assert!(sharded.exposure.resolvers_used() >= 3);
        assert!(
            sharded.exposure.max_profile_coverage() < 0.7,
            "coverage {}",
            sharded.exposure.max_profile_coverage()
        );
        // But every query still answered by exactly one resolver.
        assert!((0.9..=1.0).contains(&sharded.success_rate()));
    }

    #[test]
    fn race_is_fastest_but_leaks_most() {
        let c = client();
        let mut s = Session::new(&c, false, &SET);
        let w = Workload::zipf(20, 1.0);
        let single = s.run(&Strategy::Single(0), &w, 80, 3);
        let mut s2 = Session::new(&c, false, &SET);
        let race = s2.run(&Strategy::Race(3), &w, 80, 3);
        assert!(
            race.median_ms().unwrap() <= single.median_ms().unwrap() + 1.0,
            "race {}, single {}",
            race.median_ms().unwrap(),
            single.median_ms().unwrap()
        );
        // Race-3 of 4 resolvers: each resolver sees ~3/4 of all queries, so
        // someone reconstructs almost the whole domain profile.
        assert!(
            race.exposure.max_profile_coverage() > 0.85,
            "coverage {}",
            race.exposure.max_profile_coverage()
        );
        assert!(race.exposure.resolvers_used() == 4);
    }

    #[test]
    fn round_robin_spreads_queries_evenly() {
        let c = client();
        let mut s = Session::new(&c, false, &SET);
        let w = Workload::zipf(10, 1.0);
        let r = s.run(&Strategy::RoundRobin, &w, 100, 4);
        assert_eq!(r.exposure.resolvers_used(), 4);
        assert!(r.exposure.max_query_share() < 0.30);
        assert!(r.exposure.entropy_bits() > 1.9);
    }

    #[test]
    fn adaptive_learns_to_avoid_remote_resolvers() {
        // A naive set with two far-away unicast resolvers: round-robin pays
        // for them on 2/5 of queries; the bandit learns to avoid them.
        let naive_set = [
            "dns.quad9.net",
            "doh.ffmuc.net",   // Munich, far from Ohio
            "dns.bebasid.com", // Indonesia, very far
            "dns.google",
            "ordns.he.net",
        ];
        let c = client();
        let w = Workload::zipf(30, 1.0);
        let mut s1 = Session::new(&c, false, &naive_set);
        let rr = s1.run(&Strategy::RoundRobin, &w, 150, 5);
        let mut s2 = Session::new(&c, false, &naive_set);
        let adaptive = s2.run_adaptive(0.05, &w, 150, 5);
        // Compare p95: round-robin's tail is dominated by the remote
        // resolvers; adaptive's is not.
        let rr_p95 = rr.p95_ms().unwrap();
        let ad_p95 = adaptive.p95_ms().unwrap();
        assert!(
            ad_p95 < rr_p95 / 3.0,
            "adaptive p95 {ad_p95:.0} vs round-robin {rr_p95:.0}"
        );
        // The exploitation concentrates on fast NA resolvers.
        assert!(adaptive.exposure.max_query_share() > 0.5);
    }

    #[test]
    fn sessions_are_deterministic() {
        let c = client();
        let w = Workload::zipf(15, 1.0);
        let mut s1 = Session::new(&c, false, &SET);
        let r1 = s1.run(&Strategy::UniformRandom, &w, 50, 7);
        let mut s2 = Session::new(&c, false, &SET);
        let r2 = s2.run(&Strategy::UniformRandom, &w, 50, 7);
        assert_eq!(r1.latencies_ms, r2.latencies_ms);
        assert_eq!(r1.exposure.query_counts, r2.exposure.query_counts);
    }
}
