//! Query-distribution strategies: how a client spreads its DNS queries
//! across a set of resolvers (Hoang et al.'s K-resolver; Hounsel et al.'s
//! distribution-strategy study).

use dns_wire::Name;
use netsim::SimRng;

/// A strategy for choosing which resolver(s) receive each query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Always the single resolver at the given index (the browser-default
    /// baseline: one provider sees everything).
    Single(usize),
    /// Rotate through resolvers query by query.
    RoundRobin,
    /// Pick uniformly at random per query.
    UniformRandom,
    /// Shard by domain: the same domain always goes to the same resolver
    /// (K-resolver's core idea — each resolver learns only a subset of the
    /// *domains*, not a thinner slice of everything).
    HashByDomain,
    /// Send each query to `k` resolvers at once and take the fastest
    /// answer (latency-optimal, privacy-worst).
    Race(usize),
}

impl Strategy {
    /// Human-readable name.
    pub fn name(&self) -> String {
        match self {
            Strategy::Single(i) => format!("single[{i}]"),
            Strategy::RoundRobin => "round-robin".into(),
            Strategy::UniformRandom => "uniform-random".into(),
            Strategy::HashByDomain => "hash-by-domain".into(),
            Strategy::Race(k) => format!("race-{k}"),
        }
    }

    /// The resolver indices (out of `n`) that receive query number `seq`
    /// for `domain`.
    pub fn choose(&self, domain: &Name, seq: u64, n: usize, rng: &mut SimRng) -> Vec<usize> {
        assert!(n > 0, "need at least one resolver");
        match self {
            Strategy::Single(i) => vec![*i % n],
            Strategy::RoundRobin => vec![(seq as usize) % n],
            Strategy::UniformRandom => vec![rng.below(n)],
            Strategy::HashByDomain => {
                // FNV-1a over the canonical (lowercased) name.
                let mut h: u64 = 0xCBF29CE484222325;
                for b in domain.canonical_key().bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001B3);
                }
                vec![(h % n as u64) as usize]
            }
            Strategy::Race(k) => {
                // The k distinct resolvers with the lowest rotation offset.
                let k = (*k).clamp(1, n);
                let start = rng.below(n);
                (0..k).map(|i| (start + i) % n).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn single_always_picks_the_same() {
        let s = Strategy::Single(2);
        let mut rng = SimRng::from_seed(1);
        for seq in 0..20 {
            assert_eq!(s.choose(&name("a.com"), seq, 5, &mut rng), vec![2]);
        }
        // Index wraps if out of range.
        assert_eq!(s.choose(&name("a.com"), 0, 2, &mut rng), vec![0]);
    }

    #[test]
    fn round_robin_cycles() {
        let s = Strategy::RoundRobin;
        let mut rng = SimRng::from_seed(1);
        let picks: Vec<usize> = (0..6)
            .map(|seq| s.choose(&name("a.com"), seq, 3, &mut rng)[0])
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hash_by_domain_is_sticky_and_spreads() {
        let s = Strategy::HashByDomain;
        let mut rng = SimRng::from_seed(1);
        let a1 = s.choose(&name("alpha.com"), 0, 4, &mut rng);
        let a2 = s.choose(&name("ALPHA.com"), 99, 4, &mut rng);
        assert_eq!(a1, a2, "same domain (case-insensitive) → same resolver");
        // Across many domains the shards are all used.
        let mut used = std::collections::HashSet::new();
        for i in 0..50 {
            used.insert(s.choose(&name(&format!("d{i}.com")), 0, 4, &mut rng)[0]);
        }
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn race_returns_k_distinct() {
        let s = Strategy::Race(3);
        let mut rng = SimRng::from_seed(1);
        let picks = s.choose(&name("a.com"), 0, 5, &mut rng);
        assert_eq!(picks.len(), 3);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 3, "distinct resolvers");
        // k clamps to n.
        assert_eq!(
            Strategy::Race(9)
                .choose(&name("a.com"), 0, 4, &mut rng)
                .len(),
            4
        );
    }

    #[test]
    fn uniform_random_covers_everything() {
        let s = Strategy::UniformRandom;
        let mut rng = SimRng::from_seed(2);
        let mut used = std::collections::HashSet::new();
        for seq in 0..200 {
            used.insert(s.choose(&name("a.com"), seq, 6, &mut rng)[0]);
        }
        assert_eq!(used.len(), 6);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(Strategy::Race(2).name(), "race-2");
        assert_eq!(Strategy::Single(0).name(), "single[0]");
        assert_eq!(Strategy::HashByDomain.name(), "hash-by-domain");
    }
}
