//! Synthetic query workloads: Zipf-distributed domain popularity, the
//! standard model for DNS query streams.

use dns_wire::Name;
use netsim::SimRng;

/// A Zipf-distributed domain workload over a fixed universe.
#[derive(Debug)]
pub struct Workload {
    domains: Vec<Name>,
    /// Cumulative probability per rank.
    cdf: Vec<f64>,
}

impl Workload {
    /// Builds a workload of `n` synthetic domains with Zipf exponent `s`
    /// (s ≈ 1 matches observed DNS popularity).
    pub fn zipf(n: usize, s: f64) -> Workload {
        assert!(n > 0, "workload needs at least one domain");
        let domains = (0..n)
            // detlint:allow(unwrap, generated site-NNNN names are always valid DNS labels)
            .map(|i| Name::parse(&format!("site-{i:04}.example.com")).expect("valid"))
            .collect();
        let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Workload { domains, cdf }
    }

    /// Builds a workload over explicit domains with uniform popularity.
    pub fn uniform(domains: Vec<Name>) -> Workload {
        assert!(!domains.is_empty());
        let n = domains.len();
        let cdf = (1..=n).map(|i| i as f64 / n as f64).collect();
        Workload { domains, cdf }
    }

    /// Number of distinct domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All domains, most popular first.
    pub fn domains(&self) -> &[Name] {
        &self.domains
    }

    /// Samples one domain according to popularity.
    pub fn sample(&self, rng: &mut SimRng) -> &Name {
        let u = rng.uniform();
        let idx = self.cdf.partition_point(|&c| c < u);
        &self.domains[idx.min(self.domains.len() - 1)]
    }

    /// Generates a query stream of `count` domains.
    pub fn stream(&self, count: usize, rng: &mut SimRng) -> Vec<&Name> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_head_dominates() {
        let w = Workload::zipf(100, 1.0);
        let mut rng = SimRng::from_seed(1);
        let stream = w.stream(10_000, &mut rng);
        let head = w.domains()[0].clone();
        let head_count = stream.iter().filter(|d| ***d == head).count();
        // Rank-1 share under Zipf(1.0, n=100) ≈ 1/H(100) ≈ 19 %.
        assert!(
            (1_200..2_700).contains(&head_count),
            "rank-1 sampled {head_count}/10000"
        );
        // Popularity decreases with rank (head vs mid-tail).
        let mid = w.domains()[49].clone();
        let mid_count = stream.iter().filter(|d| ***d == mid).count();
        assert!(head_count > mid_count * 5, "{head_count} vs {mid_count}");
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let domains: Vec<Name> = (0..4)
            .map(|i| Name::parse(&format!("d{i}.test")).unwrap())
            .collect();
        let w = Workload::uniform(domains);
        let mut rng = SimRng::from_seed(2);
        let mut counts = [0usize; 4];
        for d in w.stream(8_000, &mut rng) {
            let i = w.domains().iter().position(|x| x == d).unwrap();
            counts[i] += 1;
        }
        for c in counts {
            assert!((1_700..2_300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let w = Workload::zipf(50, 1.2);
        let mut a = SimRng::from_seed(9);
        let mut b = SimRng::from_seed(9);
        assert_eq!(w.stream(100, &mut a), w.stream(100, &mut b));
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn empty_workload_rejected() {
        Workload::zipf(0, 1.0);
    }
}
