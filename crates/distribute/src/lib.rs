//! # distribute
//!
//! Query distribution across multiple encrypted DNS resolvers — the
//! research direction the paper's related work motivates (Hoang et al.'s
//! K-resolver; Hounsel et al.'s "Encryption without centralization") and
//! that its measurements inform: "designing a system to take advantage of
//! multiple recursive resolvers must be informed about how the choice of
//! resolver affects performance."
//!
//! * [`Workload`] — Zipf-distributed domain popularity;
//! * [`Strategy`] — single / round-robin / uniform-random / hash-by-domain
//!   (K-resolver) / race-k;
//! * [`Exposure`] — privacy metrics: per-resolver query share, domain
//!   *profile* coverage, entropy;
//! * [`Session`] — runs a workload through a strategy against simulated
//!   resolvers, yielding the latency-vs-privacy tradeoff.
//!
//! ```
//! use distribute::{Session, Strategy, Workload};
//! use netsim::{geo::cities, AccessProfile, Host, HostId};
//!
//! let client = Host::in_city(HostId(0), "c", cities::COLUMBUS_OH, AccessProfile::cloud_vm());
//! let mut session = Session::new(&client, false, &["dns.google", "dns.quad9.net"]);
//! let workload = Workload::zipf(20, 1.0);
//! let result = session.run(&Strategy::HashByDomain, &workload, 40, 1);
//! assert!(result.success_rate() > 0.8);
//! assert!(result.exposure.max_profile_coverage() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod privacy;
pub mod session;
pub mod strategy;
pub mod workload;

pub use adaptive::AdaptiveSelector;
pub use privacy::Exposure;
pub use session::{Session, SessionResult};
pub use strategy::Strategy;
pub use workload::Workload;
