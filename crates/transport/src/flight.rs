//! The reliable-exchange primitive every handshake is built from.
//!
//! One *flight exchange* sends a request flight, waits for the response
//! flight, and retransmits on timeout with exponential backoff — the
//! behaviour common to TCP SYN retries, TLS handshake retransmission and
//! QUIC PTO. Modelling it once keeps every transport's loss behaviour
//! consistent.

use netsim::{Path, SimDuration, SimRng};

use crate::error::{TransportError, TransportErrorKind};

/// Retransmission policy for a flight exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Initial retransmission timeout.
    pub initial_rto: SimDuration,
    /// Backoff multiplier applied after each timeout (conventionally 2).
    pub backoff: u32,
    /// Maximum number of transmissions (first try + retries).
    pub max_attempts: u32,
    /// Cap on the per-attempt RTO.
    pub max_rto: SimDuration,
}

impl RetryPolicy {
    /// Linux-like TCP SYN policy: 1 s initial RTO, doubling, 4 attempts
    /// (trimmed from the kernel's 6 to match the measurement tool's
    /// connect timeout).
    pub fn tcp_syn() -> Self {
        RetryPolicy {
            initial_rto: SimDuration::from_secs(1),
            backoff: 2,
            max_attempts: 4,
            max_rto: SimDuration::from_secs(8),
        }
    }

    /// In-connection data retransmission: RTO from the RTT estimate.
    pub fn data(rto: SimDuration) -> Self {
        RetryPolicy {
            initial_rto: rto,
            backoff: 2,
            max_attempts: 5,
            max_rto: SimDuration::from_secs(10),
        }
    }

    /// QUIC-style probe timeout: more aggressive initial PTO.
    pub fn quic_pto() -> Self {
        RetryPolicy {
            initial_rto: SimDuration::from_millis(300),
            backoff: 2,
            max_attempts: 6,
            max_rto: SimDuration::from_secs(8),
        }
    }
}

/// Outcome of a successful exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeOutcome {
    /// Total elapsed time including any retransmission stalls.
    pub elapsed: SimDuration,
    /// The round-trip time of the *successful* attempt (for RTT estimators).
    pub final_rtt: SimDuration,
    /// Number of transmissions used (1 = no loss).
    pub attempts: u32,
}

/// Performs one reliable request/response flight exchange.
///
/// Each attempt sends `fwd_bytes`, waits `server_time` of peer processing,
/// and receives `rev_bytes`. If either direction drops, the attempt costs
/// the current RTO and the next attempt begins with the RTO doubled.
pub fn exchange(
    path: &Path,
    fwd_bytes: usize,
    rev_bytes: usize,
    server_time: SimDuration,
    policy: RetryPolicy,
    timeout_kind: TransportErrorKind,
    rng: &mut SimRng,
) -> Result<ExchangeOutcome, TransportError> {
    let mut elapsed = SimDuration::ZERO;
    let mut rto = policy.initial_rto;
    for attempt in 1..=policy.max_attempts {
        let fwd = path.sample_forward(fwd_bytes, rng).delay();
        let rev = path.sample_reverse(rev_bytes, rng).delay();
        if let (Some(f), Some(r)) = (fwd, rev) {
            let rtt = f + server_time + r;
            // A reply that lands after the RTO fires is treated as lost:
            // the client has already retransmitted.
            if rtt <= rto {
                return Ok(ExchangeOutcome {
                    elapsed: elapsed + rtt,
                    final_rtt: rtt,
                    attempts: attempt,
                });
            }
        }
        elapsed += rto;
        rto = std::cmp::min(rto.times(policy.backoff as u64), policy.max_rto);
    }
    Err(TransportError::new(timeout_kind, elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;
    use netsim::AccessProfile;

    fn clean_path() -> Path {
        Path::between(
            cities::COLUMBUS_OH.point,
            AccessProfile::cloud_vm(),
            cities::ASHBURN_VA.point,
            AccessProfile::datacenter(),
        )
    }

    fn lossy_path(loss: f64) -> Path {
        let mut p = clean_path();
        p.extra_loss = loss;
        p
    }

    #[test]
    fn clean_exchange_is_one_attempt() {
        let mut rng = SimRng::from_seed(1);
        let out = exchange(
            &clean_path(),
            100,
            200,
            SimDuration::from_millis(1),
            RetryPolicy::tcp_syn(),
            TransportErrorKind::ConnectTimeout,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.elapsed, out.final_rtt);
        assert!(out.elapsed.as_millis_f64() < 50.0);
    }

    #[test]
    fn total_loss_times_out_with_backoff() {
        let mut rng = SimRng::from_seed(2);
        let err = exchange(
            &lossy_path(1.0),
            100,
            200,
            SimDuration::ZERO,
            RetryPolicy::tcp_syn(),
            TransportErrorKind::ConnectTimeout,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ConnectTimeout);
        // 1 + 2 + 4 + 8 seconds of RTO.
        assert_eq!(err.elapsed, SimDuration::from_secs(15));
    }

    #[test]
    fn moderate_loss_costs_rto_stalls() {
        let mut rng = SimRng::from_seed(3);
        let mut stalled = 0;
        let mut total = 0;
        for _ in 0..500 {
            if let Ok(out) = exchange(
                &lossy_path(0.3),
                100,
                200,
                SimDuration::ZERO,
                RetryPolicy::tcp_syn(),
                TransportErrorKind::ConnectTimeout,
                &mut rng,
            ) {
                total += 1;
                if out.attempts > 1 {
                    stalled += 1;
                    // A retransmitted connect includes at least one full RTO.
                    assert!(out.elapsed >= SimDuration::from_secs(1));
                }
            }
        }
        assert!(total > 400, "most should eventually succeed: {total}");
        assert!(stalled > 100, "loss should cause visible stalls: {stalled}");
    }

    #[test]
    fn reply_slower_than_rto_is_retransmitted() {
        let mut rng = SimRng::from_seed(4);
        // Server takes 2 s; initial RTO 1 s — first attempt always "fails",
        // later attempts succeed once RTO >= RTT.
        let out = exchange(
            &clean_path(),
            100,
            200,
            SimDuration::from_secs(2),
            RetryPolicy::tcp_syn(),
            TransportErrorKind::RequestTimeout,
            &mut rng,
        )
        .unwrap();
        assert!(out.attempts >= 2);
        // elapsed includes the burned RTO(s).
        assert!(out.elapsed >= SimDuration::from_secs(3));
    }

    #[test]
    fn rto_cap_is_respected() {
        let mut rng = SimRng::from_seed(5);
        let policy = RetryPolicy {
            initial_rto: SimDuration::from_secs(1),
            backoff: 2,
            max_attempts: 8,
            max_rto: SimDuration::from_secs(2),
        };
        let err = exchange(
            &lossy_path(1.0),
            1,
            1,
            SimDuration::ZERO,
            policy,
            TransportErrorKind::RequestTimeout,
            &mut rng,
        )
        .unwrap_err();
        // 1 + 2 + 2*6 = 15 s, not 1+2+4+8+...
        assert_eq!(err.elapsed, SimDuration::from_secs(15));
    }

    #[test]
    fn policies_have_sane_defaults() {
        assert_eq!(RetryPolicy::tcp_syn().max_attempts, 4);
        assert!(RetryPolicy::quic_pto().initial_rto < RetryPolicy::tcp_syn().initial_rto);
        let d = RetryPolicy::data(SimDuration::from_millis(250));
        assert_eq!(d.initial_rto, SimDuration::from_millis(250));
    }
}
