//! QUIC connection model (RFC 9000/9001): 1-RTT handshakes with address
//! validation amortised, 0-RTT resumption, and stream exchanges — the
//! substrate for DoH3 and DoQ, the paper's natural protocol extensions.
//!
//! Cost model:
//!
//! * **Fresh connection** — Initial+Handshake flights complete in one round
//!   trip (client Initial → server Initial/Handshake), after which
//!   application data flows; the server flight carries the certificate
//!   chain, padded Initials are ≥1200 bytes each way.
//! * **0-RTT resumption** — application data rides the first flight; the
//!   response arrives after a single round trip with no handshake cost at
//!   all beyond the (larger) first flight.

use netsim::{Path, SimDuration, SimRng};

use crate::error::{TransportError, TransportErrorKind};
use crate::flight::{exchange, ExchangeOutcome, RetryPolicy};
use crate::tls::SessionTicket;

/// QUIC tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct QuicConfig {
    /// Client Initial flight (RFC 9000 §8.1 mandates ≥1200-byte UDP datagrams).
    pub initial_bytes: usize,
    /// Server handshake flight (Initial + Handshake with certificate chain).
    pub server_flight_bytes: usize,
    /// Server crypto time during the handshake.
    pub server_crypto: SimDuration,
    /// Probe-timeout policy.
    pub policy: RetryPolicy,
}

impl Default for QuicConfig {
    fn default() -> Self {
        QuicConfig {
            initial_bytes: 1200,
            server_flight_bytes: 4500,
            server_crypto: SimDuration::from_micros(700),
            policy: RetryPolicy::quic_pto(),
        }
    }
}

/// An established QUIC connection.
#[derive(Debug)]
pub struct QuicConnection {
    config: QuicConfig,
    /// Whether this connection used 0-RTT resumption.
    pub zero_rtt: bool,
    /// Resumption ticket for future connections.
    pub ticket: SessionTicket,
    /// Time consumed by the handshake (zero for 0-RTT).
    pub handshake_time: SimDuration,
}

impl QuicConnection {
    /// Establishes a fresh QUIC connection (1-RTT).
    pub fn connect(
        path: &Path,
        config: QuicConfig,
        rng: &mut SimRng,
    ) -> Result<(Self, SimDuration), TransportError> {
        let out = exchange(
            path,
            config.initial_bytes,
            config.server_flight_bytes,
            config.server_crypto,
            config.policy,
            TransportErrorKind::ConnectTimeout,
            rng,
        )?;
        let ticket = SessionTicket {
            id: out.elapsed.as_nanos(),
        };
        Ok((
            QuicConnection {
                config,
                zero_rtt: false,
                ticket,
                handshake_time: out.elapsed,
            },
            out.elapsed,
        ))
    }

    /// Creates a 0-RTT connection from a ticket: no handshake time; the
    /// first request pays a slightly larger flight instead.
    pub fn resume_zero_rtt(path: &Path, config: QuicConfig, ticket: SessionTicket) -> Self {
        let _ = (path, ticket);
        QuicConnection {
            config,
            zero_rtt: true,
            ticket,
            handshake_time: SimDuration::ZERO,
        }
    }

    /// One request/response stream exchange.
    pub fn stream_exchange(
        &mut self,
        path: &Path,
        req_bytes: usize,
        resp_bytes: usize,
        server_time: SimDuration,
        rng: &mut SimRng,
    ) -> Result<ExchangeOutcome, TransportError> {
        // 0-RTT first flight must still be amplification-safe (≥1200 bytes).
        let fwd = if self.zero_rtt {
            req_bytes.max(self.config.initial_bytes)
        } else {
            req_bytes
        };
        self.zero_rtt = false;
        exchange(
            path,
            fwd,
            resp_bytes,
            server_time,
            RetryPolicy::data(self.config.policy.initial_rto + server_time),
            TransportErrorKind::RequestTimeout,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;
    use netsim::AccessProfile;

    fn path() -> Path {
        Path::between(
            cities::COLUMBUS_OH.point,
            AccessProfile::cloud_vm(),
            cities::ASHBURN_VA.point,
            AccessProfile::datacenter(),
        )
    }

    #[test]
    fn fresh_connect_costs_one_round_trip() {
        let mut rng = SimRng::from_seed(1);
        let (conn, elapsed) =
            QuicConnection::connect(&path(), QuicConfig::default(), &mut rng).unwrap();
        assert!(!conn.zero_rtt);
        assert!((2.0..40.0).contains(&elapsed.as_millis_f64()), "{elapsed}");
    }

    #[test]
    fn zero_rtt_has_no_handshake_time() {
        let mut rng = SimRng::from_seed(2);
        let p = path();
        let (conn, _) = QuicConnection::connect(&p, QuicConfig::default(), &mut rng).unwrap();
        let mut resumed = QuicConnection::resume_zero_rtt(&p, QuicConfig::default(), conn.ticket);
        assert!(resumed.zero_rtt);
        assert_eq!(resumed.handshake_time, SimDuration::ZERO);
        // The first exchange succeeds and clears the 0-RTT flag.
        let out = resumed
            .stream_exchange(&p, 100, 200, SimDuration::from_millis(1), &mut rng)
            .unwrap();
        assert!(out.elapsed.as_millis_f64() > 1.0);
        assert!(!resumed.zero_rtt);
    }

    #[test]
    fn zero_rtt_end_to_end_beats_fresh_connection() {
        let mut rng = SimRng::from_seed(3);
        let p = path();
        let n = 200;
        let mut fresh_total = 0.0;
        let mut resumed_total = 0.0;
        for _ in 0..n {
            let (mut c, connect) =
                QuicConnection::connect(&p, QuicConfig::default(), &mut rng).unwrap();
            let out = c
                .stream_exchange(&p, 120, 250, SimDuration::from_millis(1), &mut rng)
                .unwrap();
            fresh_total += (connect + out.elapsed).as_millis_f64();

            let mut r = QuicConnection::resume_zero_rtt(&p, QuicConfig::default(), c.ticket);
            let out = r
                .stream_exchange(&p, 120, 250, SimDuration::from_millis(1), &mut rng)
                .unwrap();
            resumed_total += out.elapsed.as_millis_f64();
        }
        assert!(
            resumed_total < fresh_total * 0.7,
            "0-RTT {resumed_total} vs fresh {fresh_total}"
        );
    }

    #[test]
    fn blackhole_times_out_faster_than_tcp() {
        let mut p = path();
        p.extra_loss = 1.0;
        let mut rng = SimRng::from_seed(4);
        let err = QuicConnection::connect(&p, QuicConfig::default(), &mut rng).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ConnectTimeout);
        // PTO schedule: 0.3+0.6+1.2+2.4+4.8+8 = 17.3 s total (6 attempts).
        assert!(err.elapsed < SimDuration::from_secs(20));
    }
}
