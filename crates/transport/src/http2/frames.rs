//! HTTP/2 framing layer (RFC 9113 §4): the 9-octet frame header and the
//! frame types a DoH client touches.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// HTTP/2 frame types (RFC 9113 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Request/response bodies.
    Data,
    /// Header blocks.
    Headers,
    /// Stream priority (deprecated but still on the wire).
    Priority,
    /// Stream reset.
    RstStream,
    /// Connection settings.
    Settings,
    /// Server push promise.
    PushPromise,
    /// Liveness probe.
    Ping,
    /// Connection shutdown.
    Goaway,
    /// Flow-control window update.
    WindowUpdate,
    /// Header block continuation.
    Continuation,
    /// Unknown type (must be ignored per spec).
    Unknown(u8),
}

impl FrameType {
    /// The wire code.
    pub fn to_u8(self) -> u8 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::Priority => 0x2,
            FrameType::RstStream => 0x3,
            FrameType::Settings => 0x4,
            FrameType::PushPromise => 0x5,
            FrameType::Ping => 0x6,
            FrameType::Goaway => 0x7,
            FrameType::WindowUpdate => 0x8,
            FrameType::Continuation => 0x9,
            FrameType::Unknown(v) => v,
        }
    }

    /// Decodes the wire code.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            0x2 => FrameType::Priority,
            0x3 => FrameType::RstStream,
            0x4 => FrameType::Settings,
            0x5 => FrameType::PushPromise,
            0x6 => FrameType::Ping,
            0x7 => FrameType::Goaway,
            0x8 => FrameType::WindowUpdate,
            0x9 => FrameType::Continuation,
            other => FrameType::Unknown(other),
        }
    }
}

/// Frame flag bits.
pub mod flags {
    /// DATA/HEADERS: no more frames on this stream.
    pub const END_STREAM: u8 = 0x1;
    /// SETTINGS/PING: acknowledgement.
    pub const ACK: u8 = 0x1;
    /// HEADERS: the header block is complete.
    pub const END_HEADERS: u8 = 0x4;
    /// DATA/HEADERS: payload is padded.
    pub const PADDED: u8 = 0x8;
}

/// One HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame type.
    pub ftype: FrameType,
    /// Flag bits.
    pub flags: u8,
    /// Stream identifier (0 = connection).
    pub stream_id: u32,
    /// Payload octets.
    pub payload: Bytes,
}

/// Error decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer than 9 octets available for the header.
    ShortHeader,
    /// Payload shorter than the declared length.
    ShortPayload {
        /// Declared payload length.
        declared: usize,
        /// Octets actually available.
        available: usize,
    },
    /// Declared length exceeds our maximum frame size.
    TooLong(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ShortHeader => write!(f, "frame header truncated"),
            FrameError::ShortPayload {
                declared,
                available,
            } => {
                write!(
                    f,
                    "frame payload truncated: {declared} declared, {available} available"
                )
            }
            FrameError::TooLong(n) => write!(f, "frame length {n} exceeds maximum"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Default SETTINGS_MAX_FRAME_SIZE (RFC 9113 §6.5.2).
pub const DEFAULT_MAX_FRAME_SIZE: usize = 16_384;

impl Frame {
    /// Builds a frame.
    pub fn new(ftype: FrameType, flags: u8, stream_id: u32, payload: impl Into<Bytes>) -> Self {
        Frame {
            ftype,
            flags,
            stream_id,
            payload: payload.into(),
        }
    }

    /// The client connection preface (RFC 9113 §3.4).
    pub const PREFACE: &'static [u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

    /// An empty SETTINGS frame.
    pub fn settings() -> Self {
        Frame::new(FrameType::Settings, 0, 0, Bytes::new())
    }

    /// A SETTINGS ACK.
    pub fn settings_ack() -> Self {
        Frame::new(FrameType::Settings, flags::ACK, 0, Bytes::new())
    }

    /// True when the given flag is set.
    pub fn has_flag(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }

    /// Wire size: 9-octet header plus payload.
    pub fn wire_len(&self) -> usize {
        9 + self.payload.len()
    }

    /// Encodes into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        let len = self.payload.len();
        debug_assert!(len <= 0xFF_FFFF);
        out.put_u8((len >> 16) as u8);
        out.put_u8((len >> 8) as u8);
        out.put_u8(len as u8);
        out.put_u8(self.ftype.to_u8());
        out.put_u8(self.flags);
        out.put_u32(self.stream_id & 0x7FFF_FFFF);
        out.put_slice(&self.payload);
    }

    /// Encodes a sequence of frames (with the preface when `preface`).
    pub fn encode_all(frames: &[Frame], preface: bool) -> Bytes {
        let mut out = BytesMut::new();
        if preface {
            out.put_slice(Frame::PREFACE);
        }
        for f in frames {
            f.encode(&mut out);
        }
        out.freeze()
    }

    /// Decodes one frame from the front of `buf`, consuming it.
    pub fn decode(buf: &mut Bytes) -> Result<Frame, FrameError> {
        if buf.len() < 9 {
            return Err(FrameError::ShortHeader);
        }
        let len = ((buf[0] as usize) << 16) | ((buf[1] as usize) << 8) | buf[2] as usize;
        if len > DEFAULT_MAX_FRAME_SIZE {
            return Err(FrameError::TooLong(len));
        }
        if buf.len() < 9 + len {
            return Err(FrameError::ShortPayload {
                declared: len,
                available: buf.len() - 9,
            });
        }
        let ftype = FrameType::from_u8(buf[3]);
        let fflags = buf[4];
        let stream_id = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]) & 0x7FFF_FFFF;
        buf.advance(9);
        let payload = buf.split_to(len);
        Ok(Frame {
            ftype,
            flags: fflags,
            stream_id,
            payload,
        })
    }

    /// Decodes every frame in `buf`.
    pub fn decode_all(mut buf: Bytes) -> Result<Vec<Frame>, FrameError> {
        let mut frames = Vec::new();
        while !buf.is_empty() {
            frames.push(Frame::decode(&mut buf)?);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let f = Frame::new(
            FrameType::Headers,
            flags::END_HEADERS | flags::END_STREAM,
            1,
            &b"block"[..],
        );
        let mut out = BytesMut::new();
        f.encode(&mut out);
        assert_eq!(out.len(), f.wire_len());
        let mut bytes = out.freeze();
        let back = Frame::decode(&mut bytes).unwrap();
        assert_eq!(back, f);
        assert!(bytes.is_empty());
    }

    #[test]
    fn multiple_frames_round_trip() {
        let frames = vec![
            Frame::settings(),
            Frame::new(FrameType::Headers, flags::END_HEADERS, 1, &b"h"[..]),
            Frame::new(FrameType::Data, flags::END_STREAM, 1, &b"body"[..]),
        ];
        let wire = Frame::encode_all(&frames, false);
        let back = Frame::decode_all(wire).unwrap();
        assert_eq!(back, frames);
    }

    #[test]
    fn preface_prepended() {
        let wire = Frame::encode_all(&[Frame::settings()], true);
        assert!(wire.starts_with(Frame::PREFACE));
    }

    #[test]
    fn reserved_bit_masked() {
        let f = Frame::new(FrameType::Data, 0, 0xFFFF_FFFF, Bytes::new());
        let mut out = BytesMut::new();
        f.encode(&mut out);
        let mut bytes = out.freeze();
        let back = Frame::decode(&mut bytes).unwrap();
        assert_eq!(back.stream_id, 0x7FFF_FFFF);
    }

    #[test]
    fn short_inputs_rejected() {
        let mut b = Bytes::from_static(&[0, 0, 5, 0, 0, 0, 0, 0]);
        assert_eq!(Frame::decode(&mut b), Err(FrameError::ShortHeader));
        let mut b = Bytes::from_static(&[0, 0, 5, 0, 0, 0, 0, 0, 1, b'x']);
        assert!(matches!(
            Frame::decode(&mut b),
            Err(FrameError::ShortPayload {
                declared: 5,
                available: 1
            })
        ));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut hdr = vec![0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 1];
        hdr.extend_from_slice(&[0u8; 16]);
        let mut b = Bytes::from(hdr);
        assert!(matches!(Frame::decode(&mut b), Err(FrameError::TooLong(_))));
    }

    #[test]
    fn frame_type_codes_round_trip() {
        for v in 0u8..=12 {
            assert_eq!(FrameType::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn flags_helpers() {
        let f = Frame::settings_ack();
        assert!(f.has_flag(flags::ACK));
        assert_eq!(f.stream_id, 0);
        assert!(!Frame::settings().has_flag(flags::ACK));
    }
}
