//! HTTP/2: framing (RFC 9113), HPACK header compression (RFC 7541), and a
//! client connection model that charges accurate byte counts and round
//! trips for DoH exchanges.

pub mod connection;
pub mod frames;
pub mod hpack;

pub use connection::{doh_headers, H2Connection, H2Request, H2Response};
pub use frames::{Frame, FrameError, FrameType};
pub use hpack::{Decoder, Encoder, HeaderField, HpackError};
