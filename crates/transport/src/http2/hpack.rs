//! HPACK header compression (RFC 7541) — the subset a DoH client needs:
//! the full static table, prefix-integer coding, indexed fields, and
//! literal fields with incremental indexing into a dynamic table.
//!
//! Huffman string coding is not emitted; incoming Huffman-flagged strings
//! are rejected as unsupported (the simulated servers never send them).

use std::collections::VecDeque;

/// One header field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderField {
    /// Field name (lowercase; pseudo-headers start with `:`).
    pub name: String,
    /// Field value.
    pub value: String,
}

impl HeaderField {
    /// Builds a field.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        HeaderField {
            name: name.into(),
            value: value.into(),
        }
    }

    /// RFC 7541 §4.1 size: name + value + 32 octets of overhead.
    pub fn hpack_size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

/// The RFC 7541 Appendix A static table (1-indexed).
pub const STATIC_TABLE: &[(&str, &str)] = &[
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// HPACK coding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpackError {
    /// Input ended inside a field.
    Truncated,
    /// An index referenced a nonexistent table entry.
    BadIndex(usize),
    /// A Huffman-coded string was encountered (unsupported subset).
    HuffmanUnsupported,
    /// A prefix integer overflowed.
    IntegerOverflow,
    /// A string was not valid UTF-8 (this stack only emits ASCII headers).
    BadString,
}

impl std::fmt::Display for HpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HpackError::Truncated => write!(f, "hpack input truncated"),
            HpackError::BadIndex(i) => write!(f, "hpack index {i} out of range"),
            HpackError::HuffmanUnsupported => write!(f, "huffman strings unsupported"),
            HpackError::IntegerOverflow => write!(f, "hpack integer overflow"),
            HpackError::BadString => write!(f, "hpack string not valid UTF-8"),
        }
    }
}

impl std::error::Error for HpackError {}

/// Encodes an integer with an N-bit prefix (RFC 7541 §5.1).
pub fn encode_integer(out: &mut Vec<u8>, value: usize, prefix_bits: u8, first_byte_flags: u8) {
    let max_prefix = (1usize << prefix_bits) - 1;
    if value < max_prefix {
        out.push(first_byte_flags | value as u8);
        return;
    }
    out.push(first_byte_flags | max_prefix as u8);
    let mut rest = value - max_prefix;
    while rest >= 128 {
        out.push((rest % 128) as u8 | 0x80);
        rest /= 128;
    }
    out.push(rest as u8);
}

/// Decodes an N-bit-prefix integer, returning (value, octets consumed).
pub fn decode_integer(buf: &[u8], prefix_bits: u8) -> Result<(usize, usize), HpackError> {
    if buf.is_empty() {
        return Err(HpackError::Truncated);
    }
    let max_prefix = (1usize << prefix_bits) - 1;
    let mut value = (buf[0] as usize) & max_prefix;
    if value < max_prefix {
        return Ok((value, 1));
    }
    let mut shift = 0u32;
    for (i, &b) in buf[1..].iter().enumerate() {
        let add = ((b & 0x7F) as usize)
            .checked_shl(shift)
            .ok_or(HpackError::IntegerOverflow)?;
        value = value.checked_add(add).ok_or(HpackError::IntegerOverflow)?;
        if b & 0x80 == 0 {
            return Ok((value, i + 2));
        }
        shift += 7;
        if shift > 28 {
            return Err(HpackError::IntegerOverflow);
        }
    }
    Err(HpackError::Truncated)
}

fn encode_string(out: &mut Vec<u8>, s: &str) {
    // Huffman bit clear: raw octets.
    encode_integer(out, s.len(), 7, 0x00);
    out.extend_from_slice(s.as_bytes());
}

fn decode_string(buf: &[u8]) -> Result<(String, usize), HpackError> {
    if buf.is_empty() {
        return Err(HpackError::Truncated);
    }
    if buf[0] & 0x80 != 0 {
        return Err(HpackError::HuffmanUnsupported);
    }
    let (len, used) = decode_integer(buf, 7)?;
    if buf.len() < used + len {
        return Err(HpackError::Truncated);
    }
    let s = std::str::from_utf8(&buf[used..used + len])
        .map_err(|_| HpackError::BadString)?
        .to_string();
    Ok((s, used + len))
}

/// Shared encoder/decoder table state (RFC 7541 §2.3).
#[derive(Debug)]
struct Table {
    dynamic: VecDeque<HeaderField>,
    max_size: usize,
    size: usize,
}

impl Table {
    fn new(max_size: usize) -> Self {
        Table {
            dynamic: VecDeque::new(),
            max_size,
            size: 0,
        }
    }

    /// Absolute index space: 1..=61 static, then dynamic newest-first.
    fn get(&self, index: usize) -> Option<HeaderField> {
        if index == 0 {
            return None;
        }
        if index <= STATIC_TABLE.len() {
            let (n, v) = STATIC_TABLE[index - 1];
            return Some(HeaderField::new(n, v));
        }
        self.dynamic.get(index - STATIC_TABLE.len() - 1).cloned()
    }

    fn insert(&mut self, field: HeaderField) {
        let fsize = field.hpack_size();
        while self.size + fsize > self.max_size {
            match self.dynamic.pop_back() {
                Some(evicted) => self.size -= evicted.hpack_size(),
                None => return, // field larger than the table: table empties
            }
        }
        self.size += fsize;
        self.dynamic.push_front(field);
    }

    /// Finds a full (name, value) match, returning its 1-based index.
    fn find_full(&self, field: &HeaderField) -> Option<usize> {
        for (i, (n, v)) in STATIC_TABLE.iter().enumerate() {
            if *n == field.name && *v == field.value {
                return Some(i + 1);
            }
        }
        self.dynamic
            .iter()
            .position(|f| f == field)
            .map(|i| STATIC_TABLE.len() + 1 + i)
    }

    /// Finds a name-only match.
    fn find_name(&self, name: &str) -> Option<usize> {
        for (i, (n, _)) in STATIC_TABLE.iter().enumerate() {
            if *n == name {
                return Some(i + 1);
            }
        }
        self.dynamic
            .iter()
            .position(|f| f.name == name)
            .map(|i| STATIC_TABLE.len() + 1 + i)
    }
}

/// Default dynamic-table size (RFC 7540 SETTINGS_HEADER_TABLE_SIZE).
pub const DEFAULT_TABLE_SIZE: usize = 4096;

/// An HPACK encoder with a dynamic table.
#[derive(Debug)]
pub struct Encoder {
    table: Table,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new(DEFAULT_TABLE_SIZE)
    }
}

impl Encoder {
    /// Creates an encoder with the given dynamic-table budget.
    pub fn new(max_table_size: usize) -> Self {
        Encoder {
            table: Table::new(max_table_size),
        }
    }

    /// Encodes a header list into a header block fragment.
    pub fn encode(&mut self, fields: &[HeaderField]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in fields {
            if let Some(idx) = self.table.find_full(f) {
                // Indexed field: 1-bit pattern '1'.
                encode_integer(&mut out, idx, 7, 0x80);
            } else if let Some(idx) = self.table.find_name(&f.name) {
                // Literal with incremental indexing, indexed name: '01'.
                encode_integer(&mut out, idx, 6, 0x40);
                encode_string(&mut out, &f.value);
                self.table.insert(f.clone());
            } else {
                // Literal with incremental indexing, new name.
                out.push(0x40);
                encode_string(&mut out, &f.name);
                encode_string(&mut out, &f.value);
                self.table.insert(f.clone());
            }
        }
        out
    }
}

/// An HPACK decoder with a dynamic table.
#[derive(Debug)]
pub struct Decoder {
    table: Table,
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new(DEFAULT_TABLE_SIZE)
    }
}

impl Decoder {
    /// Creates a decoder with the given dynamic-table budget.
    pub fn new(max_table_size: usize) -> Self {
        Decoder {
            table: Table::new(max_table_size),
        }
    }

    /// Decodes a header block fragment into a header list.
    pub fn decode(&mut self, mut buf: &[u8]) -> Result<Vec<HeaderField>, HpackError> {
        let mut fields = Vec::new();
        while !buf.is_empty() {
            let b = buf[0];
            if b & 0x80 != 0 {
                // Indexed field.
                let (idx, used) = decode_integer(buf, 7)?;
                buf = &buf[used..];
                fields.push(self.table.get(idx).ok_or(HpackError::BadIndex(idx))?);
            } else if b & 0x40 != 0 {
                // Literal with incremental indexing.
                let (idx, used) = decode_integer(buf, 6)?;
                buf = &buf[used..];
                let name = if idx == 0 {
                    let (n, used) = decode_string(buf)?;
                    buf = &buf[used..];
                    n
                } else {
                    self.table.get(idx).ok_or(HpackError::BadIndex(idx))?.name
                };
                let (value, used) = decode_string(buf)?;
                buf = &buf[used..];
                let f = HeaderField::new(name, value);
                self.table.insert(f.clone());
                fields.push(f);
            } else if b & 0x20 != 0 {
                // Dynamic table size update.
                let (size, used) = decode_integer(buf, 5)?;
                buf = &buf[used..];
                self.table.max_size = size;
                while self.table.size > size {
                    if let Some(e) = self.table.dynamic.pop_back() {
                        self.table.size -= e.hpack_size();
                    } else {
                        break;
                    }
                }
            } else {
                // Literal without indexing / never indexed ('0000' / '0001').
                let (idx, used) = decode_integer(buf, 4)?;
                buf = &buf[used..];
                let name = if idx == 0 {
                    let (n, used) = decode_string(buf)?;
                    buf = &buf[used..];
                    n
                } else {
                    self.table.get(idx).ok_or(HpackError::BadIndex(idx))?.name
                };
                let (value, used) = decode_string(buf)?;
                buf = &buf[used..];
                fields.push(HeaderField::new(name, value));
            }
        }
        Ok(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doh_request_headers() -> Vec<HeaderField> {
        vec![
            HeaderField::new(":method", "GET"),
            HeaderField::new(":scheme", "https"),
            HeaderField::new(":authority", "dns.google"),
            HeaderField::new(":path", "/dns-query?dns=AAABAAABAAAAAAAA"),
            HeaderField::new("accept", "application/dns-message"),
        ]
    }

    #[test]
    fn integer_coding_rfc_examples() {
        // RFC 7541 §C.1.1: 10 with 5-bit prefix => 0x0a.
        let mut out = Vec::new();
        encode_integer(&mut out, 10, 5, 0);
        assert_eq!(out, [0x0A]);
        assert_eq!(decode_integer(&out, 5).unwrap(), (10, 1));

        // §C.1.2: 1337 with 5-bit prefix => 1f 9a 0a.
        let mut out = Vec::new();
        encode_integer(&mut out, 1337, 5, 0);
        assert_eq!(out, [0x1F, 0x9A, 0x0A]);
        assert_eq!(decode_integer(&out, 5).unwrap(), (1337, 3));

        // §C.1.3: 42 with 8-bit prefix => 2a.
        let mut out = Vec::new();
        encode_integer(&mut out, 42, 8, 0);
        assert_eq!(out, [0x2A]);
    }

    #[test]
    fn integer_overflow_detected() {
        let buf = [0x1F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert_eq!(decode_integer(&buf, 5), Err(HpackError::IntegerOverflow));
    }

    #[test]
    fn header_list_round_trip() {
        let mut enc = Encoder::default();
        let mut dec = Decoder::default();
        let fields = doh_request_headers();
        let block = enc.encode(&fields);
        assert_eq!(dec.decode(&block).unwrap(), fields);
    }

    #[test]
    fn repeat_requests_compress_better() {
        let mut enc = Encoder::default();
        let fields = doh_request_headers();
        let first = enc.encode(&fields).len();
        let second = enc.encode(&fields).len();
        assert!(
            second < first / 2,
            "dynamic table should shrink repeats: {first} -> {second}"
        );
        // And a decoder tracking the same stream still decodes both.
        let mut enc2 = Encoder::default();
        let mut dec = Decoder::default();
        let b1 = enc2.encode(&fields);
        let b2 = enc2.encode(&fields);
        assert_eq!(dec.decode(&b1).unwrap(), fields);
        assert_eq!(dec.decode(&b2).unwrap(), fields);
    }

    #[test]
    fn static_full_match_is_one_byte() {
        let mut enc = Encoder::default();
        let block = enc.encode(&[HeaderField::new(":method", "GET")]);
        assert_eq!(block, [0x82]); // index 2
    }

    #[test]
    fn bad_index_rejected() {
        let mut dec = Decoder::default();
        // Indexed field, index 100 with empty dynamic table.
        let mut buf = Vec::new();
        encode_integer(&mut buf, 100, 7, 0x80);
        assert_eq!(dec.decode(&buf), Err(HpackError::BadIndex(100)));
    }

    #[test]
    fn huffman_flag_rejected() {
        let mut dec = Decoder::default();
        // Literal new name with huffman bit set on the name string.
        let buf = [0x40, 0x81, 0xFF];
        assert_eq!(dec.decode(&buf), Err(HpackError::HuffmanUnsupported));
    }

    #[test]
    fn truncated_input_rejected() {
        let mut dec = Decoder::default();
        let mut enc = Encoder::default();
        let block = enc.encode(&doh_request_headers());
        assert_eq!(
            dec.decode(&block[..block.len() - 3]),
            Err(HpackError::Truncated)
        );
    }

    #[test]
    fn table_eviction_under_small_budget() {
        let mut enc = Encoder::new(80); // fits ~1 small field
        let mut dec = Decoder::new(80);
        for i in 0..20 {
            let f = vec![HeaderField::new("x-custom", format!("value-{i}"))];
            let block = enc.encode(&f);
            assert_eq!(dec.decode(&block).unwrap(), f);
        }
    }

    #[test]
    fn literal_without_indexing_decodes() {
        // 0x00 prefix, new name "a", value "b".
        let buf = [0x00, 0x01, b'a', 0x01, b'b'];
        let mut dec = Decoder::default();
        assert_eq!(dec.decode(&buf).unwrap(), vec![HeaderField::new("a", "b")]);
    }

    #[test]
    fn static_table_has_61_entries() {
        assert_eq!(STATIC_TABLE.len(), 61);
        assert_eq!(STATIC_TABLE[1], (":method", "GET"));
        assert_eq!(STATIC_TABLE[60], ("www-authenticate", ""));
    }

    #[test]
    fn dynamic_table_size_update_is_applied() {
        let mut enc = Encoder::default();
        let mut dec = Decoder::default();
        let f = vec![HeaderField::new("x-long-header-name", "some-value")];
        let b1 = enc.encode(&f);
        dec.decode(&b1).unwrap();
        // Shrink the decoder's table to zero via a size-update instruction,
        // then an indexed reference to the (now evicted) entry must fail.
        let mut update = Vec::new();
        encode_integer(&mut update, 0, 5, 0x20);
        encode_integer(&mut update, 62, 7, 0x80); // first dynamic index
        assert!(dec.decode(&update).is_err());
    }
}
