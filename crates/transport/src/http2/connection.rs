//! HTTP/2 connection model: builds real frame bytes for requests and
//! responses (so payload sizes are accurate) and charges the round trips a
//! DoH exchange costs over an established TLS session.

use bytes::Bytes;
use netsim::{Path, SimDuration, SimRng};

use crate::error::{TransportError, TransportErrorKind};
use crate::http2::frames::{flags, Frame, FrameType};
use crate::http2::hpack::{Decoder, Encoder, HeaderField};
use crate::tcp::TcpConnection;

/// An HTTP/2 request: header list plus optional body.
#[derive(Debug, Clone)]
pub struct H2Request {
    /// Pseudo-headers and regular headers in order.
    pub headers: Vec<HeaderField>,
    /// Request body (e.g. a DoH POST's DNS message).
    pub body: Bytes,
}

/// An HTTP/2 response.
#[derive(Debug, Clone)]
pub struct H2Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers (excluding `:status`).
    pub headers: Vec<HeaderField>,
    /// Response body.
    pub body: Bytes,
}

/// A client HTTP/2 connection multiplexed over one TLS session.
///
/// The first request pays for the connection preface + SETTINGS, which ride
/// with the request flight (no extra round trip — RFC 9113 permits sending
/// requests immediately after the preface).
#[derive(Debug)]
pub struct H2Connection {
    encoder: Encoder,
    decoder: Decoder,
    next_stream_id: u32,
    preface_sent: bool,
}

impl Default for H2Connection {
    fn default() -> Self {
        Self::new()
    }
}

impl H2Connection {
    /// Creates a fresh client connection state.
    pub fn new() -> Self {
        H2Connection {
            encoder: Encoder::default(),
            decoder: Decoder::default(),
            next_stream_id: 1,
            preface_sent: false,
        }
    }

    /// Number of requests issued so far.
    pub fn requests_sent(&self) -> u32 {
        (self.next_stream_id - 1) / 2
    }

    /// Encodes the wire bytes for a request: optional preface/SETTINGS,
    /// HEADERS, optional DATA.
    pub fn encode_request(&mut self, req: &H2Request) -> (u32, Bytes) {
        let stream_id = self.next_stream_id;
        self.next_stream_id += 2;

        let block = self.encoder.encode(&req.headers);
        let mut frames = Vec::new();
        if !self.preface_sent {
            frames.push(Frame::settings());
            self.preface_sent = true;
        }
        let end_flags = if req.body.is_empty() {
            flags::END_HEADERS | flags::END_STREAM
        } else {
            flags::END_HEADERS
        };
        frames.push(Frame::new(FrameType::Headers, end_flags, stream_id, block));
        if !req.body.is_empty() {
            frames.push(Frame::new(
                FrameType::Data,
                flags::END_STREAM,
                stream_id,
                req.body.clone(),
            ));
        }
        let include_preface = frames[0].ftype == FrameType::Settings;
        (stream_id, Frame::encode_all(&frames, include_preface))
    }

    /// [`encode_response`](Self::encode_response) with a fresh HPACK
    /// encoder — exactly the wire a server produces for its first response
    /// on a new connection. The probe fast path uses this to precompute
    /// response wire lengths once per (status, payload) instead of
    /// re-encoding on every probe's fresh connection.
    pub fn encode_response_fresh(
        stream_id: u32,
        status: u16,
        extra_headers: &[HeaderField],
        body: &[u8],
    ) -> Bytes {
        Self::encode_response(
            &mut Encoder::default(),
            stream_id,
            status,
            extra_headers,
            body,
        )
    }

    /// Encodes a server response for `stream_id` (used by the simulated
    /// resolver frontends and by tests).
    pub fn encode_response(
        encoder: &mut Encoder,
        stream_id: u32,
        status: u16,
        extra_headers: &[HeaderField],
        body: &[u8],
    ) -> Bytes {
        let mut headers = vec![HeaderField::new(":status", status.to_string())];
        headers.extend_from_slice(extra_headers);
        let block = encoder.encode(&headers);
        let frames = vec![
            Frame::new(FrameType::Headers, flags::END_HEADERS, stream_id, block),
            Frame::new(FrameType::Data, flags::END_STREAM, stream_id, body.to_vec()),
        ];
        Frame::encode_all(&frames, false)
    }

    /// Parses response bytes into an [`H2Response`].
    pub fn parse_response(&mut self, wire: Bytes) -> Result<H2Response, TransportError> {
        let frames = Frame::decode_all(wire).map_err(|_| {
            TransportError::new(TransportErrorKind::ProtocolError, SimDuration::ZERO)
        })?;
        let mut status = 0u16;
        let mut headers = Vec::new();
        let mut body = Vec::new();
        for f in frames {
            match f.ftype {
                FrameType::Headers => {
                    let fields = self.decoder.decode(&f.payload).map_err(|_| {
                        TransportError::new(TransportErrorKind::ProtocolError, SimDuration::ZERO)
                    })?;
                    for field in fields {
                        if field.name == ":status" {
                            status = field.value.parse().unwrap_or(0);
                        } else {
                            headers.push(field);
                        }
                    }
                }
                FrameType::Data => body.extend_from_slice(&f.payload),
                FrameType::Goaway | FrameType::RstStream => {
                    return Err(TransportError::new(
                        TransportErrorKind::ProtocolError,
                        SimDuration::ZERO,
                    ));
                }
                _ => {} // SETTINGS, WINDOW_UPDATE etc. are bookkeeping
            }
        }
        if status == 0 {
            return Err(TransportError::new(
                TransportErrorKind::ProtocolError,
                SimDuration::ZERO,
            ));
        }
        Ok(H2Response {
            status,
            headers,
            body: body.into(),
        })
    }

    /// Performs one request/response exchange over the path, charging the
    /// accurate wire sizes and the server's processing time. Returns the
    /// response and the elapsed time.
    #[allow(clippy::too_many_arguments)]
    pub fn round_trip(
        &mut self,
        tcp: &mut TcpConnection,
        path: &Path,
        req: &H2Request,
        response_wire: impl FnOnce(u32, &mut Encoder) -> Bytes,
        server_time: SimDuration,
        rng: &mut SimRng,
    ) -> Result<(H2Response, SimDuration), TransportError> {
        let (stream_id, req_wire) = self.encode_request(req);
        // The server shares our encoder state model: build its response with
        // a fresh encoder per connection (kept by the caller via closure).
        let mut server_encoder = Encoder::default();
        let resp_wire = response_wire(stream_id, &mut server_encoder);
        let out = tcp.request_response(path, req_wire.len(), resp_wire.len(), server_time, rng)?;
        let resp = self.parse_response(resp_wire)?;
        Ok((resp, out.elapsed))
    }
}

/// Builds the header list for a DoH request (RFC 8484).
pub fn doh_headers(authority: &str, path: &str, post: bool, body_len: usize) -> Vec<HeaderField> {
    let mut h = vec![
        HeaderField::new(":method", if post { "POST" } else { "GET" }),
        HeaderField::new(":scheme", "https"),
        HeaderField::new(":authority", authority),
        HeaderField::new(":path", path),
        HeaderField::new("accept", "application/dns-message"),
    ];
    if post {
        h.push(HeaderField::new("content-type", "application/dns-message"));
        h.push(HeaderField::new("content-length", body_len.to_string()));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpConfig;
    use netsim::geo::cities;
    use netsim::AccessProfile;

    fn path() -> Path {
        Path::between(
            cities::COLUMBUS_OH.point,
            AccessProfile::cloud_vm(),
            cities::ASHBURN_VA.point,
            AccessProfile::datacenter(),
        )
    }

    #[test]
    fn first_request_carries_preface() {
        let mut conn = H2Connection::new();
        let req = H2Request {
            headers: doh_headers("dns.google", "/dns-query?dns=AAAA", false, 0),
            body: Bytes::new(),
        };
        let (sid1, wire1) = conn.encode_request(&req);
        assert_eq!(sid1, 1);
        assert!(wire1.starts_with(Frame::PREFACE));
        let (sid2, wire2) = conn.encode_request(&req);
        assert_eq!(sid2, 3);
        assert!(!wire2.starts_with(Frame::PREFACE));
        // Second request is smaller: no preface and HPACK dynamic hits.
        assert!(
            wire2.len() < wire1.len() / 2,
            "{} vs {}",
            wire1.len(),
            wire2.len()
        );
    }

    #[test]
    fn post_request_has_data_frame() {
        let mut conn = H2Connection::new();
        let body = Bytes::from(vec![0u8; 40]);
        let req = H2Request {
            headers: doh_headers("dns.google", "/dns-query", true, 40),
            body: body.clone(),
        };
        let (_, wire) = conn.encode_request(&req);
        // Skip the preface then inspect frames.
        let frames = Frame::decode_all(wire.slice(Frame::PREFACE.len()..)).unwrap();
        assert_eq!(frames[0].ftype, FrameType::Settings);
        assert_eq!(frames[1].ftype, FrameType::Headers);
        assert!(!frames[1].has_flag(flags::END_STREAM));
        assert_eq!(frames[2].ftype, FrameType::Data);
        assert!(frames[2].has_flag(flags::END_STREAM));
        assert_eq!(frames[2].payload, body);
    }

    #[test]
    fn response_round_trip() {
        let mut conn = H2Connection::new();
        let mut enc = Encoder::default();
        let wire = H2Connection::encode_response(
            &mut enc,
            1,
            200,
            &[HeaderField::new("content-type", "application/dns-message")],
            b"dns-bytes",
        );
        let resp = conn.parse_response(wire).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.as_ref(), b"dns-bytes");
        assert_eq!(resp.headers[0].value, "application/dns-message");
    }

    #[test]
    fn goaway_is_protocol_error() {
        let mut conn = H2Connection::new();
        let wire = Frame::encode_all(&[Frame::new(FrameType::Goaway, 0, 0, Bytes::new())], false);
        let err = conn.parse_response(wire).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ProtocolError);
    }

    #[test]
    fn full_exchange_over_simulated_path() {
        let mut rng = SimRng::from_seed(9);
        let p = path();
        let (mut tcp, _) =
            TcpConnection::connect(&p, false, &mut rng, TcpConfig::default()).unwrap();
        let mut conn = H2Connection::new();
        let req = H2Request {
            headers: doh_headers("dns.example", "/dns-query?dns=AAEC", false, 0),
            body: Bytes::new(),
        };
        let (resp, elapsed) = conn
            .round_trip(
                &mut tcp,
                &p,
                &req,
                |sid, enc| {
                    H2Connection::encode_response(
                        enc,
                        sid,
                        200,
                        &[HeaderField::new("content-type", "application/dns-message")],
                        &[0xAB; 64],
                    )
                },
                SimDuration::from_millis(1),
                &mut rng,
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 64);
        assert!(elapsed.as_millis_f64() > 1.0);
        assert_eq!(conn.requests_sent(), 1);
    }

    #[test]
    fn doh_headers_shapes() {
        let get = doh_headers("r.example", "/dns-query?dns=AA", false, 0);
        assert_eq!(get[0].value, "GET");
        assert!(!get.iter().any(|h| h.name == "content-type"));
        let post = doh_headers("r.example", "/dns-query", true, 33);
        assert_eq!(post[0].value, "POST");
        assert!(post
            .iter()
            .any(|h| h.name == "content-length" && h.value == "33"));
    }
}
