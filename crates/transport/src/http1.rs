//! HTTP/1.1 (RFC 9112) request/response serialisation — the fallback
//! protocol for DoH servers that do not negotiate h2 (common among the
//! hobbyist deployments in the measured population).

use bytes::Bytes;

use crate::error::{TransportError, TransportErrorKind};
use crate::http2::hpack::HeaderField;
use netsim::SimDuration;

/// Serialises an HTTP/1.1 request from the same header-list shape the h2
/// client uses (pseudo-headers are mapped onto the request line and Host).
pub fn encode_request(headers: &[HeaderField], body: &[u8]) -> Vec<u8> {
    let get = |name: &str| {
        headers
            .iter()
            .find(|h| h.name == name)
            .map(|h| h.value.as_str())
    };
    let method = get(":method").unwrap_or("GET");
    let path = get(":path").unwrap_or("/");
    let authority = get(":authority").unwrap_or("");
    let mut out = format!("{method} {path} HTTP/1.1\r\nhost: {authority}\r\n");
    for h in headers {
        if h.name.starts_with(':') || h.name == "content-length" {
            continue;
        }
        out.push_str(&format!("{}: {}\r\n", h.name, h.value));
    }
    if !body.is_empty() || method == "POST" {
        out.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    out.push_str("connection: keep-alive\r\n\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// Serialises an HTTP/1.1 response.
pub fn encode_response(status: u16, headers: &[HeaderField], body: &[u8]) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        _ => "Unknown",
    };
    let mut out = format!("HTTP/1.1 {status} {reason}\r\n");
    for h in headers {
        out.push_str(&format!("{}: {}\r\n", h.name, h.value));
    }
    out.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// A parsed HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq)]
pub struct H1Response {
    /// Status code.
    pub status: u16,
    /// Headers, lowercased names.
    pub headers: Vec<HeaderField>,
    /// Body.
    pub body: Bytes,
}

fn protocol_error() -> TransportError {
    TransportError::new(TransportErrorKind::ProtocolError, SimDuration::ZERO)
}

/// Parses an HTTP/1.1 response (Content-Length framing only — DoH responses
/// are single small messages, never chunked in practice).
pub fn parse_response(wire: &[u8]) -> Result<H1Response, TransportError> {
    let header_end = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(protocol_error)?;
    let head = std::str::from_utf8(&wire[..header_end]).map_err(|_| protocol_error())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(protocol_error)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().ok_or_else(protocol_error)?;
    if !version.starts_with("HTTP/1.") {
        return Err(protocol_error());
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(protocol_error)?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(protocol_error)?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = Some(value.parse().map_err(|_| protocol_error())?);
        }
        headers.push(HeaderField::new(name, value));
    }
    let body_start = header_end + 4;
    let body = match content_length {
        Some(len) => {
            if wire.len() < body_start + len {
                return Err(protocol_error());
            }
            Bytes::copy_from_slice(&wire[body_start..body_start + len])
        }
        None => Bytes::copy_from_slice(&wire[body_start..]),
    };
    Ok(H1Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http2::doh_headers;

    #[test]
    fn request_line_and_host_from_pseudo_headers() {
        let headers = doh_headers("dns.example", "/dns-query?dns=AAAA", false, 0);
        let wire = encode_request(&headers, b"");
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("GET /dns-query?dns=AAAA HTTP/1.1\r\n"));
        assert!(text.contains("host: dns.example\r\n"));
        assert!(text.contains("accept: application/dns-message\r\n"));
        assert!(!text.contains(":method"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn post_request_carries_body_and_length() {
        let headers = doh_headers("dns.example", "/dns-query", true, 5);
        let wire = encode_request(&headers, b"hello");
        let text = String::from_utf8_lossy(&wire);
        assert!(text.starts_with("POST /dns-query HTTP/1.1\r\n"));
        assert!(text.contains("content-length: 5\r\n"));
        assert!(wire.ends_with(b"hello"));
    }

    #[test]
    fn response_round_trip() {
        let wire = encode_response(
            200,
            &[HeaderField::new("content-type", "application/dns-message")],
            b"dns-bytes",
        );
        let resp = parse_response(&wire).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.as_ref(), b"dns-bytes");
        assert!(resp
            .headers
            .iter()
            .any(|h| h.name == "content-type" && h.value == "application/dns-message"));
    }

    #[test]
    fn error_statuses_round_trip() {
        for status in [400u16, 404, 500, 502, 418] {
            let wire = encode_response(status, &[], b"");
            assert_eq!(parse_response(&wire).unwrap().status, status);
        }
    }

    #[test]
    fn malformed_responses_rejected() {
        assert!(parse_response(b"not http").is_err());
        assert!(
            parse_response(b"HTTP/1.1 200 OK\r\n").is_err(),
            "no header end"
        );
        assert!(parse_response(b"SPDY/3 200 OK\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        // Truncated body vs declared length.
        let wire = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nshort";
        assert!(parse_response(wire).is_err());
    }

    #[test]
    fn binary_body_survives() {
        let body: Vec<u8> = (0u8..=255).collect();
        let wire = encode_response(200, &[], &body);
        assert_eq!(parse_response(&wire).unwrap().body.as_ref(), &body[..]);
    }
}
