//! # transport
//!
//! Connection-oriented transport state machines over the [`netsim`]
//! substrate: TCP (with RFC 6298 RTT estimation and SYN retries), TLS 1.3
//! (full and PSK-resumed handshakes), HTTP/2 (real framing and HPACK so DoH
//! request/response byte counts are accurate), and QUIC (1-RTT and 0-RTT)
//! for the DoH3/DoQ extensions.
//!
//! Every machine is built on a single reliable-flight primitive
//! ([`flight::exchange`]) so loss, retransmission and exponential backoff
//! behave identically across protocols, and every failure carries the
//! simulated time it burned ([`TransportError`]) — campaign error accounting
//! depends on that.
//!
//! The cost model, in round trips on a cold path:
//!
//! | protocol | connect | request |
//! |---|---|---|
//! | Do53/UDP | 0 | 1 |
//! | DoT | 1 (TCP) + 1 (TLS) | 1 |
//! | DoH | 1 (TCP) + 1 (TLS) | 1 (H2 preface rides along) |
//! | DoH3/DoQ | 1 (QUIC) | 1 (0 with 0-RTT) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fault;
pub mod flight;
pub mod http1;
pub mod http2;
pub mod quic;
pub mod tcp;
pub mod tls;
pub mod traced;

pub use error::{TransportError, TransportErrorKind};
pub use fault::FaultHooks;
pub use flight::{exchange, ExchangeOutcome, RetryPolicy};
pub use http1::{
    encode_request as h1_encode_request, encode_response as h1_encode_response,
    parse_response as h1_parse_response, H1Response,
};
pub use http2::{doh_headers, H2Connection, H2Request, H2Response, HeaderField};
pub use quic::{QuicConfig, QuicConnection};
pub use tcp::{RttEstimator, TcpConfig, TcpConnection};
pub use tls::{SessionTicket, TlsConfig, TlsServerBehavior, TlsSession};
pub use traced::{exchange_traced, record_exchange_spans};
