//! Transport-level failures, each carrying the simulated time burned before
//! the failure surfaced — measurement campaigns account that time.

use std::fmt;

use netsim::SimDuration;

/// Why a transport operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// TCP connection establishment never completed (SYN retries exhausted).
    ConnectTimeout,
    /// The peer actively refused the connection (RST / closed port).
    ConnectionRefused,
    /// The TLS handshake failed or timed out.
    TlsHandshakeFailure,
    /// The TLS certificate did not validate.
    CertificateInvalid,
    /// An established connection stopped answering (request retries
    /// exhausted).
    RequestTimeout,
    /// The peer returned a protocol-level error (HTTP 5xx, H2 GOAWAY,
    /// QUIC CONNECTION_CLOSE).
    ProtocolError,
}

impl fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransportErrorKind::ConnectTimeout => "connect timeout",
            TransportErrorKind::ConnectionRefused => "connection refused",
            TransportErrorKind::TlsHandshakeFailure => "TLS handshake failure",
            TransportErrorKind::CertificateInvalid => "certificate invalid",
            TransportErrorKind::RequestTimeout => "request timeout",
            TransportErrorKind::ProtocolError => "protocol error",
        };
        write!(f, "{s}")
    }
}

/// A transport failure plus the time it took to manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportError {
    /// What went wrong.
    pub kind: TransportErrorKind,
    /// Simulated time spent before the failure was observed.
    pub elapsed: SimDuration,
}

impl TransportError {
    /// Constructs an error.
    pub fn new(kind: TransportErrorKind, elapsed: SimDuration) -> Self {
        TransportError { kind, elapsed }
    }

    /// True for failures that manifest as "could not establish a
    /// connection" — the dominant error class in the paper's campaign.
    pub fn is_connection_failure(&self) -> bool {
        matches!(
            self.kind,
            TransportErrorKind::ConnectTimeout
                | TransportErrorKind::ConnectionRefused
                | TransportErrorKind::TlsHandshakeFailure
                | TransportErrorKind::CertificateInvalid
        )
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after {}", self.kind, self.elapsed)
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_failure_classification() {
        let conn = TransportError::new(
            TransportErrorKind::ConnectTimeout,
            SimDuration::from_secs(3),
        );
        assert!(conn.is_connection_failure());
        let req = TransportError::new(
            TransportErrorKind::RequestTimeout,
            SimDuration::from_secs(5),
        );
        assert!(!req.is_connection_failure());
        let tls = TransportError::new(
            TransportErrorKind::TlsHandshakeFailure,
            SimDuration::from_millis(900),
        );
        assert!(tls.is_connection_failure());
    }

    #[test]
    fn display_mentions_kind_and_time() {
        let e = TransportError::new(
            TransportErrorKind::ConnectionRefused,
            SimDuration::from_millis(42),
        );
        let s = e.to_string();
        assert!(s.contains("refused"));
        assert!(s.contains("42.000ms"));
    }
}
