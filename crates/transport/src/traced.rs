//! Span-traced variants of the transport operations.
//!
//! Each `*_traced` method delegates to its untraced counterpart and records
//! the phase as a span in an [`obs::SpanLog`], anchored at a caller-supplied
//! simulated-time origin. The untraced methods stay the hot path: a probe
//! that doesn't want tracing passes a disabled log (or calls the plain
//! method) and pays nothing.
//!
//! Phase spans are recorded as *disjoint, consecutive* intervals matching
//! the probe's phase accounting: the wire-exchange span excludes the
//! server's processing time, which gets its own span immediately after.
//! Failures close the open span at the failure time and drop an instant
//! marker naming what failed.

use netsim::{Path, SimDuration, SimRng};
use obs::{Nanos, Phase, SpanLog};

use crate::error::TransportError;
use crate::flight::{exchange, ExchangeOutcome, RetryPolicy};
use crate::http2::{Encoder, H2Connection, H2Request, H2Response};
use crate::quic::{QuicConfig, QuicConnection};
use crate::tcp::{TcpConfig, TcpConnection};
use crate::tls::{SessionTicket, TlsConfig, TlsServerBehavior, TlsSession};
use crate::TransportErrorKind;
use bytes::Bytes;

/// Records the wire-exchange and server-processing spans for an exchange
/// that took `elapsed` in total, of which the server spent `server_time`.
/// Returns the simulated time at which the exchange completed.
pub fn record_exchange_spans(
    log: &mut SpanLog,
    t0: Nanos,
    elapsed: SimDuration,
    server_time: SimDuration,
) -> Nanos {
    let wire = elapsed.saturating_sub(server_time);
    let server = elapsed.saturating_sub(wire);
    let mut t = t0;
    log.enter(t, Phase::HttpExchange.name());
    t += wire.as_nanos();
    log.exit(t, Phase::HttpExchange.name());
    log.enter(t, Phase::ServerProcessing.name());
    t += server.as_nanos();
    log.exit(t, Phase::ServerProcessing.name());
    t
}

/// Closes the `phase` span at the failure time and drops a named marker.
fn record_failure(log: &mut SpanLog, phase: Phase, t0: Nanos, e: &TransportError) {
    let at = t0 + e.elapsed.as_nanos();
    log.exit(at, phase.name());
    log.instant(
        at,
        match e.kind {
            TransportErrorKind::ConnectTimeout => "connect_timeout",
            TransportErrorKind::ConnectionRefused => "connection_refused",
            TransportErrorKind::TlsHandshakeFailure => "tls_failure",
            TransportErrorKind::CertificateInvalid => "certificate_invalid",
            TransportErrorKind::RequestTimeout => "request_timeout",
            TransportErrorKind::ProtocolError => "protocol_error",
        },
    );
}

impl TcpConnection {
    /// [`TcpConnection::connect`] with a `connect` phase span.
    pub fn connect_traced(
        path: &Path,
        refused: bool,
        rng: &mut SimRng,
        config: TcpConfig,
        t0: Nanos,
        log: &mut SpanLog,
    ) -> Result<(Self, SimDuration), TransportError> {
        log.enter(t0, Phase::Connect.name());
        match Self::connect(path, refused, rng, config) {
            Ok((conn, d)) => {
                log.exit(t0 + d.as_nanos(), Phase::Connect.name());
                Ok((conn, d))
            }
            Err(e) => {
                record_failure(log, Phase::Connect, t0, &e);
                Err(e)
            }
        }
    }

    /// [`TcpConnection::request_response`] with wire-exchange and
    /// server-processing spans.
    #[allow(clippy::too_many_arguments)]
    pub fn request_response_traced(
        &mut self,
        path: &Path,
        req_bytes: usize,
        resp_bytes: usize,
        server_time: SimDuration,
        rng: &mut SimRng,
        t0: Nanos,
        log: &mut SpanLog,
    ) -> Result<ExchangeOutcome, TransportError> {
        match self.request_response(path, req_bytes, resp_bytes, server_time, rng) {
            Ok(out) => {
                record_exchange_spans(log, t0, out.elapsed, server_time);
                Ok(out)
            }
            Err(e) => {
                log.instant(t0 + e.elapsed.as_nanos(), "request_timeout");
                Err(e)
            }
        }
    }
}

impl TlsSession {
    /// [`TlsSession::handshake`] with a `tls_handshake` phase span.
    #[allow(clippy::too_many_arguments)]
    pub fn handshake_traced(
        tcp: &mut TcpConnection,
        path: &Path,
        config: TlsConfig,
        behavior: TlsServerBehavior,
        ticket: Option<SessionTicket>,
        rng: &mut SimRng,
        t0: Nanos,
        log: &mut SpanLog,
    ) -> Result<TlsSession, TransportError> {
        log.enter(t0, Phase::TlsHandshake.name());
        match Self::handshake(tcp, path, config, behavior, ticket, rng) {
            Ok(s) => {
                log.exit(t0 + s.handshake_time.as_nanos(), Phase::TlsHandshake.name());
                Ok(s)
            }
            Err(e) => {
                record_failure(log, Phase::TlsHandshake, t0, &e);
                Err(e)
            }
        }
    }
}

impl QuicConnection {
    /// [`QuicConnection::connect`] with a `connect` phase span (QUIC folds
    /// transport and crypto setup into one handshake).
    pub fn connect_traced(
        path: &Path,
        config: QuicConfig,
        rng: &mut SimRng,
        t0: Nanos,
        log: &mut SpanLog,
    ) -> Result<(Self, SimDuration), TransportError> {
        log.enter(t0, Phase::Connect.name());
        match Self::connect(path, config, rng) {
            Ok((conn, d)) => {
                log.exit(t0 + d.as_nanos(), Phase::Connect.name());
                Ok((conn, d))
            }
            Err(e) => {
                record_failure(log, Phase::Connect, t0, &e);
                Err(e)
            }
        }
    }

    /// [`QuicConnection::stream_exchange`] with wire-exchange and
    /// server-processing spans.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_exchange_traced(
        &mut self,
        path: &Path,
        req_bytes: usize,
        resp_bytes: usize,
        server_time: SimDuration,
        rng: &mut SimRng,
        t0: Nanos,
        log: &mut SpanLog,
    ) -> Result<ExchangeOutcome, TransportError> {
        match self.stream_exchange(path, req_bytes, resp_bytes, server_time, rng) {
            Ok(out) => {
                record_exchange_spans(log, t0, out.elapsed, server_time);
                Ok(out)
            }
            Err(e) => {
                log.instant(t0 + e.elapsed.as_nanos(), "request_timeout");
                Err(e)
            }
        }
    }
}

impl H2Connection {
    /// [`H2Connection::round_trip`] with wire-exchange and
    /// server-processing spans.
    #[allow(clippy::too_many_arguments)]
    pub fn round_trip_traced(
        &mut self,
        tcp: &mut TcpConnection,
        path: &Path,
        req: &H2Request,
        response_wire: impl FnOnce(u32, &mut Encoder) -> Bytes,
        server_time: SimDuration,
        rng: &mut SimRng,
        t0: Nanos,
        log: &mut SpanLog,
    ) -> Result<(H2Response, SimDuration), TransportError> {
        match self.round_trip(tcp, path, req, response_wire, server_time, rng) {
            Ok((resp, elapsed)) => {
                record_exchange_spans(log, t0, elapsed, server_time);
                Ok((resp, elapsed))
            }
            Err(e) => {
                log.instant(t0 + e.elapsed.as_nanos(), "request_timeout");
                Err(e)
            }
        }
    }
}

/// [`exchange`] with wire-exchange and server-processing spans — the traced
/// face of the connectionless (Do53) request path.
#[allow(clippy::too_many_arguments)]
pub fn exchange_traced(
    path: &Path,
    req_bytes: usize,
    resp_bytes: usize,
    server_time: SimDuration,
    policy: RetryPolicy,
    timeout_kind: TransportErrorKind,
    rng: &mut SimRng,
    t0: Nanos,
    log: &mut SpanLog,
) -> Result<ExchangeOutcome, TransportError> {
    match exchange(
        path,
        req_bytes,
        resp_bytes,
        server_time,
        policy,
        timeout_kind,
        rng,
    ) {
        Ok(out) => {
            record_exchange_spans(log, t0, out.elapsed, server_time);
            Ok(out)
        }
        Err(e) => {
            log.instant(t0 + e.elapsed.as_nanos(), "request_timeout");
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;
    use netsim::AccessProfile;

    fn clean_path() -> Path {
        let mut p = Path::between(
            cities::COLUMBUS_OH.point,
            AccessProfile::cloud_vm(),
            cities::CHICAGO.point,
            AccessProfile::datacenter(),
        );
        p.extra_loss = 0.0;
        p
    }

    #[test]
    fn traced_connect_matches_untraced_and_records_span() {
        let path = clean_path();
        let mut log = SpanLog::with_capacity(16);
        let mut rng_a = SimRng::from_seed(1);
        let mut rng_b = SimRng::from_seed(1);
        let (_, d_plain) =
            TcpConnection::connect(&path, false, &mut rng_a, TcpConfig::default()).unwrap();
        let (_, d_traced) = TcpConnection::connect_traced(
            &path,
            false,
            &mut rng_b,
            TcpConfig::default(),
            0,
            &mut log,
        )
        .unwrap();
        assert_eq!(d_plain, d_traced, "tracing must not perturb the RNG stream");
        let spans = log.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, Phase::Connect.name());
        assert_eq!(spans[0].duration(), d_traced.as_nanos());
    }

    #[test]
    fn refused_connect_records_failure_marker() {
        let path = clean_path();
        let mut log = SpanLog::with_capacity(16);
        let mut rng = SimRng::from_seed(2);
        let err =
            TcpConnection::connect_traced(&path, true, &mut rng, TcpConfig::default(), 0, &mut log)
                .unwrap_err();
        assert!(log
            .events()
            .any(|e| e.name == "connection_refused" && e.at == err.elapsed.as_nanos()));
    }

    #[test]
    fn exchange_spans_split_out_server_time() {
        let mut log = SpanLog::with_capacity(16);
        let end = record_exchange_spans(
            &mut log,
            1_000,
            SimDuration::from_millis(10),
            SimDuration::from_millis(3),
        );
        assert_eq!(end, 1_000 + 10_000_000);
        let spans = log.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, Phase::HttpExchange.name());
        assert_eq!(spans[0].duration(), 7_000_000);
        assert_eq!(spans[1].name, Phase::ServerProcessing.name());
        assert_eq!(spans[1].duration(), 3_000_000);
    }

    #[test]
    fn disabled_log_leaves_traced_calls_silent() {
        let path = clean_path();
        let mut log = SpanLog::disabled();
        let mut rng = SimRng::from_seed(3);
        let ok = TcpConnection::connect_traced(
            &path,
            false,
            &mut rng,
            TcpConfig::default(),
            0,
            &mut log,
        );
        assert!(ok.is_ok());
        assert_eq!(log.recorded(), 0);
    }
}
