//! TCP connection model: three-way handshake, RTT estimation (RFC 6298) and
//! reliable request/response exchanges on an established connection.

use netsim::{Path, SimDuration, SimRng};

use crate::error::{TransportError, TransportErrorKind};
use crate::flight::{exchange, ExchangeOutcome, RetryPolicy};

/// TCP tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// SYN retransmission policy.
    pub syn_policy: RetryPolicy,
    /// Bytes of a SYN segment (IP + TCP headers + options).
    pub syn_bytes: usize,
    /// Minimum data RTO (RFC 6298 floors it at 1 s; Linux uses 200 ms).
    pub min_rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            syn_policy: RetryPolicy::tcp_syn(),
            syn_bytes: 60,
            min_rto: SimDuration::from_millis(200),
        }
    }
}

/// RFC 6298 smoothed RTT estimator.
#[derive(Debug, Clone, Copy)]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
}

impl RttEstimator {
    /// Initialises from the first RTT measurement.
    pub fn new(first_rtt: SimDuration) -> Self {
        let r = first_rtt.as_millis_f64();
        RttEstimator {
            srtt: r,
            rttvar: r / 2.0,
        }
    }

    /// Incorporates a new measurement (alpha 1/8, beta 1/4).
    pub fn update(&mut self, rtt: SimDuration) {
        let r = rtt.as_millis_f64();
        self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - r).abs();
        self.srtt = 0.875 * self.srtt + 0.125 * r;
    }

    /// The smoothed RTT.
    pub fn srtt(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.srtt)
    }

    /// The retransmission timeout: `SRTT + 4·RTTVAR`, floored at `min_rto`.
    pub fn rto(&self, min_rto: SimDuration) -> SimDuration {
        std::cmp::max(
            SimDuration::from_millis_f64(self.srtt + 4.0 * self.rttvar),
            min_rto,
        )
    }
}

/// An established TCP connection to a server across a path.
#[derive(Debug)]
pub struct TcpConnection {
    config: TcpConfig,
    estimator: RttEstimator,
    /// Total simulated time this connection has consumed.
    total_elapsed: SimDuration,
}

impl TcpConnection {
    /// Performs the three-way handshake.
    ///
    /// The model charges one full round trip (SYN → SYN-ACK); the final ACK
    /// travels with the first data segment, as real stacks do. If the server
    /// refuses connections, the failure surfaces after one round trip.
    pub fn connect(
        path: &Path,
        refused: bool,
        rng: &mut SimRng,
        config: TcpConfig,
    ) -> Result<(Self, SimDuration), TransportError> {
        let out = exchange(
            path,
            config.syn_bytes,
            config.syn_bytes,
            SimDuration::ZERO,
            config.syn_policy,
            TransportErrorKind::ConnectTimeout,
            rng,
        )?;
        if refused {
            // RST arrives in place of the SYN-ACK.
            return Err(TransportError::new(
                TransportErrorKind::ConnectionRefused,
                out.elapsed,
            ));
        }
        Ok((
            TcpConnection {
                config,
                estimator: RttEstimator::new(out.final_rtt),
                total_elapsed: out.elapsed,
            },
            out.elapsed,
        ))
    }

    /// Reconstructs an established connection from pooled metadata.
    ///
    /// A kept-alive connection pulled from a pool pays no handshake: the
    /// estimator is re-seeded from the stored smoothed-RTT hint and no
    /// simulated time or randomness is consumed until the first data
    /// segment flows.
    pub fn resumed(config: TcpConfig, srtt_hint: SimDuration) -> TcpConnection {
        TcpConnection {
            config,
            estimator: RttEstimator::new(srtt_hint),
            total_elapsed: SimDuration::ZERO,
        }
    }

    /// The connection's current smoothed RTT estimate.
    pub fn srtt(&self) -> SimDuration {
        self.estimator.srtt()
    }

    /// Total time consumed by this connection so far.
    pub fn total_elapsed(&self) -> SimDuration {
        self.total_elapsed
    }

    /// Sends `req_bytes`, lets the server work for `server_time`, and
    /// receives `resp_bytes`, with RTO-based retransmission.
    pub fn request_response(
        &mut self,
        path: &Path,
        req_bytes: usize,
        resp_bytes: usize,
        server_time: SimDuration,
        rng: &mut SimRng,
    ) -> Result<ExchangeOutcome, TransportError> {
        // Data RTO must also cover the server's think time, otherwise a
        // slow-but-healthy peer triggers spurious retransmits forever.
        let rto = self.estimator.rto(self.config.min_rto) + server_time;
        let out = exchange(
            path,
            req_bytes,
            resp_bytes,
            server_time,
            RetryPolicy::data(rto),
            TransportErrorKind::RequestTimeout,
            rng,
        )?;
        self.estimator.update(out.final_rtt);
        self.total_elapsed += out.elapsed;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;
    use netsim::AccessProfile;

    fn path() -> Path {
        Path::between(
            cities::COLUMBUS_OH.point,
            AccessProfile::cloud_vm(),
            cities::ASHBURN_VA.point,
            AccessProfile::datacenter(),
        )
    }

    #[test]
    fn connect_costs_about_one_rtt() {
        let mut rng = SimRng::from_seed(1);
        let (conn, elapsed) =
            TcpConnection::connect(&path(), false, &mut rng, TcpConfig::default()).unwrap();
        assert!((2.0..40.0).contains(&elapsed.as_millis_f64()), "{elapsed}");
        assert_eq!(conn.total_elapsed(), elapsed);
    }

    #[test]
    fn refused_costs_one_rtt_and_reports_refused() {
        let mut rng = SimRng::from_seed(2);
        let err =
            TcpConnection::connect(&path(), true, &mut rng, TcpConfig::default()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ConnectionRefused);
        assert!(err.elapsed.as_millis_f64() < 50.0);
        assert!(err.is_connection_failure());
    }

    #[test]
    fn connect_through_blackhole_times_out() {
        let mut p = path();
        p.extra_loss = 1.0;
        let mut rng = SimRng::from_seed(3);
        let err = TcpConnection::connect(&p, false, &mut rng, TcpConfig::default()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ConnectTimeout);
        assert_eq!(err.elapsed, SimDuration::from_secs(15));
    }

    #[test]
    fn request_response_accumulates_time_and_updates_rtt() {
        let mut rng = SimRng::from_seed(4);
        let p = path();
        let (mut conn, connect_time) =
            TcpConnection::connect(&p, false, &mut rng, TcpConfig::default()).unwrap();
        let out = conn
            .request_response(&p, 300, 500, SimDuration::from_millis(2), &mut rng)
            .unwrap();
        assert!(out.elapsed > SimDuration::from_millis(1));
        assert_eq!(conn.total_elapsed(), connect_time + out.elapsed);
        // Multiple requests keep the estimator sane.
        for _ in 0..20 {
            conn.request_response(&p, 300, 500, SimDuration::from_millis(2), &mut rng)
                .unwrap();
        }
        let srtt = conn.srtt().as_millis_f64();
        assert!((2.0..30.0).contains(&srtt), "srtt {srtt}");
    }

    #[test]
    fn slow_server_does_not_cause_spurious_timeout() {
        let mut rng = SimRng::from_seed(5);
        let p = path();
        let (mut conn, _) =
            TcpConnection::connect(&p, false, &mut rng, TcpConfig::default()).unwrap();
        // 800 ms server time >> data RTO floor; must still succeed in one
        // attempt because the RTO covers server think time.
        let out = conn
            .request_response(&p, 100, 100, SimDuration::from_millis(800), &mut rng)
            .unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.elapsed >= SimDuration::from_millis(800));
    }

    #[test]
    fn resumed_connection_skips_handshake_and_keeps_rtt_hint() {
        let p = path();
        let hint = SimDuration::from_millis(12);
        let mut conn = TcpConnection::resumed(TcpConfig::default(), hint);
        // No handshake: zero elapsed, estimator seeded from the hint, and
        // no randomness consumed at construction.
        assert_eq!(conn.total_elapsed(), SimDuration::ZERO);
        assert_eq!(conn.srtt(), hint);
        let mut rng = SimRng::from_seed(6);
        let out = conn
            .request_response(&p, 300, 500, SimDuration::from_millis(2), &mut rng)
            .unwrap();
        assert!(out.elapsed > SimDuration::ZERO);
        assert_eq!(conn.total_elapsed(), out.elapsed);
    }

    #[test]
    fn estimator_converges() {
        let mut e = RttEstimator::new(SimDuration::from_millis(100));
        for _ in 0..100 {
            e.update(SimDuration::from_millis(20));
        }
        let srtt = e.srtt().as_millis_f64();
        assert!((19.0..25.0).contains(&srtt), "srtt {srtt}");
        // RTO respects the floor.
        assert!(e.rto(SimDuration::from_millis(200)) >= SimDuration::from_millis(200));
    }
}
