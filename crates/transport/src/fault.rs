//! Per-attempt fault hooks the prober threads into transport exchanges.
//!
//! The measurement layer resolves a fault plan plus the resolver's sampled
//! health into one [`FaultHooks`] value per probe attempt, and the
//! protocol-specific probe paths consult it at the three layers faults can
//! surface: TCP/QUIC connect (refusal), the TLS handshake (stall or an
//! expired certificate), and the HTTP exchange (a status override such as
//! a 429 or 500). [`FaultHooks::NONE`] is the transparent default — every
//! check short-circuits and the exchange behaves exactly as if the hook
//! layer did not exist.

use crate::tls::TlsServerBehavior;

/// How one connection attempt is sabotaged, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultHooks {
    /// The server actively refuses the transport connection (TCP RST /
    /// QUIC CONNECTION_REFUSED).
    pub refuse_connect: bool,
    /// How the TLS server misbehaves during the handshake.
    pub tls_behavior: TlsServerBehavior,
    /// Overrides the HTTP response status (e.g. `Some(429)` for rate
    /// limiting, `Some(500)` for a broken frontend).
    pub http_status_override: Option<u16>,
}

impl FaultHooks {
    /// The transparent hook set: nothing is sabotaged.
    pub const NONE: FaultHooks = FaultHooks {
        refuse_connect: false,
        tls_behavior: TlsServerBehavior::Normal,
        http_status_override: None,
    };

    /// An owned transparent hook set.
    pub fn none() -> Self {
        Self::NONE
    }

    /// The HTTP status this attempt observes, given the server's default.
    pub fn http_status(&self, default: u16) -> u16 {
        self.http_status_override.unwrap_or(default)
    }
}

impl Default for FaultHooks {
    fn default() -> Self {
        Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_transparent() {
        let hooks = FaultHooks::none();
        assert_eq!(hooks, FaultHooks::NONE);
        assert!(!hooks.refuse_connect);
        assert_eq!(hooks.tls_behavior, TlsServerBehavior::Normal);
        assert_eq!(hooks.http_status(200), 200);
        assert_eq!(hooks.http_status(500), 500);
    }

    #[test]
    fn status_override_wins() {
        let hooks = FaultHooks {
            http_status_override: Some(429),
            ..FaultHooks::NONE
        };
        assert_eq!(hooks.http_status(200), 429);
        assert_eq!(hooks.http_status(500), 429);
    }
}
