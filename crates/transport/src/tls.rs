//! TLS 1.3 handshake model (RFC 8446): full 1-RTT handshakes, PSK session
//! resumption, and session tickets.
//!
//! The model counts the round trips and bytes a real TLS 1.3 stack incurs:
//!
//! * **Full handshake** — ClientHello → {ServerHello, EncryptedExtensions,
//!   Certificate, CertificateVerify, Finished} is one round trip; the
//!   client's Finished rides with the first application data. The server
//!   flight carries the certificate chain (several kilobytes).
//! * **PSK resumption** — still one round trip in TLS 1.3 but the server
//!   flight shrinks to a few hundred bytes and both sides skip certificate
//!   crypto.
//! * Asymmetric-crypto processing time is charged on both sides.

use netsim::{Path, SimDuration, SimRng};

use crate::error::{TransportError, TransportErrorKind};
use crate::flight::{exchange, RetryPolicy};
use crate::tcp::TcpConnection;

/// TLS configuration for a client connection attempt.
#[derive(Debug, Clone, Copy)]
pub struct TlsConfig {
    /// Size of the ClientHello flight.
    pub client_hello_bytes: usize,
    /// Size of the server's full-handshake flight (dominated by the
    /// certificate chain; ~4 KB is typical for a Let's Encrypt chain).
    pub server_flight_bytes: usize,
    /// Size of the server flight under PSK resumption.
    pub resumed_flight_bytes: usize,
    /// Server-side asymmetric crypto time (signing / key exchange).
    pub server_crypto: SimDuration,
    /// Client-side crypto time (verification / key exchange).
    pub client_crypto: SimDuration,
    /// Handshake retransmission policy.
    pub policy: RetryPolicy,
}

impl Default for TlsConfig {
    fn default() -> Self {
        TlsConfig {
            client_hello_bytes: 350,
            server_flight_bytes: 4200,
            resumed_flight_bytes: 350,
            server_crypto: SimDuration::from_micros(700),
            client_crypto: SimDuration::from_micros(500),
            policy: RetryPolicy {
                initial_rto: SimDuration::from_secs(1),
                backoff: 2,
                max_attempts: 3,
                max_rto: SimDuration::from_secs(4),
            },
        }
    }
}

/// A resumption ticket minted by a completed handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTicket {
    /// Opaque ticket identity (for tests and tracing).
    pub id: u64,
}

/// Server-side TLS behaviour knobs (modelling broken deployments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TlsServerBehavior {
    /// Normal, valid certificate.
    #[default]
    Normal,
    /// Presents an expired/invalid certificate: handshake completes a round
    /// trip then the client aborts.
    BadCertificate,
    /// Never completes the handshake (middlebox interference).
    Stall,
}

/// An established TLS session over a TCP connection.
#[derive(Debug)]
pub struct TlsSession {
    /// Whether this session was resumed from a ticket.
    pub resumed: bool,
    /// Ticket for resuming a future session.
    pub ticket: SessionTicket,
    /// Time the handshake consumed.
    pub handshake_time: SimDuration,
}

impl TlsSession {
    /// Runs the TLS 1.3 handshake over an established TCP connection.
    ///
    /// Passing a `ticket` attempts PSK resumption. Returns the session and
    /// the handshake duration (already included in the session).
    pub fn handshake(
        tcp: &mut TcpConnection,
        path: &Path,
        config: TlsConfig,
        behavior: TlsServerBehavior,
        ticket: Option<SessionTicket>,
        rng: &mut SimRng,
    ) -> Result<TlsSession, TransportError> {
        if behavior == TlsServerBehavior::Stall {
            // The handshake never completes; the client burns its full
            // retransmission schedule then reports a handshake failure.
            let mut elapsed = SimDuration::ZERO;
            let mut rto = config.policy.initial_rto;
            for _ in 0..config.policy.max_attempts {
                elapsed += rto;
                rto = std::cmp::min(
                    rto.times(config.policy.backoff as u64),
                    config.policy.max_rto,
                );
            }
            return Err(TransportError::new(
                TransportErrorKind::TlsHandshakeFailure,
                elapsed,
            ));
        }

        let resumed = ticket.is_some();
        // PSK resumption skips certificate signing/verification on both
        // sides; charge a quarter of the asymmetric-crypto budget.
        let (server_bytes, server_crypto, client_crypto) = if resumed {
            (
                config.resumed_flight_bytes,
                SimDuration::from_nanos(config.server_crypto.as_nanos() / 4),
                SimDuration::from_nanos(config.client_crypto.as_nanos() / 4),
            )
        } else {
            (
                config.server_flight_bytes,
                config.server_crypto,
                config.client_crypto,
            )
        };

        let out = exchange(
            path,
            config.client_hello_bytes,
            server_bytes,
            server_crypto,
            config.policy,
            TransportErrorKind::TlsHandshakeFailure,
            rng,
        )?;
        let handshake_time = out.elapsed + client_crypto;

        if behavior == TlsServerBehavior::BadCertificate {
            return Err(TransportError::new(
                TransportErrorKind::CertificateInvalid,
                handshake_time,
            ));
        }

        // Derive a deterministic ticket id from the connection's timing.
        let id = handshake_time.as_nanos() ^ (tcp.srtt().as_nanos() << 1);
        Ok(TlsSession {
            resumed,
            ticket: SessionTicket { id },
            handshake_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpConfig;
    use netsim::geo::cities;
    use netsim::AccessProfile;

    fn path() -> Path {
        Path::between(
            cities::COLUMBUS_OH.point,
            AccessProfile::cloud_vm(),
            cities::ASHBURN_VA.point,
            AccessProfile::datacenter(),
        )
    }

    fn tcp(rng: &mut SimRng) -> TcpConnection {
        TcpConnection::connect(&path(), false, rng, TcpConfig::default())
            .unwrap()
            .0
    }

    #[test]
    fn full_handshake_costs_about_one_rtt_plus_crypto() {
        let mut rng = SimRng::from_seed(1);
        let mut conn = tcp(&mut rng);
        let sess = TlsSession::handshake(
            &mut conn,
            &path(),
            TlsConfig::default(),
            TlsServerBehavior::Normal,
            None,
            &mut rng,
        )
        .unwrap();
        assert!(!sess.resumed);
        let ms = sess.handshake_time.as_millis_f64();
        assert!((2.0..40.0).contains(&ms), "handshake {ms} ms");
    }

    #[test]
    fn resumption_is_cheaper_in_the_median() {
        // Means are dominated by rare 1-second RTO outliers, so compare the
        // medians — the statistic the paper reports throughout.
        let mut rng = SimRng::from_seed(2);
        let p = path();
        let n = 400;
        let mut full = Vec::with_capacity(n);
        let mut res = Vec::with_capacity(n);
        for _ in 0..n {
            let mut conn = tcp(&mut rng);
            let s1 = TlsSession::handshake(
                &mut conn,
                &p,
                TlsConfig::default(),
                TlsServerBehavior::Normal,
                None,
                &mut rng,
            )
            .unwrap();
            full.push(s1.handshake_time.as_millis_f64());
            let mut conn2 = tcp(&mut rng);
            let s2 = TlsSession::handshake(
                &mut conn2,
                &p,
                TlsConfig::default(),
                TlsServerBehavior::Normal,
                Some(s1.ticket),
                &mut rng,
            )
            .unwrap();
            assert!(s2.resumed);
            res.push(s2.handshake_time.as_millis_f64());
        }
        full.sort_by(|a, b| a.partial_cmp(b).unwrap());
        res.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (mf, mr) = (full[n / 2], res[n / 2]);
        // PSK skips ~0.9 ms of asymmetric crypto in this configuration.
        assert!(mr < mf - 0.4, "resumed median {mr} vs full median {mf}");
    }

    #[test]
    fn bad_certificate_fails_after_the_round_trip() {
        let mut rng = SimRng::from_seed(3);
        let mut conn = tcp(&mut rng);
        let err = TlsSession::handshake(
            &mut conn,
            &path(),
            TlsConfig::default(),
            TlsServerBehavior::BadCertificate,
            None,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::CertificateInvalid);
        assert!(err.elapsed.as_millis_f64() > 1.0);
        assert!(err.is_connection_failure());
    }

    #[test]
    fn stall_burns_full_retry_schedule() {
        let mut rng = SimRng::from_seed(4);
        let mut conn = tcp(&mut rng);
        let err = TlsSession::handshake(
            &mut conn,
            &path(),
            TlsConfig::default(),
            TlsServerBehavior::Stall,
            None,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::TlsHandshakeFailure);
        // 1 + 2 + 4 seconds.
        assert_eq!(err.elapsed, SimDuration::from_secs(7));
    }

    #[test]
    fn handshake_over_blackhole_times_out() {
        let mut rng = SimRng::from_seed(5);
        let mut conn = tcp(&mut rng);
        let mut p = path();
        p.extra_loss = 1.0;
        let err = TlsSession::handshake(
            &mut conn,
            &p,
            TlsConfig::default(),
            TlsServerBehavior::Normal,
            None,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::TlsHandshakeFailure);
    }
}
