//! Property-based tests for the transport layer: HPACK and HTTP/2 framing
//! round trips over arbitrary inputs, and flight-exchange invariants.

use bytes::Bytes;
use proptest::prelude::*;

use netsim::geo::cities;
use netsim::{AccessProfile, Path, SimDuration, SimRng};
use transport::http2::frames::{Frame, FrameType};
use transport::http2::hpack::{Decoder, Encoder, HeaderField};
use transport::{exchange, RetryPolicy, TransportErrorKind};

fn arb_header() -> impl Strategy<Value = HeaderField> {
    // Header names are lowercase tokens; values printable ASCII.
    ("[a-z][a-z0-9-]{0,20}", "[ -~]{0,40}").prop_map(|(n, v)| HeaderField::new(n, v))
}

fn arb_pseudo_or_header() -> impl Strategy<Value = HeaderField> {
    prop_oneof![
        arb_header(),
        Just(HeaderField::new(":method", "GET")),
        Just(HeaderField::new(":method", "POST")),
        Just(HeaderField::new(":scheme", "https")),
        ("[a-z0-9.-]{1,30}").prop_map(|a| HeaderField::new(":authority", a)),
        ("[ -~]{1,60}").prop_map(|p| HeaderField::new(":path", p)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hpack_round_trips_arbitrary_header_lists(
        lists in proptest::collection::vec(
            proptest::collection::vec(arb_pseudo_or_header(), 0..12),
            1..5
        )
    ) {
        // One encoder/decoder pair across several blocks (shared dynamic
        // table state must stay in sync).
        let mut enc = Encoder::default();
        let mut dec = Decoder::default();
        for fields in &lists {
            let block = enc.encode(fields);
            let back = dec.decode(&block).unwrap();
            prop_assert_eq!(&back, fields);
        }
    }

    #[test]
    fn hpack_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut dec = Decoder::default();
        let _ = dec.decode(&bytes);
    }

    #[test]
    fn hpack_small_tables_still_round_trip(
        table_size in 0usize..200,
        fields in proptest::collection::vec(arb_header(), 0..10),
    ) {
        let mut enc = Encoder::new(table_size);
        let mut dec = Decoder::new(table_size);
        let block = enc.encode(&fields);
        prop_assert_eq!(dec.decode(&block).unwrap(), fields);
    }

    #[test]
    fn frames_round_trip(
        specs in proptest::collection::vec(
            (0u8..12, any::<u8>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..200)),
            0..8
        )
    ) {
        let frames: Vec<Frame> = specs
            .into_iter()
            .map(|(t, f, sid, payload)| {
                Frame::new(FrameType::from_u8(t), f, sid & 0x7FFF_FFFF, payload)
            })
            .collect();
        let wire = Frame::encode_all(&frames, false);
        let back = Frame::decode_all(wire).unwrap();
        prop_assert_eq!(back, frames);
    }

    #[test]
    fn frame_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Frame::decode_all(Bytes::from(bytes));
    }

    #[test]
    fn exchange_time_is_bounded_by_the_retry_schedule(
        seed in any::<u64>(),
        extra_loss in 0.0f64..1.0,
        server_ms in 0u64..100,
    ) {
        let mut path = Path::between(
            cities::COLUMBUS_OH.point,
            AccessProfile::cloud_vm(),
            cities::FRANKFURT.point,
            AccessProfile::datacenter(),
        );
        path.extra_loss = extra_loss;
        let mut rng = SimRng::from_seed(seed);
        let policy = RetryPolicy::tcp_syn();
        // Worst case: all attempts burn their RTO: 1+2+4+8 = 15 s.
        let ceiling = SimDuration::from_secs(15);
        match exchange(
            &path, 100, 200,
            SimDuration::from_millis(server_ms),
            policy,
            TransportErrorKind::ConnectTimeout,
            &mut rng,
        ) {
            Ok(out) => {
                prop_assert!(out.attempts >= 1 && out.attempts <= policy.max_attempts);
                prop_assert!(out.final_rtt <= out.elapsed);
                // elapsed = burned RTOs + final rtt <= ceiling + final rtt.
                prop_assert!(out.elapsed <= ceiling + out.final_rtt);
            }
            Err(e) => {
                prop_assert_eq!(e.elapsed, ceiling);
            }
        }
    }

    #[test]
    fn rtt_estimator_stays_positive(rtts in proptest::collection::vec(1u64..10_000, 1..100)) {
        let mut est = transport::RttEstimator::new(SimDuration::from_millis(rtts[0]));
        for &ms in &rtts[1..] {
            est.update(SimDuration::from_millis(ms));
        }
        prop_assert!(est.srtt() > SimDuration::ZERO);
        let min_rto = SimDuration::from_millis(200);
        prop_assert!(est.rto(min_rto) >= min_rto);
        // SRTT stays within the observed range (it is a convex combination).
        let max = *rtts.iter().max().unwrap();
        prop_assert!(est.srtt() <= SimDuration::from_millis(max + 1));
    }
}
