//! Classification axes for catalog entries: performance profile, health
//! class and deployment shape, mapped onto `resolver-sim` building blocks.

use netsim::geo::City;
use netsim::{AccessProfile, Deployment, IcmpPolicy, Site};
use resolver_sim::{HealthModel, ResolverInstance, ServerProfile};

/// Server-side performance class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileClass {
    /// Large production service (mainstream operators, major ISPs).
    Production,
    /// Competent mid-size operation.
    Midsize,
    /// Hobbyist / community box.
    Hobbyist,
    /// Oblivious-DoH target behind a relay.
    OdohTarget,
}

impl ProfileClass {
    /// The corresponding simulator profile.
    pub fn server_profile(self) -> ServerProfile {
        match self {
            ProfileClass::Production => ServerProfile::production(),
            ProfileClass::Midsize => ServerProfile::midsize(),
            ProfileClass::Hobbyist => ServerProfile::hobbyist(),
            ProfileClass::OdohTarget => ServerProfile::odoh_target(),
        }
    }
}

/// Reliability class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthClass {
    /// ≈99.9 % probe success.
    Reliable,
    /// ≈99 % probe success.
    Typical,
    /// ≈90 % probe success.
    Flaky,
    /// Rarely reachable; dominates the campaign's error count.
    MostlyDown,
}

impl HealthClass {
    /// The corresponding simulator health model.
    pub fn health_model(self) -> HealthModel {
        match self {
            HealthClass::Reliable => HealthModel::reliable(),
            HealthClass::Typical => HealthModel::typical(),
            HealthClass::Flaky => HealthModel::flaky(),
            HealthClass::MostlyDown => HealthModel::mostly_down(),
        }
    }
}

/// Connection-reuse and session-resumption policy of a deployment class:
/// how long TLS 1.3 session tickets stay valid, how long an idle HTTP/2 or
/// QUIC connection is kept in the pool, and whether (and how often) the
/// server accepts QUIC 0-RTT early data.
///
/// All durations are whole simulated seconds so the policy is plain data —
/// `measure::session` converts to `SimDuration` at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReusePolicy {
    /// TLS 1.3 ticket lifetime, seconds (0 = tickets never issued).
    pub ticket_lifetime_s: u64,
    /// Server-side idle timeout for pooled connections, seconds
    /// (0 = connections close immediately after each exchange).
    pub pool_idle_timeout_s: u64,
    /// True when the server accepts QUIC 0-RTT early data on resumption.
    pub zero_rtt: bool,
    /// Anti-replay window: 0-RTT flights accepted per issued ticket before
    /// the server forces a full handshake again.
    pub zero_rtt_window: u32,
}

impl ReusePolicy {
    /// Production operators: long tickets, generous keepalive, 0-RTT on.
    pub fn production() -> ReusePolicy {
        ReusePolicy {
            ticket_lifetime_s: 86_400,
            pool_idle_timeout_s: 240,
            zero_rtt: true,
            zero_rtt_window: 8,
        }
    }

    /// Mid-size operations: RFC-default-ish tickets, moderate keepalive.
    pub fn midsize() -> ReusePolicy {
        ReusePolicy {
            ticket_lifetime_s: 7_200,
            pool_idle_timeout_s: 60,
            zero_rtt: true,
            zero_rtt_window: 4,
        }
    }

    /// Hobbyist boxes: short tickets, aggressive idle close, no 0-RTT.
    pub fn hobbyist() -> ReusePolicy {
        ReusePolicy {
            ticket_lifetime_s: 600,
            pool_idle_timeout_s: 10,
            zero_rtt: false,
            zero_rtt_window: 0,
        }
    }

    /// No reuse at all (ODoH targets: every request rides a fresh
    /// relayed connection, so client-side session state never applies).
    pub fn none() -> ReusePolicy {
        ReusePolicy {
            ticket_lifetime_s: 0,
            pool_idle_timeout_s: 0,
            zero_rtt: false,
            zero_rtt_window: 0,
        }
    }

    /// The policy a performance class ships with.
    pub fn of(profile: ProfileClass) -> ReusePolicy {
        match profile {
            ProfileClass::Production => ReusePolicy::production(),
            ProfileClass::Midsize => ReusePolicy::midsize(),
            ProfileClass::Hobbyist => ReusePolicy::hobbyist(),
            ProfileClass::OdohTarget => ReusePolicy::none(),
        }
    }

    /// True when the policy permits any form of reuse or resumption.
    pub fn allows_any(&self) -> bool {
        self.ticket_lifetime_s > 0 || self.pool_idle_timeout_s > 0
    }
}

/// One resolver of the measured population, with everything needed to
/// instantiate its simulated deployment.
#[derive(Debug, Clone)]
pub struct ResolverEntry {
    /// DoH hostname, e.g. `dns.google`.
    pub hostname: &'static str,
    /// Operating organisation.
    pub operator: &'static str,
    /// Whether the resolver ships as a browser default (Table 1 operators:
    /// Cloudflare, Google, Quad9, NextDNS, CleanBrowsing, OpenDNS).
    pub mainstream: bool,
    /// DoH URI path (RFC 8484 convention is `/dns-query`).
    pub doh_path: &'static str,
    /// Points of presence; one city means unicast.
    pub cities: Vec<City>,
    /// True when multiple sites are anycast together.
    pub anycast: bool,
    /// True when the sites are hobbyist-grade (worse access network).
    pub small_site: bool,
    /// Performance class.
    pub profile: ProfileClass,
    /// Reliability class.
    pub health: HealthClass,
    /// True when the service drops ICMP echo (no ping data in figures).
    pub icmp_filtered: bool,
    /// Geolocation override: what a GeoLite2-style lookup reports when it
    /// disagrees with the true primary site (anycast confusion), or
    /// `Region::Unknown` for the resolvers the paper could not locate.
    pub region_override: Option<netsim::Region>,
    /// Extra one-way milliseconds observed only from residential clients
    /// (poor home-ISP peering; the paper's `dns.twnic.tw` anomaly).
    pub home_extra_ms: f64,
    /// Extra per-traversal loss applied to this service's sites.
    pub extra_loss: f64,
    /// Override of the profile's median processing time, ms (0 keeps the
    /// class default). Used to calibrate fine orderings among the fastest
    /// resolvers.
    pub proc_override_ms: f64,
    /// True when the server only speaks HTTP/1.1 (no h2 ALPN) — common
    /// among hobbyist deployments.
    pub http1_only: bool,
}

impl ResolverEntry {
    /// The region the paper's geolocation step assigns this resolver.
    pub fn region(&self) -> netsim::Region {
        self.region_override.unwrap_or(self.cities[0].region)
    }

    /// The connection-reuse policy this resolver's deployment class runs.
    pub fn reuse_policy(&self) -> ReusePolicy {
        ReusePolicy::of(self.profile)
    }

    /// The key hostnames of one operator coalesce under: a client that
    /// already holds a session to any of the operator's names may reuse
    /// it for the others (RFC 8336-style origin coalescing, modeled at
    /// the operator granularity).
    pub fn coalesce_key(&self) -> &'static str {
        self.operator
    }

    /// Builds the simulated deployment + servers for this entry.
    pub fn instantiate(&self) -> ResolverInstance {
        let access = if self.small_site {
            AccessProfile::small_server()
        } else {
            AccessProfile::datacenter()
        };
        let sites: Vec<Site> = self
            .cities
            .iter()
            .map(|c| Site {
                city: *c,
                access,
                extra_loss: self.extra_loss,
            })
            .collect();
        let deployment = if self.anycast && sites.len() > 1 {
            Deployment::anycast(sites)
        } else {
            // detlint:allow(unwrap, catalog entries always list at least one city)
            Deployment::unicast(sites.into_iter().next().expect("at least one site"))
        };
        let mut profile = self.profile.server_profile();
        if self.proc_override_ms > 0.0 {
            profile.proc_median_ms = self.proc_override_ms;
        }
        let icmp = if self.icmp_filtered {
            IcmpPolicy::Filtered
        } else {
            IcmpPolicy::Respond
        };
        ResolverInstance::new(
            self.hostname,
            deployment,
            profile,
            icmp,
            self.health.health_model(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;

    fn sample_entry() -> ResolverEntry {
        ResolverEntry {
            hostname: "dns.test",
            operator: "Test",
            mainstream: false,
            doh_path: "/dns-query",
            cities: vec![cities::FRANKFURT, cities::SEOUL],
            anycast: true,
            small_site: false,
            profile: ProfileClass::Midsize,
            health: HealthClass::Typical,
            icmp_filtered: false,
            region_override: None,
            home_extra_ms: 0.0,
            extra_loss: 0.0,
            proc_override_ms: 0.0,
            http1_only: false,
        }
    }

    #[test]
    fn instantiation_builds_matching_deployment() {
        let inst = sample_entry().instantiate();
        assert_eq!(inst.hostname, "dns.test");
        assert_eq!(inst.servers.len(), 2);
        assert!(inst.deployment.is_replicated());
    }

    #[test]
    fn single_city_is_unicast_even_if_anycast_flagged() {
        let mut e = sample_entry();
        e.cities = vec![cities::MALMO];
        let inst = e.instantiate();
        assert!(!inst.deployment.is_replicated());
    }

    #[test]
    fn region_override_wins() {
        let mut e = sample_entry();
        assert_eq!(e.region(), netsim::Region::Europe);
        e.region_override = Some(netsim::Region::NorthAmerica);
        assert_eq!(e.region(), netsim::Region::NorthAmerica);
    }

    #[test]
    fn proc_override_applies() {
        let mut e = sample_entry();
        e.proc_override_ms = 9.0;
        let inst = e.instantiate();
        assert_eq!(inst.servers[0].profile.proc_median_ms, 9.0);
    }

    #[test]
    fn reuse_policies_order_by_provisioning() {
        let prod = ReusePolicy::production();
        let mid = ReusePolicy::midsize();
        let hob = ReusePolicy::hobbyist();
        assert!(prod.ticket_lifetime_s > mid.ticket_lifetime_s);
        assert!(mid.ticket_lifetime_s > hob.ticket_lifetime_s);
        assert!(prod.pool_idle_timeout_s > mid.pool_idle_timeout_s);
        assert!(mid.pool_idle_timeout_s > hob.pool_idle_timeout_s);
        assert!(prod.zero_rtt && mid.zero_rtt && !hob.zero_rtt);
        assert!(!ReusePolicy::none().allows_any());
        assert!(hob.allows_any());
        assert_eq!(
            ReusePolicy::of(ProfileClass::OdohTarget),
            ReusePolicy::none()
        );
    }

    #[test]
    fn entry_exposes_policy_and_coalesce_key() {
        let e = sample_entry();
        assert_eq!(e.reuse_policy(), ReusePolicy::midsize());
        assert_eq!(e.coalesce_key(), "Test");
    }

    #[test]
    fn classes_map_to_profiles() {
        assert!(
            ProfileClass::Production.server_profile().proc_median_ms
                < ProfileClass::Hobbyist.server_profile().proc_median_ms
        );
        assert!(
            HealthClass::Reliable.health_model().failure_prob()
                < HealthClass::MostlyDown.health_model().failure_prob()
        );
    }
}
