//! Classification axes for catalog entries: performance profile, health
//! class and deployment shape, mapped onto `resolver-sim` building blocks.

use netsim::geo::City;
use netsim::{AccessProfile, Deployment, IcmpPolicy, Site};
use resolver_sim::{HealthModel, ResolverInstance, ServerProfile};

/// Server-side performance class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileClass {
    /// Large production service (mainstream operators, major ISPs).
    Production,
    /// Competent mid-size operation.
    Midsize,
    /// Hobbyist / community box.
    Hobbyist,
    /// Oblivious-DoH target behind a relay.
    OdohTarget,
}

impl ProfileClass {
    /// The corresponding simulator profile.
    pub fn server_profile(self) -> ServerProfile {
        match self {
            ProfileClass::Production => ServerProfile::production(),
            ProfileClass::Midsize => ServerProfile::midsize(),
            ProfileClass::Hobbyist => ServerProfile::hobbyist(),
            ProfileClass::OdohTarget => ServerProfile::odoh_target(),
        }
    }
}

/// Reliability class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthClass {
    /// ≈99.9 % probe success.
    Reliable,
    /// ≈99 % probe success.
    Typical,
    /// ≈90 % probe success.
    Flaky,
    /// Rarely reachable; dominates the campaign's error count.
    MostlyDown,
}

impl HealthClass {
    /// The corresponding simulator health model.
    pub fn health_model(self) -> HealthModel {
        match self {
            HealthClass::Reliable => HealthModel::reliable(),
            HealthClass::Typical => HealthModel::typical(),
            HealthClass::Flaky => HealthModel::flaky(),
            HealthClass::MostlyDown => HealthModel::mostly_down(),
        }
    }
}

/// One resolver of the measured population, with everything needed to
/// instantiate its simulated deployment.
#[derive(Debug, Clone)]
pub struct ResolverEntry {
    /// DoH hostname, e.g. `dns.google`.
    pub hostname: &'static str,
    /// Operating organisation.
    pub operator: &'static str,
    /// Whether the resolver ships as a browser default (Table 1 operators:
    /// Cloudflare, Google, Quad9, NextDNS, CleanBrowsing, OpenDNS).
    pub mainstream: bool,
    /// DoH URI path (RFC 8484 convention is `/dns-query`).
    pub doh_path: &'static str,
    /// Points of presence; one city means unicast.
    pub cities: Vec<City>,
    /// True when multiple sites are anycast together.
    pub anycast: bool,
    /// True when the sites are hobbyist-grade (worse access network).
    pub small_site: bool,
    /// Performance class.
    pub profile: ProfileClass,
    /// Reliability class.
    pub health: HealthClass,
    /// True when the service drops ICMP echo (no ping data in figures).
    pub icmp_filtered: bool,
    /// Geolocation override: what a GeoLite2-style lookup reports when it
    /// disagrees with the true primary site (anycast confusion), or
    /// `Region::Unknown` for the resolvers the paper could not locate.
    pub region_override: Option<netsim::Region>,
    /// Extra one-way milliseconds observed only from residential clients
    /// (poor home-ISP peering; the paper's `dns.twnic.tw` anomaly).
    pub home_extra_ms: f64,
    /// Extra per-traversal loss applied to this service's sites.
    pub extra_loss: f64,
    /// Override of the profile's median processing time, ms (0 keeps the
    /// class default). Used to calibrate fine orderings among the fastest
    /// resolvers.
    pub proc_override_ms: f64,
    /// True when the server only speaks HTTP/1.1 (no h2 ALPN) — common
    /// among hobbyist deployments.
    pub http1_only: bool,
}

impl ResolverEntry {
    /// The region the paper's geolocation step assigns this resolver.
    pub fn region(&self) -> netsim::Region {
        self.region_override.unwrap_or(self.cities[0].region)
    }

    /// Builds the simulated deployment + servers for this entry.
    pub fn instantiate(&self) -> ResolverInstance {
        let access = if self.small_site {
            AccessProfile::small_server()
        } else {
            AccessProfile::datacenter()
        };
        let sites: Vec<Site> = self
            .cities
            .iter()
            .map(|c| Site {
                city: *c,
                access,
                extra_loss: self.extra_loss,
            })
            .collect();
        let deployment = if self.anycast && sites.len() > 1 {
            Deployment::anycast(sites)
        } else {
            // detlint:allow(unwrap, catalog entries always list at least one city)
            Deployment::unicast(sites.into_iter().next().expect("at least one site"))
        };
        let mut profile = self.profile.server_profile();
        if self.proc_override_ms > 0.0 {
            profile.proc_median_ms = self.proc_override_ms;
        }
        let icmp = if self.icmp_filtered {
            IcmpPolicy::Filtered
        } else {
            IcmpPolicy::Respond
        };
        ResolverInstance::new(
            self.hostname,
            deployment,
            profile,
            icmp,
            self.health.health_model(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;

    fn sample_entry() -> ResolverEntry {
        ResolverEntry {
            hostname: "dns.test",
            operator: "Test",
            mainstream: false,
            doh_path: "/dns-query",
            cities: vec![cities::FRANKFURT, cities::SEOUL],
            anycast: true,
            small_site: false,
            profile: ProfileClass::Midsize,
            health: HealthClass::Typical,
            icmp_filtered: false,
            region_override: None,
            home_extra_ms: 0.0,
            extra_loss: 0.0,
            proc_override_ms: 0.0,
            http1_only: false,
        }
    }

    #[test]
    fn instantiation_builds_matching_deployment() {
        let inst = sample_entry().instantiate();
        assert_eq!(inst.hostname, "dns.test");
        assert_eq!(inst.servers.len(), 2);
        assert!(inst.deployment.is_replicated());
    }

    #[test]
    fn single_city_is_unicast_even_if_anycast_flagged() {
        let mut e = sample_entry();
        e.cities = vec![cities::MALMO];
        let inst = e.instantiate();
        assert!(!inst.deployment.is_replicated());
    }

    #[test]
    fn region_override_wins() {
        let mut e = sample_entry();
        assert_eq!(e.region(), netsim::Region::Europe);
        e.region_override = Some(netsim::Region::NorthAmerica);
        assert_eq!(e.region(), netsim::Region::NorthAmerica);
    }

    #[test]
    fn proc_override_applies() {
        let mut e = sample_entry();
        e.proc_override_ms = 9.0;
        let inst = e.instantiate();
        assert_eq!(inst.servers[0].profile.proc_median_ms, 9.0);
    }

    #[test]
    fn classes_map_to_profiles() {
        assert!(
            ProfileClass::Production.server_profile().proc_median_ms
                < ProfileClass::Hobbyist.server_profile().proc_median_ms
        );
        assert!(
            HealthClass::Reliable.health_model().failure_prob()
                < HealthClass::MostlyDown.health_model().failure_prob()
        );
    }
}
