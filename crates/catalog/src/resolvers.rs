//! The measured resolver population — every hostname from the paper's
//! Appendix A.2, plus `dns.cloudflare.com` which the results text references
//! — with a deployment profile per entry.
//!
//! Profiles are grounded in public knowledge of each operator (anycast
//! footprint, organisation size, hosting style) and calibrated so the
//! paper's findings reproduce: mainstream resolvers are globally anycast;
//! most non-mainstream ones are single-site; and the four crossover
//! resolvers (`ordns.he.net`, `freedns.controld.com`, `dns.brahma.world`,
//! `dns.alidns.com`) have the local points of presence that let them beat
//! mainstream resolvers from the paper's stated vantage points.
//!
//! Region assignment mirrors the paper's GeoLite2 step, including its
//! anycast confusions (e.g. the `odoh-target-*.alekberg.net` services are
//! hosted in Europe but geolocate to North America, which is why they appear
//! in the paper's North-America figures).

use netsim::geo::cities::*;
use netsim::geo::City;
use netsim::Region;

use crate::profile::{HealthClass, ProfileClass, ResolverEntry};

fn base(hostname: &'static str, operator: &'static str, cities: Vec<City>) -> ResolverEntry {
    ResolverEntry {
        hostname,
        operator,
        mainstream: false,
        doh_path: "/dns-query",
        cities,
        anycast: false,
        small_site: false,
        profile: ProfileClass::Midsize,
        health: HealthClass::Typical,
        icmp_filtered: false,
        region_override: None,
        home_extra_ms: 0.0,
        extra_loss: 0.0,
        proc_override_ms: 0.0,
        http1_only: false,
    }
}

/// Cloudflare's anycast footprint (measurement-relevant subset; the
/// nearest site to the Chicago homes and the Ohio instance is Ashburn).
fn cloudflare_sites() -> Vec<City> {
    vec![
        ASHBURN_VA,
        LOS_ANGELES,
        FRANKFURT,
        LONDON,
        TOKYO,
        SINGAPORE,
        SYDNEY,
    ]
}

/// Google Public DNS footprint.
fn google_sites() -> Vec<City> {
    vec![ASHBURN_VA, FRANKFURT, TOKYO, SINGAPORE, SYDNEY]
}

/// Quad9 footprint (Swiss foundation; primary US presence plus Zurich).
fn quad9_sites() -> Vec<City> {
    vec![ASHBURN_VA, ZURICH, FRANKFURT, TOKYO, SYDNEY]
}

/// NextDNS footprint.
fn nextdns_sites() -> Vec<City> {
    vec![NEW_YORK, FRANKFURT, TOKYO, SYDNEY]
}

/// Hurricane Electric: a global ISP with dense US presence — including
/// Chicago, which is what lets `ordns.he.net` beat every mainstream
/// resolver from the paper's Chicago home vantage points.
fn hurricane_sites() -> Vec<City> {
    vec![
        FREMONT_CA, CHICAGO, NEW_YORK, ASHBURN_VA, FRANKFURT, LONDON, TOKYO,
    ]
}

fn mk_cloudflare(hostname: &'static str) -> ResolverEntry {
    let mut e = base(hostname, "Cloudflare", cloudflare_sites());
    e.mainstream = true;
    e.anycast = true;
    e.profile = ProfileClass::Production;
    e.health = HealthClass::Reliable;
    e.proc_override_ms = 0.70;
    e.region_override = Some(Region::NorthAmerica);
    e
}

fn mk_quad9(hostname: &'static str, region: Region) -> ResolverEntry {
    let mut e = base(hostname, "Quad9", quad9_sites());
    e.mainstream = true;
    e.anycast = true;
    e.profile = ProfileClass::Production;
    e.health = HealthClass::Reliable;
    e.proc_override_ms = 0.35;
    e.region_override = Some(region);
    e
}

fn mk_adguard(hostname: &'static str) -> ResolverEntry {
    // AdGuard is anycast with a European home; not a browser default, so
    // non-mainstream by the paper's definition.
    let mut e = base(hostname, "AdGuard", vec![FRANKFURT, NEW_YORK, TOKYO]);
    e.anycast = true;
    e.profile = ProfileClass::Production;
    e.health = HealthClass::Reliable;
    e.proc_override_ms = 0.8;
    e.region_override = Some(Region::Europe);
    e
}

fn mk_alekberg(hostname: &'static str, city: City, odoh: bool, na_geo: bool) -> ResolverEntry {
    let mut e = base(hostname, "alekberg.net", vec![city]);
    e.profile = if odoh {
        ProfileClass::OdohTarget
    } else {
        ProfileClass::Midsize
    };
    e.health = HealthClass::Typical;
    if na_geo {
        // The ODoH targets geolocate to North America in the paper's data.
        e.region_override = Some(Region::NorthAmerica);
    }
    e
}

/// Builds the full measured population.
pub fn all() -> Vec<ResolverEntry> {
    let mut v: Vec<ResolverEntry> = Vec::with_capacity(80);

    // ---- Mainstream: Cloudflare (4 endpoints) --------------------------
    v.push(mk_cloudflare("dns.cloudflare.com"));
    v.push(mk_cloudflare("1dot1dot1dot1.cloudflare-dns.com"));
    v.push(mk_cloudflare("security.cloudflare-dns.com"));
    v.push(mk_cloudflare("family.cloudflare-dns.com"));

    // ---- Mainstream: Google --------------------------------------------
    {
        let mut e = base("dns.google", "Google", google_sites());
        e.mainstream = true;
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.health = HealthClass::Reliable;
        e.proc_override_ms = 0.42;
        e.region_override = Some(Region::NorthAmerica);
        v.push(e);
    }

    // ---- Mainstream: Quad9 (5 endpoints; anycast geolocation splits
    //      them between North America and Europe, matching the figures) ---
    v.push(mk_quad9("dns.quad9.net", Region::NorthAmerica));
    v.push(mk_quad9("dns9.quad9.net", Region::NorthAmerica));
    v.push(mk_quad9("dns10.quad9.net", Region::Europe));
    v.push(mk_quad9("dns11.quad9.net", Region::Europe));
    v.push(mk_quad9("dns12.quad9.net", Region::Europe));

    // ---- Mainstream: NextDNS -------------------------------------------
    for host in ["dns.nextdns.io", "anycast.dns.nextdns.io"] {
        let mut e = base(host, "NextDNS", nextdns_sites());
        e.mainstream = true;
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.health = HealthClass::Reliable;
        e.proc_override_ms = 0.7;
        e.region_override = Some(Region::NorthAmerica);
        v.push(e);
    }

    // ---- North America, non-mainstream ---------------------------------
    {
        // Hurricane Electric: global ISP, anycast, very fast frontend.
        let mut e = base("ordns.he.net", "Hurricane Electric", hurricane_sites());
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.health = HealthClass::Reliable;
        e.proc_override_ms = 0.30;
        e.region_override = Some(Region::NorthAmerica);
        v.push(e);
    }
    {
        // ControlD: anycast with a Toronto/Chicago heart — beats Google and
        // Cloudflare from the Ohio vantage point.
        let mut e = base(
            "freedns.controld.com",
            "ControlD",
            vec![CHICAGO, TORONTO, FRANKFURT, TOKYO, SYDNEY],
        );
        e.doh_path = "/p0"; // ControlD's free profile path
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.health = HealthClass::Reliable;
        e.proc_override_ms = 0.38;
        e.region_override = Some(Region::NorthAmerica);
        v.push(e);
    }
    {
        // Mullvad: privacy VPN provider; geolocates to North America in the
        // paper's grouping (anycast confusion), true home Stockholm.
        for host in ["doh.mullvad.net", "adblock.doh.mullvad.net"] {
            let mut e = base(host, "Mullvad", vec![NEW_YORK, STOCKHOLM, FRANKFURT]);
            e.anycast = true;
            e.profile = ProfileClass::Production;
            e.health = HealthClass::Reliable;
            e.proc_override_ms = 0.9;
            e.region_override = Some(Region::NorthAmerica);
            v.push(e);
        }
    }
    for (host, city) in [
        ("helios.plan9-dns.com", DALLAS),
        ("kronos.plan9-dns.com", MIAMI),
        ("pluton.plan9-dns.com", FREMONT_CA),
    ] {
        let mut e = base(host, "Plan9-DNS", vec![city]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = HealthClass::Typical;
        v.push(e);
    }
    {
        let mut e = base("doh.safesurfer.io", "SafeSurfer", vec![LOS_ANGELES]);
        e.profile = ProfileClass::Midsize;
        e.icmp_filtered = true;
        v.push(e);
    }
    {
        let mut e = base("dohtrial.att.net", "AT&T (trial)", vec![DALLAS]);
        e.profile = ProfileClass::Midsize;
        e.health = HealthClass::Flaky;
        v.push(e);
    }
    {
        // High response times and variability from home networks, tame from
        // EC2 — the paper calls this resolver out explicitly.
        let mut e = base("doh.la.ahadns.net", "AhaDNS", vec![LOS_ANGELES]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = HealthClass::Flaky;
        e.home_extra_ms = 60.0;
        v.push(e);
    }

    // ---- ODoH targets (hosted in Europe, geolocated to North America) --
    v.push(mk_alekberg(
        "odoh-target.alekberg.net",
        AMSTERDAM,
        true,
        true,
    ));
    v.push(mk_alekberg(
        "odoh-target-noads.alekberg.net",
        AMSTERDAM,
        true,
        true,
    ));
    v.push(mk_alekberg(
        "odoh-target-se.alekberg.net",
        MALMO,
        true,
        true,
    ));
    v.push(mk_alekberg(
        "odoh-target-noads-se.alekberg.net",
        MALMO,
        true,
        true,
    ));

    // ---- Europe, non-mainstream -----------------------------------------
    v.push(mk_adguard("dns.adguard.com"));
    v.push(mk_adguard("dns-unfiltered.adguard.com"));
    v.push(mk_adguard("dns-family.adguard.com"));
    {
        // dns.brahma.world: Frankfurt-hosted and quick — beats
        // dns.cloudflare.com from the Frankfurt vantage point.
        let mut e = base("dns.brahma.world", "Brahma World", vec![FRANKFURT]);
        e.profile = ProfileClass::Production;
        e.health = HealthClass::Reliable;
        e.proc_override_ms = 0.45;
        v.push(e);
    }
    for (host, city) in [
        ("doh.dnscrypt.uk", LONDON),
        ("v.dnscrypt.uk", LONDON),
        ("dns1.ryan-palmer.com", LONDON),
    ] {
        let mut e = base(host, "UK community", vec![city]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        if host == "v.dnscrypt.uk" {
            e.health = HealthClass::Flaky;
        }
        v.push(e);
    }
    {
        // doh.sb (xTom): anycast over Europe and Asia.
        let mut e = base(
            "doh.sb",
            "xTom",
            vec![AMSTERDAM, FRANKFURT, SINGAPORE, TOKYO],
        );
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.proc_override_ms = 0.9;
        e.region_override = Some(Region::Europe);
        v.push(e);
    }
    {
        let mut e = base("doh.libredns.gr", "LibreDNS", vec![ATHENS]);
        e.profile = ProfileClass::Midsize;
        v.push(e);
    }
    // dns0.eu: French public resolver, anycast across Europe only — Table 3
    // shows it fast from Frankfurt, slow from Seoul.
    for host in ["dns0.eu", "open.dns0.eu", "kids.dns0.eu"] {
        let mut e = base(host, "dns0.eu", vec![PARIS, FRANKFURT, AMSTERDAM]);
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.health = HealthClass::Reliable;
        e.proc_override_ms = 0.6;
        v.push(e);
    }
    {
        let mut e = base("dnsforge.de", "dnsforge", vec![BERLIN]);
        e.profile = ProfileClass::Midsize;
        v.push(e);
    }
    {
        let mut e = base("dns.digitalsize.net", "Digitalsize", vec![WARSAW]);
        e.profile = ProfileClass::Midsize;
        v.push(e);
    }
    for host in [
        "dns-doh.dnsforfamily.com",
        "dns-doh-no-safe-search.dnsforfamily.com",
    ] {
        let mut e = base(host, "DNS for Family", vec![FRANKFURT]);
        e.profile = ProfileClass::Midsize;
        v.push(e);
    }
    // alekberg.net conventional DoH endpoints (Europe-geolocated).
    v.push(mk_alekberg("dnsnl.alekberg.net", AMSTERDAM, false, false));
    v.push(mk_alekberg(
        "dnsnl-noads.alekberg.net",
        AMSTERDAM,
        false,
        false,
    ));
    v.push(mk_alekberg("dnsse.alekberg.net", MALMO, false, false));
    v.push(mk_alekberg("dnsse-noads.alekberg.net", MALMO, false, false));
    {
        let mut e = base("dns.njal.la", "Njalla", vec![STOCKHOLM]);
        e.profile = ProfileClass::Midsize;
        e.icmp_filtered = true; // privacy host: drops ping
        v.push(e);
    }
    for host in ["unicast.uncensoreddns.org", "anycast.uncensoreddns.org"] {
        let mut e = base(host, "UncensoredDNS", vec![COPENHAGEN]);
        // The "anycast" endpoint announces from a couple of Danish sites;
        // still effectively European-only.
        e.anycast = host.starts_with("anycast");
        e.profile = ProfileClass::Midsize;
        v.push(e);
    }
    {
        let mut e = base("dns.switch.ch", "SWITCH", vec![ZURICH]);
        e.profile = ProfileClass::Production;
        e.proc_override_ms = 0.7;
        e.health = HealthClass::Reliable;
        v.push(e);
    }
    {
        let mut e = base(
            "dns.digitale-gesellschaft.ch",
            "Digitale Gesellschaft",
            vec![ZURICH],
        );
        e.profile = ProfileClass::Midsize;
        v.push(e);
    }
    {
        let mut e = base("dns.circl.lu", "CIRCL", vec![LUXEMBOURG]);
        e.profile = ProfileClass::Midsize;
        v.push(e);
    }
    {
        let mut e = base("ibksturm.synology.me", "hobbyist (Synology)", vec![ZURICH]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = HealthClass::Flaky;
        e.icmp_filtered = true;
        e.http1_only = true;
        v.push(e);
    }
    {
        // Freifunk München: community network; the slowest resolver from
        // Seoul in Table 3 (569 ms median).
        let mut e = base("doh.ffmuc.net", "Freifunk München", vec![MUNICH]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.extra_loss = 0.002;
        v.push(e);
    }
    {
        let mut e = base("doh.nl.ahadns.net", "AhaDNS", vec![AMSTERDAM]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        v.push(e);
    }
    {
        let mut e = base("chewbacca.meganerd.nl", "MegaNerd", vec![AMSTERDAM]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = HealthClass::MostlyDown;
        e.http1_only = true;
        v.push(e);
    }

    // ---- Asia -----------------------------------------------------------
    {
        let mut e = base("public.dns.iij.jp", "IIJ", vec![TOKYO, OSAKA]);
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.health = HealthClass::Reliable;
        e.proc_override_ms = 0.6;
        v.push(e);
    }
    {
        // Alibaba Public DNS: Seoul-region presence lets it beat the
        // mainstream resolvers from the Seoul vantage point.
        let mut e = base(
            "dns.alidns.com",
            "Alibaba",
            vec![HANGZHOU, SEOUL, SINGAPORE],
        );
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.health = HealthClass::Reliable;
        e.proc_override_ms = 0.5;
        v.push(e);
    }
    {
        let mut e = base("doh.pub", "Tencent", vec![BEIJING, SHANGHAI]);
        e.anycast = true;
        e.profile = ProfileClass::Production;
        e.proc_override_ms = 0.7;
        v.push(e);
    }
    {
        let mut e = base("doh.360.cn", "Qihoo 360", vec![BEIJING]);
        e.profile = ProfileClass::Midsize;
        e.health = HealthClass::Flaky; // cross-border reachability is poor
        e.extra_loss = 0.01;
        v.push(e);
    }
    {
        // Fast from Seoul (29 ms median in Table 2) — Seoul-hosted.
        let mut e = base("dnslow.me", "dnslow.me", vec![SEOUL]);
        e.profile = ProfileClass::Midsize;
        e.health = HealthClass::Flaky;
        v.push(e);
    }
    for host in ["jp.tiar.app", "doh.tiar.app"] {
        let mut e = base(host, "tiar.app", vec![TOKYO]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        if host == "doh.tiar.app" {
            e.icmp_filtered = true;
        }
        v.push(e);
    }
    {
        let mut e = base("dns.therifleman.name", "hobbyist", vec![MUMBAI]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = HealthClass::Flaky;
        e.http1_only = true;
        v.push(e);
    }
    for host in ["dns.bebasid.com", "antivirus.bebasid.com"] {
        // Indonesian community resolver; the paper notes high variability
        // from the Ohio and Frankfurt EC2 instances.
        let mut e = base(host, "BebasID", vec![BANDUNG]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        if host == "antivirus.bebasid.com" {
            e.health = HealthClass::Flaky;
            e.extra_loss = 0.008;
        }
        v.push(e);
    }
    {
        // High ping and response times from home networks but low from EC2
        // (poor residential-ISP peering toward Taiwan).
        let mut e = base("dns.twnic.tw", "TWNIC", vec![TAIPEI]);
        e.profile = ProfileClass::Production;
        e.proc_override_ms = 0.8;
        e.home_extra_ms = 70.0;
        v.push(e);
    }
    {
        let mut e = base("sby-doh.limotelu.org", "Limotelu (Surabaya)", vec![JAKARTA]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = HealthClass::Flaky;
        v.push(e);
    }
    {
        let mut e = base("pdns.itxe.net", "ITXE", vec![SINGAPORE]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = HealthClass::Flaky;
        e.icmp_filtered = true;
        v.push(e);
    }

    // ---- Oceania (measured but not plotted in the paper's figures) ------
    for (host, city) in [
        ("adl.adfilter.net", ADELAIDE),
        ("per.adfilter.net", PERTH),
        ("syd.adfilter.net", SYDNEY),
    ] {
        let mut e = base(host, "AdFilter (AU)", vec![city]);
        e.profile = ProfileClass::Midsize;
        v.push(e);
    }
    for host in ["doh.seby.io", "doh-2.seby.io"] {
        let mut e = base(host, "Seby", vec![SYDNEY]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = if host == "doh-2.seby.io" {
            HealthClass::MostlyDown
        } else {
            HealthClass::Flaky
        };
        v.push(e);
    }

    // ---- Geolocation failures (the paper's "6 resolvers were unable to
    //      return a location"; two remain unlocatable in our data) ---------
    for host in ["puredns.org", "family.puredns.org"] {
        let mut e = base(host, "PureDNS", vec![AMSTERDAM]);
        e.small_site = true;
        e.profile = ProfileClass::Hobbyist;
        e.health = HealthClass::MostlyDown;
        e.region_override = Some(Region::Unknown);
        v.push(e);
    }

    v
}

/// Entries whose operator ships as a browser default (Table 1).
pub fn mainstream() -> Vec<ResolverEntry> {
    all().into_iter().filter(|e| e.mainstream).collect()
}

/// Entries not available as browser defaults.
pub fn non_mainstream() -> Vec<ResolverEntry> {
    all().into_iter().filter(|e| !e.mainstream).collect()
}

/// Entries the paper's geolocation step places in `region`.
pub fn in_region(region: Region) -> Vec<ResolverEntry> {
    all().into_iter().filter(|e| e.region() == region).collect()
}

/// Looks up one entry by hostname.
pub fn find(hostname: &str) -> Option<ResolverEntry> {
    all().into_iter().find(|e| e.hostname == hostname)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_size_and_uniqueness() {
        let entries = all();
        assert_eq!(
            entries.len(),
            76,
            "75 appendix hostnames + dns.cloudflare.com"
        );
        let mut names: Vec<&str> = entries.iter().map(|e| e.hostname).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "hostnames must be unique");
    }

    #[test]
    fn regional_counts_match_the_paper() {
        // §3.2: "18 in North America, 13 in Asia, and 33 in Europe".
        // Our North America count carries two additions: the four
        // odoh-target-* services the paper plots in its NA figures, and
        // dns.cloudflare.com (referenced in the results text but absent
        // from the appendix list).
        let na = in_region(Region::NorthAmerica);
        let non_odoh = na
            .iter()
            .filter(|e| !e.hostname.starts_with("odoh-target"))
            .count();
        assert_eq!(
            non_odoh, 19,
            "18 appendix NA hostnames + dns.cloudflare.com"
        );
        assert_eq!(na.len(), 23, "North America as plotted (incl. ODoH)");
        assert_eq!(in_region(Region::Asia).len(), 13, "Asia");
        assert_eq!(in_region(Region::Europe).len(), 33, "Europe");
        assert_eq!(in_region(Region::Unknown).len(), 2, "unlocatable");
        assert_eq!(in_region(Region::Oceania).len(), 5, "Oceania (unplotted)");
    }

    #[test]
    fn mainstream_set_matches_table1_operators() {
        let ms = mainstream();
        assert_eq!(ms.len(), 12);
        let operators: std::collections::HashSet<&str> = ms.iter().map(|e| e.operator).collect();
        assert_eq!(
            operators,
            ["Cloudflare", "Google", "Quad9", "NextDNS"]
                .into_iter()
                .collect()
        );
        // Every mainstream entry is globally anycast.
        assert!(ms.iter().all(|e| e.anycast && e.cities.len() >= 4));
    }

    #[test]
    fn most_non_mainstream_are_single_site() {
        let nm = non_mainstream();
        let single = nm.iter().filter(|e| e.cities.len() == 1).count();
        assert!(
            single * 10 >= nm.len() * 7,
            "at least 70% of non-mainstream should be unicast: {single}/{}",
            nm.len()
        );
    }

    #[test]
    fn crossover_resolvers_are_present_and_well_placed() {
        let he = find("ordns.he.net").unwrap();
        assert!(he.cities.iter().any(|c| c.name == "Chicago"));
        assert!(!he.mainstream);

        let controld = find("freedns.controld.com").unwrap();
        assert!(controld.cities.iter().any(|c| c.name == "Chicago"));

        let brahma = find("dns.brahma.world").unwrap();
        assert_eq!(brahma.cities[0].name, "Frankfurt");

        let alidns = find("dns.alidns.com").unwrap();
        assert!(alidns.cities.iter().any(|c| c.name == "Seoul"));
        // Mainstream resolvers must NOT have a Seoul site, so AliDNS wins
        // from the Seoul vantage point.
        for e in mainstream() {
            assert!(
                e.cities.iter().all(|c| c.name != "Seoul"),
                "{} has a Seoul site",
                e.hostname
            );
        }
    }

    #[test]
    fn every_entry_instantiates() {
        for e in all() {
            let inst = e.instantiate();
            assert_eq!(inst.servers.len(), inst.deployment.sites.len());
            assert!(!inst.hostname.is_empty());
        }
    }

    #[test]
    fn table2_and_table3_resolvers_exist() {
        for h in [
            "antivirus.bebasid.com",
            "dns.twnic.tw",
            "dnslow.me",
            "jp.tiar.app",
            "public.dns.iij.jp",
            "doh.ffmuc.net",
            "dns0.eu",
            "open.dns0.eu",
            "kids.dns0.eu",
            "dns.njal.la",
        ] {
            assert!(find(h).is_some(), "{h} missing from catalog");
        }
    }

    #[test]
    fn some_resolvers_filter_icmp() {
        let filtered: Vec<&'static str> = all()
            .into_iter()
            .filter(|e| e.icmp_filtered)
            .map(|e| e.hostname)
            .collect();
        assert!(filtered.len() >= 3, "paper: some resolvers drop pings");
        assert!(filtered.contains(&"dns.njal.la"));
    }

    #[test]
    fn error_budget_is_in_the_papers_ballpark() {
        // Aggregate expected probe failure rate ≈ the paper's 5.76 %
        // (311,351 errors / 5,409,632 attempts).
        let entries = all();
        let mean: f64 = entries
            .iter()
            .map(|e| e.health.health_model().failure_prob())
            .sum::<f64>()
            / entries.len() as f64;
        assert!(
            (0.03..0.09).contains(&mean),
            "aggregate failure probability {mean}"
        );
    }
}
