//! Parser for the DNSCrypt project's `public-resolvers.md` list format —
//! the source the paper scraped its resolver population from ("These
//! resolvers were scraped from a list of public DoH resolvers provided by
//! the DNSCrypt protocol developers").
//!
//! The format is markdown-ish:
//!
//! ```text
//! ## resolver-name
//! Free-text description,
//! possibly multiple lines.
//! sdns://AgcAAAAA...
//! ```

use crate::stamps::{Stamp, StampError};

/// One entry of the public-resolvers list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListEntry {
    /// The short name after `##`.
    pub name: String,
    /// Description lines joined with spaces.
    pub description: String,
    /// Parsed stamps (an entry may publish IPv4/IPv6/alternate stamps).
    pub stamps: Vec<Stamp>,
    /// Stamps that failed to parse, kept for diagnostics.
    pub bad_stamps: Vec<(String, StampError)>,
}

impl ListEntry {
    /// The first DoH stamp, if the entry has one.
    pub fn doh_stamp(&self) -> Option<&Stamp> {
        self.stamps.iter().find(|s| matches!(s, Stamp::Doh { .. }))
    }
}

/// Parses a full list document into entries. Content before the first
/// `##` heading (title, preamble) is ignored.
pub fn parse(doc: &str) -> Vec<ListEntry> {
    let mut entries: Vec<ListEntry> = Vec::new();
    let mut current: Option<ListEntry> = None;
    for line in doc.lines() {
        let line = line.trim();
        if let Some(name) = line.strip_prefix("## ") {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            current = Some(ListEntry {
                name: name.trim().to_string(),
                description: String::new(),
                stamps: Vec::new(),
                bad_stamps: Vec::new(),
            });
        } else if let Some(entry) = current.as_mut() {
            if line.starts_with("sdns://") {
                match Stamp::decode(line) {
                    Ok(s) => entry.stamps.push(s),
                    Err(e) => entry.bad_stamps.push((line.to_string(), e)),
                }
            } else if !line.is_empty() && !line.starts_with('#') {
                if !entry.description.is_empty() {
                    entry.description.push(' ');
                }
                entry.description.push_str(line);
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    entries
}

/// Renders the measured catalog back into the list format — the inverse
/// operation, used to regenerate a publishable resolver list from the
/// campaign's population.
pub fn render(entries: &[crate::profile::ResolverEntry]) -> String {
    let mut out = String::from("# Public DoH resolvers (measured population)\n\n");
    for e in entries {
        out.push_str(&format!("## {}\n", e.hostname));
        out.push_str(&format!(
            "Operated by {}. Region: {}.{}\n",
            e.operator,
            e.region(),
            if e.mainstream {
                " Browser default."
            } else {
                ""
            }
        ));
        out.push_str(&Stamp::doh(e.hostname, e.doh_path).encode());
        out.push_str("\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> String {
        let stamp1 = Stamp::doh("dns.example.com", "/dns-query").encode();
        let stamp2 = Stamp::doh("dns6.example.com", "/dns-query").encode();
        format!(
            "# Public resolvers\n\npreamble text\n\n\
             ## example\nA fine resolver,\nno logging.\n{stamp1}\n{stamp2}\n\n\
             ## broken\nHas a bad stamp.\nsdns://!!!notbase64\n\n\
             ## empty-entry\nNo stamps at all.\n"
        )
    }

    #[test]
    fn parses_entries_and_stamps() {
        let entries = parse(&sample_doc());
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].name, "example");
        assert_eq!(entries[0].description, "A fine resolver, no logging.");
        assert_eq!(entries[0].stamps.len(), 2);
        assert_eq!(
            entries[0].doh_stamp().unwrap().endpoint(),
            "dns.example.com"
        );
    }

    #[test]
    fn bad_stamps_are_collected_not_fatal() {
        let entries = parse(&sample_doc());
        assert_eq!(entries[1].stamps.len(), 0);
        assert_eq!(entries[1].bad_stamps.len(), 1);
        assert!(entries[1].bad_stamps[0].0.starts_with("sdns://"));
    }

    #[test]
    fn entry_without_stamps_is_kept() {
        let entries = parse(&sample_doc());
        assert_eq!(entries[2].name, "empty-entry");
        assert!(entries[2].stamps.is_empty());
        assert!(entries[2].doh_stamp().is_none());
    }

    #[test]
    fn preamble_is_ignored() {
        let entries = parse("title junk\nmore junk\n## only\ndesc\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "only");
    }

    #[test]
    fn empty_document() {
        assert!(parse("").is_empty());
        assert!(parse("# just a title\n").is_empty());
    }

    #[test]
    fn render_round_trips_through_parse() {
        let catalog = crate::resolvers::all();
        let doc = render(&catalog);
        let entries = parse(&doc);
        assert_eq!(entries.len(), catalog.len());
        for (entry, original) in entries.iter().zip(&catalog) {
            assert_eq!(entry.name, original.hostname);
            assert_eq!(
                entry.doh_stamp().unwrap().endpoint(),
                original.hostname,
                "stamp endpoint mismatch for {}",
                original.hostname
            );
            assert!(entry.bad_stamps.is_empty());
        }
    }
}
