//! Table 1 of the paper: which encrypted-DNS providers each major browser
//! offers as built-in choices. The providers appearing in any browser's
//! list define the paper's *mainstream* set.

use std::fmt;

/// A major web browser with built-in DoH support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Browser {
    /// Google Chrome.
    Chrome,
    /// Mozilla Firefox.
    Firefox,
    /// Microsoft Edge.
    Edge,
    /// Opera.
    Opera,
    /// Brave.
    Brave,
}

impl Browser {
    /// All browsers in Table 1's row order.
    pub fn all() -> [Browser; 5] {
        [
            Browser::Chrome,
            Browser::Firefox,
            Browser::Edge,
            Browser::Opera,
            Browser::Brave,
        ]
    }
}

impl fmt::Display for Browser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Browser::Chrome => "Chrome",
            Browser::Firefox => "Firefox",
            Browser::Edge => "Edge",
            Browser::Opera => "Opera",
            Browser::Brave => "Brave",
        };
        write!(f, "{s}")
    }
}

/// A DoH provider offered by at least one browser (Table 1's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Provider {
    /// Cloudflare (1.1.1.1).
    Cloudflare,
    /// Google Public DNS.
    Google,
    /// Quad9.
    Quad9,
    /// NextDNS.
    NextDns,
    /// CleanBrowsing.
    CleanBrowsing,
    /// Cisco OpenDNS.
    OpenDns,
}

impl Provider {
    /// All providers in Table 1's column order.
    pub fn all() -> [Provider; 6] {
        [
            Provider::Cloudflare,
            Provider::Google,
            Provider::Quad9,
            Provider::NextDns,
            Provider::CleanBrowsing,
            Provider::OpenDns,
        ]
    }

    /// The operator string used by catalog entries, where the provider has
    /// endpoints in the measured population (CleanBrowsing and OpenDNS do
    /// not appear in the appendix's resolver list).
    pub fn catalog_operator(self) -> Option<&'static str> {
        match self {
            Provider::Cloudflare => Some("Cloudflare"),
            Provider::Google => Some("Google"),
            Provider::Quad9 => Some("Quad9"),
            Provider::NextDns => Some("NextDNS"),
            Provider::CleanBrowsing | Provider::OpenDns => None,
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Provider::Cloudflare => "Cloudflare",
            Provider::Google => "Google",
            Provider::Quad9 => "Quad9",
            Provider::NextDns => "NextDNS",
            Provider::CleanBrowsing => "CleanBrowsing",
            Provider::OpenDns => "OpenDNS",
        };
        write!(f, "{s}")
    }
}

/// Table 1 as data: whether `browser` offers `provider` built in
/// (as of the paper's May 9, 2024 snapshot).
pub fn offers(browser: Browser, provider: Provider) -> bool {
    use Browser::*;
    use Provider::*;
    match browser {
        Chrome => matches!(
            provider,
            Cloudflare | Google | Quad9 | CleanBrowsing | OpenDns
        ),
        Firefox => matches!(provider, Cloudflare | NextDns),
        Edge => true, // Edge lists all six
        Opera => matches!(provider, Cloudflare | Google),
        Brave => true, // Brave lists all six
    }
}

/// The providers offered by a browser.
pub fn providers_of(browser: Browser) -> Vec<Provider> {
    Provider::all()
        .into_iter()
        .filter(|p| offers(browser, *p))
        .collect()
}

/// The number of distinct resolver choices a user of `browser` has.
pub fn choice_count(browser: Browser) -> usize {
    providers_of(browser).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_counts() {
        // Checkmark counts straight from Table 1.
        assert_eq!(choice_count(Browser::Chrome), 5);
        assert_eq!(choice_count(Browser::Firefox), 2);
        assert_eq!(choice_count(Browser::Edge), 6);
        assert_eq!(choice_count(Browser::Opera), 2);
        assert_eq!(choice_count(Browser::Brave), 6);
    }

    #[test]
    fn cloudflare_is_universal() {
        for b in Browser::all() {
            assert!(
                offers(b, Provider::Cloudflare),
                "{b} should offer Cloudflare"
            );
        }
    }

    #[test]
    fn chrome_lacks_nextdns() {
        assert!(!offers(Browser::Chrome, Provider::NextDns));
        assert!(offers(Browser::Firefox, Provider::NextDns));
    }

    #[test]
    fn the_point_of_the_paper_few_choices() {
        // No browser offers more than 6 resolvers, versus the 70+ public
        // DoH deployments the paper measures.
        for b in Browser::all() {
            assert!(choice_count(b) <= 6);
        }
        let population = crate::resolvers::all().len();
        assert!(population > 10 * 6);
    }

    #[test]
    fn catalog_operator_mapping() {
        assert_eq!(Provider::Google.catalog_operator(), Some("Google"));
        assert_eq!(Provider::CleanBrowsing.catalog_operator(), None);
        // Every provider with a catalog operator has mainstream entries.
        for p in Provider::all() {
            if let Some(op) = p.catalog_operator() {
                let hits = crate::resolvers::mainstream()
                    .into_iter()
                    .filter(|e| e.operator == op)
                    .count();
                assert!(hits > 0, "no mainstream entries for {op}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Browser::Firefox.to_string(), "Firefox");
        assert_eq!(Provider::NextDns.to_string(), "NextDNS");
    }
}
