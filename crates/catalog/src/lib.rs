//! # catalog
//!
//! The measured resolver population and its metadata:
//!
//! * [`resolvers`] — every DoH hostname from the paper's Appendix A.2 (plus
//!   `dns.cloudflare.com`, referenced in the results text), each with a
//!   deployment profile grounded in public knowledge of the operator and
//!   calibrated to reproduce the paper's findings.
//! * [`browsers`] — Table 1: the browser × provider matrix that defines the
//!   *mainstream* resolver set.
//! * [`stamps`] — the `sdns://` DNS-stamp codec used by the DNSCrypt
//!   public-resolver list the paper scraped.
//! * [`list_parser`] — parser/renderer for that list's markdown format.
//!
//! ```
//! use netsim::Region;
//!
//! let population = catalog::resolvers::all();
//! assert!(population.len() >= 75);
//! let mainstream = catalog::resolvers::mainstream();
//! assert!(mainstream.iter().all(|e| e.anycast));
//! let asia = catalog::resolvers::in_region(Region::Asia);
//! assert_eq!(asia.len(), 13);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browsers;
pub mod list_parser;
pub mod profile;
pub mod relays;
pub mod resolvers;
pub mod stamps;

pub use browsers::{Browser, Provider};
pub use profile::{HealthClass, ProfileClass, ResolverEntry, ReusePolicy};
pub use stamps::{Stamp, StampError};
