//! DNS Stamps (`sdns://…`) — the compact encoding the DNSCrypt project uses
//! to publish its public-resolver list, which is where the paper scraped its
//! resolver population from. Implements the stamp specification for the
//! protocols this stack measures: Plain DNS, DoH, DoT and ODoH targets.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! 0x00 plain : props u64 | LP(addr)
//! 0x02 DoH   : props u64 | LP(addr) | VLP(hashes) | LP(hostname) | LP(path)
//! 0x03 DoT   : props u64 | LP(addr) | VLP(hashes) | LP(hostname)
//! 0x05 ODoH  : props u64 | LP(hostname) | LP(path)
//! ```
//!
//! `LP` is a one-octet-length-prefixed string; `VLP` is a sequence of LPs
//! where every length octet except the last has its high bit set.

use dns_wire::base64url;

/// Stamp properties bit flags.
pub mod props {
    /// The resolver supports DNSSEC.
    pub const DNSSEC: u64 = 1;
    /// The resolver keeps no logs.
    pub const NO_LOGS: u64 = 1 << 1;
    /// The resolver does not filter/block domains.
    pub const NO_FILTER: u64 = 1 << 2;
}

/// A parsed DNS stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stamp {
    /// Plain (Do53) resolver.
    Plain {
        /// Informal properties.
        props: u64,
        /// IP address (with optional port).
        addr: String,
    },
    /// DNS-over-HTTPS resolver.
    Doh {
        /// Informal properties.
        props: u64,
        /// IP address hint (may be empty).
        addr: String,
        /// Certificate hashes (may be empty).
        hashes: Vec<Vec<u8>>,
        /// TLS/HTTP hostname.
        hostname: String,
        /// URI path, e.g. `/dns-query`.
        path: String,
    },
    /// DNS-over-TLS resolver.
    Dot {
        /// Informal properties.
        props: u64,
        /// IP address hint (may be empty).
        addr: String,
        /// Certificate hashes.
        hashes: Vec<Vec<u8>>,
        /// TLS hostname.
        hostname: String,
    },
    /// Oblivious DoH target.
    OdohTarget {
        /// Informal properties.
        props: u64,
        /// Target hostname.
        hostname: String,
        /// URI path.
        path: String,
    },
}

/// Errors parsing a stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StampError {
    /// Missing `sdns://` scheme prefix.
    BadScheme,
    /// Payload was not valid base64url.
    BadBase64,
    /// Payload ended prematurely.
    Truncated,
    /// Unknown protocol identifier.
    UnknownProtocol(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for StampError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StampError::BadScheme => write!(f, "missing sdns:// prefix"),
            StampError::BadBase64 => write!(f, "stamp payload is not base64url"),
            StampError::Truncated => write!(f, "stamp payload truncated"),
            StampError::UnknownProtocol(p) => write!(f, "unknown stamp protocol {p:#04x}"),
            StampError::BadUtf8 => write!(f, "stamp string is not UTF-8"),
        }
    }
}

impl std::error::Error for StampError {}

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn u8(&mut self) -> Result<u8, StampError> {
        let b = *self.buf.get(self.pos).ok_or(StampError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u64_le(&mut self) -> Result<u64, StampError> {
        if self.pos + 8 > self.buf.len() {
            return Err(StampError::Truncated);
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }

    fn lp(&mut self) -> Result<Vec<u8>, StampError> {
        let len = self.u8()? as usize;
        if self.pos + len > self.buf.len() {
            return Err(StampError::Truncated);
        }
        let s = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(s)
    }

    fn lp_str(&mut self) -> Result<String, StampError> {
        String::from_utf8(self.lp()?).map_err(|_| StampError::BadUtf8)
    }

    fn vlp(&mut self) -> Result<Vec<Vec<u8>>, StampError> {
        let mut out = Vec::new();
        loop {
            let len_byte = self.u8()?;
            let more = len_byte & 0x80 != 0;
            let len = (len_byte & 0x7F) as usize;
            if self.pos + len > self.buf.len() {
                return Err(StampError::Truncated);
            }
            let item = self.buf[self.pos..self.pos + len].to_vec();
            self.pos += len;
            // An empty single element means "no entries".
            if !(out.is_empty() && !more && item.is_empty()) {
                out.push(item);
            }
            if !more {
                break;
            }
        }
        Ok(out)
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

fn push_lp(out: &mut Vec<u8>, s: &[u8]) {
    debug_assert!(s.len() < 128);
    out.push(s.len() as u8);
    out.extend_from_slice(s);
}

fn push_vlp(out: &mut Vec<u8>, items: &[Vec<u8>]) {
    if items.is_empty() {
        out.push(0);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        let more = if i + 1 < items.len() { 0x80 } else { 0x00 };
        out.push(item.len() as u8 | more);
        out.extend_from_slice(item);
    }
}

impl Stamp {
    /// A DoH stamp with no certificate pinning.
    pub fn doh(hostname: &str, path: &str) -> Stamp {
        Stamp::Doh {
            props: props::DNSSEC | props::NO_LOGS | props::NO_FILTER,
            addr: String::new(),
            hashes: Vec::new(),
            hostname: hostname.to_string(),
            path: path.to_string(),
        }
    }

    /// The protocol identifier octet.
    pub fn protocol(&self) -> u8 {
        match self {
            Stamp::Plain { .. } => 0x00,
            Stamp::Doh { .. } => 0x02,
            Stamp::Dot { .. } => 0x03,
            Stamp::OdohTarget { .. } => 0x05,
        }
    }

    /// The property bits.
    pub fn props(&self) -> u64 {
        match self {
            Stamp::Plain { props, .. }
            | Stamp::Doh { props, .. }
            | Stamp::Dot { props, .. }
            | Stamp::OdohTarget { props, .. } => *props,
        }
    }

    /// The hostname a client connects to (address for plain stamps).
    pub fn endpoint(&self) -> &str {
        match self {
            Stamp::Plain { addr, .. } => addr,
            Stamp::Doh { hostname, .. }
            | Stamp::Dot { hostname, .. }
            | Stamp::OdohTarget { hostname, .. } => hostname,
        }
    }

    /// Serialises to the `sdns://…` form.
    pub fn encode(&self) -> String {
        let mut out = vec![self.protocol()];
        match self {
            Stamp::Plain { props, addr } => {
                out.extend_from_slice(&props.to_le_bytes());
                push_lp(&mut out, addr.as_bytes());
            }
            Stamp::Doh {
                props,
                addr,
                hashes,
                hostname,
                path,
            } => {
                out.extend_from_slice(&props.to_le_bytes());
                push_lp(&mut out, addr.as_bytes());
                push_vlp(&mut out, hashes);
                push_lp(&mut out, hostname.as_bytes());
                push_lp(&mut out, path.as_bytes());
            }
            Stamp::Dot {
                props,
                addr,
                hashes,
                hostname,
            } => {
                out.extend_from_slice(&props.to_le_bytes());
                push_lp(&mut out, addr.as_bytes());
                push_vlp(&mut out, hashes);
                push_lp(&mut out, hostname.as_bytes());
            }
            Stamp::OdohTarget {
                props,
                hostname,
                path,
            } => {
                out.extend_from_slice(&props.to_le_bytes());
                push_lp(&mut out, hostname.as_bytes());
                push_lp(&mut out, path.as_bytes());
            }
        }
        format!("sdns://{}", base64url::encode(&out))
    }

    /// Parses an `sdns://…` stamp.
    pub fn decode(s: &str) -> Result<Stamp, StampError> {
        let payload = s.strip_prefix("sdns://").ok_or(StampError::BadScheme)?;
        let raw = base64url::decode(payload).map_err(|_| StampError::BadBase64)?;
        let mut cur = Cur { buf: &raw, pos: 0 };
        let proto = cur.u8()?;
        let stamp = match proto {
            0x00 => Stamp::Plain {
                props: cur.u64_le()?,
                addr: cur.lp_str()?,
            },
            0x02 => Stamp::Doh {
                props: cur.u64_le()?,
                addr: cur.lp_str()?,
                hashes: cur.vlp()?,
                hostname: cur.lp_str()?,
                path: cur.lp_str()?,
            },
            0x03 => Stamp::Dot {
                props: cur.u64_le()?,
                addr: cur.lp_str()?,
                hashes: cur.vlp()?,
                hostname: cur.lp_str()?,
            },
            0x05 => Stamp::OdohTarget {
                props: cur.u64_le()?,
                hostname: cur.lp_str()?,
                path: cur.lp_str()?,
            },
            other => return Err(StampError::UnknownProtocol(other)),
        };
        let _ = cur.done(); // trailing bytes tolerated (future extensions)
        Ok(stamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doh_round_trip() {
        let s = Stamp::Doh {
            props: props::DNSSEC | props::NO_LOGS,
            addr: "9.9.9.9".into(),
            hashes: vec![vec![0xAB; 32]],
            hostname: "dns.quad9.net".into(),
            path: "/dns-query".into(),
        };
        let enc = s.encode();
        assert!(enc.starts_with("sdns://"));
        assert_eq!(Stamp::decode(&enc).unwrap(), s);
    }

    #[test]
    fn plain_round_trip() {
        let s = Stamp::Plain {
            props: 0,
            addr: "8.8.8.8:53".into(),
        };
        assert_eq!(Stamp::decode(&s.encode()).unwrap(), s);
        assert_eq!(s.protocol(), 0x00);
    }

    #[test]
    fn dot_round_trip() {
        let s = Stamp::Dot {
            props: props::NO_FILTER,
            addr: String::new(),
            hashes: vec![],
            hostname: "dot.example.net".into(),
        };
        let back = Stamp::decode(&s.encode()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.endpoint(), "dot.example.net");
    }

    #[test]
    fn odoh_round_trip() {
        let s = Stamp::OdohTarget {
            props: props::NO_LOGS,
            hostname: "odoh-target.alekberg.net".into(),
            path: "/dns-query".into(),
        };
        assert_eq!(Stamp::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn multiple_hashes_round_trip() {
        let s = Stamp::Doh {
            props: 0,
            addr: String::new(),
            hashes: vec![vec![1; 32], vec![2; 32], vec![3; 32]],
            hostname: "h.example".into(),
            path: "/q".into(),
        };
        match Stamp::decode(&s.encode()).unwrap() {
            Stamp::Doh { hashes, .. } => assert_eq!(hashes.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn helper_builds_unfiltered_stamp() {
        let s = Stamp::doh("dns.google", "/dns-query");
        assert_eq!(s.props() & props::NO_FILTER, props::NO_FILTER);
        assert_eq!(s.endpoint(), "dns.google");
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            Stamp::decode("https://x").unwrap_err(),
            StampError::BadScheme
        );
        assert_eq!(
            Stamp::decode("sdns://!!!").unwrap_err(),
            StampError::BadBase64
        );
        assert_eq!(Stamp::decode("sdns://").unwrap_err(), StampError::Truncated);
        // Protocol 0x07 (unknown to this subset).
        let raw = [0x07u8, 0, 0, 0, 0, 0, 0, 0, 0];
        let enc = format!("sdns://{}", dns_wire::base64url::encode(&raw));
        assert_eq!(
            Stamp::decode(&enc).unwrap_err(),
            StampError::UnknownProtocol(7)
        );
    }

    #[test]
    fn truncated_fields_rejected() {
        let s = Stamp::doh("dns.google", "/dns-query").encode();
        let raw = dns_wire::base64url::decode(s.strip_prefix("sdns://").unwrap()).unwrap();
        for cut in 1..raw.len() - 1 {
            let enc = format!("sdns://{}", dns_wire::base64url::encode(&raw[..cut]));
            // Some prefixes may parse if a length byte happens to fit, but
            // none may panic; most must error.
            let _ = Stamp::decode(&enc);
        }
        let enc = format!("sdns://{}", dns_wire::base64url::encode(&raw[..5]));
        assert!(Stamp::decode(&enc).is_err());
    }

    #[test]
    fn catalog_entries_produce_valid_stamps() {
        for e in crate::resolvers::all() {
            let stamp = Stamp::doh(e.hostname, e.doh_path).encode();
            let back = Stamp::decode(&stamp).unwrap();
            assert_eq!(back.endpoint(), e.hostname);
        }
    }
}
