//! Oblivious-DoH relays (RFC 9230 §4): the proxies that sit between clients
//! and ODoH targets so neither endpoint sees both the client identity and
//! the query content.

use netsim::geo::{cities, City};
use netsim::GeoPoint;

/// A relay deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdohRelay {
    /// Relay hostname.
    pub hostname: &'static str,
    /// Where it runs.
    pub city: City,
}

/// The relays available to clients (modelled after the public relays of the
/// paper's era, e.g. the surfdomeinen.nl and Cloudflare relays).
pub fn odoh_relays() -> Vec<OdohRelay> {
    vec![
        OdohRelay {
            hostname: "odoh-relay.ams.example.net",
            city: cities::AMSTERDAM,
        },
        OdohRelay {
            hostname: "odoh-relay.nyc.example.net",
            city: cities::NEW_YORK,
        },
        OdohRelay {
            hostname: "odoh-relay.sin.example.net",
            city: cities::SINGAPORE,
        },
    ]
}

/// The relay nearest a client location (clients pick one relay and stick
/// with it; proximity keeps the added hop cheap).
pub fn nearest_relay(client: &GeoPoint) -> OdohRelay {
    odoh_relays()
        .into_iter()
        .min_by(|a, b| {
            client
                .distance_km(&a.city.point)
                .total_cmp(&client.distance_km(&b.city.point))
        })
        // detlint:allow(unwrap, odoh_relays() is a non-empty static table)
        .expect("relay list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_relays_on_three_continents() {
        let relays = odoh_relays();
        assert_eq!(relays.len(), 3);
        let regions: std::collections::HashSet<_> = relays.iter().map(|r| r.city.region).collect();
        assert!(regions.len() >= 3);
    }

    #[test]
    fn nearest_relay_is_actually_nearest() {
        let chicago = cities::CHICAGO.point;
        assert_eq!(nearest_relay(&chicago).city.name, "New York");
        let munich = cities::MUNICH.point;
        assert_eq!(nearest_relay(&munich).city.name, "Amsterdam");
        let seoul = cities::SEOUL.point;
        assert_eq!(nearest_relay(&seoul).city.name, "Singapore");
    }
}
