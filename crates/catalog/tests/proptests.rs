//! Property-based tests for DNS stamps and the resolver-list parser.

use proptest::prelude::*;

use catalog::{list_parser, Stamp};

fn arb_host() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}(\\.[a-z0-9]{1,10}){1,3}"
}

fn arb_stamp() -> impl Strategy<Value = Stamp> {
    prop_oneof![
        (any::<u64>(), arb_host()).prop_map(|(props, addr)| Stamp::Plain { props, addr }),
        (
            any::<u64>(),
            arb_host(),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 32), 0..3),
            arb_host(),
            "/[a-z-]{0,20}",
        )
            .prop_map(|(props, addr, hashes, hostname, path)| Stamp::Doh {
                props,
                addr,
                hashes,
                hostname,
                path,
            }),
        (
            any::<u64>(),
            arb_host(),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 32), 0..3),
            arb_host(),
        )
            .prop_map(|(props, addr, hashes, hostname)| Stamp::Dot {
                props,
                addr,
                hashes,
                hostname,
            }),
        (any::<u64>(), arb_host(), "/[a-z-]{0,20}").prop_map(|(props, hostname, path)| {
            Stamp::OdohTarget {
                props,
                hostname,
                path,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stamps_round_trip(stamp in arb_stamp()) {
        let enc = stamp.encode();
        prop_assert!(enc.starts_with("sdns://"));
        let back = Stamp::decode(&enc).unwrap();
        prop_assert_eq!(back, stamp);
    }

    #[test]
    fn stamp_decoder_never_panics(s in "sdns://[A-Za-z0-9_-]{0,80}") {
        let _ = Stamp::decode(&s);
    }

    #[test]
    fn stamp_decoder_never_panics_on_any_string(s in "\\PC{0,60}") {
        let _ = Stamp::decode(&s);
    }

    #[test]
    fn truncated_stamps_error_cleanly(stamp in arb_stamp(), cut_at in any::<prop::sample::Index>()) {
        let enc = stamp.encode();
        let raw = dns_wire::base64url::decode(enc.strip_prefix("sdns://").unwrap()).unwrap();
        let cut = cut_at.index(raw.len());
        let enc2 = format!("sdns://{}", dns_wire::base64url::encode(&raw[..cut]));
        // Must not panic; short prefixes that happen to parse are fine.
        let _ = Stamp::decode(&enc2);
    }

    #[test]
    fn list_parser_never_panics(doc in "\\PC{0,500}") {
        let _ = list_parser::parse(&doc);
    }

    #[test]
    fn list_entries_survive_render_parse(names in proptest::collection::vec("[a-z]{1,12}\\.[a-z]{2,4}", 1..6)) {
        // Build a document by hand and parse it.
        let mut doc = String::new();
        for n in &names {
            doc.push_str(&format!("## {n}\ndescription of {n}\n{}\n\n", Stamp::doh(n, "/dns-query").encode()));
        }
        let entries = list_parser::parse(&doc);
        prop_assert_eq!(entries.len(), names.len());
        for (e, n) in entries.iter().zip(&names) {
            prop_assert_eq!(&e.name, n);
            prop_assert_eq!(e.doh_stamp().unwrap().endpoint(), n.as_str());
            prop_assert!(e.bad_stamps.is_empty());
        }
    }
}
