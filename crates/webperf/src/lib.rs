//! # webperf
//!
//! The paper's stated future-work direction: "an assessment of the effects
//! of encrypted DNS performance on application performance, including web
//! page load time, across the full set of encrypted DNS resolvers."
//!
//! This crate implements a WProf-style dependency-graph page-load model
//! ([`Page`]) and a loader ([`Loader`]) that resolves every page domain
//! through a chosen (simulated) encrypted resolver, charges the browser-
//! faithful costs — cold resolver connection for the first lookup, reused
//! channel afterwards, per-domain web connection setup, transfer time —
//! and attributes the DNS share of the critical path by counterfactual
//! (load time with DNS vs. with free DNS).
//!
//! ```
//! use webperf::{Loader, Page};
//! use measure::ProbeTarget;
//! use netsim::{geo::cities, AccessProfile, Host, HostId, SimRng, SimTime};
//!
//! let loader = Loader::default();
//! let page = Page::news_site("news.example.com");
//! let client = Host::in_city(HostId(0), "c", cities::CHICAGO, AccessProfile::home_cable());
//! let mut resolver = ProbeTarget::from_entry(catalog::resolvers::find("dns.google").unwrap());
//! let mut rng = SimRng::from_seed(1);
//! let report = loader.load(&page, &client, true, &mut resolver, SimTime::ZERO, &mut rng);
//! assert!(report.plt_ms > 0.0);
//! assert!(report.dns_share() < 0.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loader;
pub mod page;

pub use loader::{LoadReport, Loader, WebConfig};
pub use page::{Page, PageObject};
