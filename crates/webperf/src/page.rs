//! Page models: the object/dependency structure whose fetches a browser
//! must resolve, connect and download.
//!
//! The model follows WProf's observation (Wang et al., NSDI'13) that page
//! load time is governed by a *dependency critical path*: HTML first, then
//! the CSS/JS it references, then the images those reference. DNS
//! resolutions sit at the head of every first connection to a domain and
//! can contribute "up to 13% of the critical path delay" for uncached
//! names.

use dns_wire::Name;
use netsim::SimRng;

/// One fetchable object.
#[derive(Debug, Clone)]
pub struct PageObject {
    /// The domain the object is served from.
    pub domain: Name,
    /// Transfer size in bytes.
    pub bytes: usize,
    /// Indices of objects that must complete before this one can start
    /// (the discovery chain: HTML → CSS/JS → images).
    pub depends_on: Vec<usize>,
}

/// A web page: a DAG of objects over a set of domains.
#[derive(Debug, Clone)]
pub struct Page {
    /// Human-readable label.
    pub label: String,
    /// The objects; index 0 is the root HTML document.
    pub objects: Vec<PageObject>,
}

impl Page {
    /// Parses a page-template domain. Templates use fixed literals or
    /// caller-supplied origins; a typo here is a programming error, not a
    /// runtime condition, so it panics with context rather than returning
    /// a `Result` every template would immediately unwrap.
    fn template_name(s: &str) -> Name {
        // detlint:allow(unwrap, template domains are fixed literals or caller-validated origins, covered by tests)
        Name::parse(s).expect("page template domain parses")
    }

    /// The distinct domains the page touches (first-party first).
    pub fn domains(&self) -> Vec<Name> {
        let mut out: Vec<Name> = Vec::new();
        for o in &self.objects {
            if !out.contains(&o.domain) {
                out.push(o.domain.clone());
            }
        }
        out
    }

    /// A small first-party-only page: HTML + CSS + few images, one domain.
    pub fn simple(origin: &str) -> Page {
        let d = Self::template_name(origin);
        let obj = |bytes: usize, deps: Vec<usize>| PageObject {
            domain: d.clone(),
            bytes,
            depends_on: deps,
        };
        Page {
            label: format!("simple page on {origin}"),
            objects: vec![
                obj(30_000, vec![]),   // 0: HTML
                obj(60_000, vec![0]),  // 1: CSS
                obj(90_000, vec![0]),  // 2: JS
                obj(120_000, vec![1]), // 3: hero image
                obj(40_000, vec![1]),  // 4: image
            ],
        }
    }

    /// A media-style page: first-party HTML plus third-party CDNs, ads and
    /// analytics across several domains — the workload where DNS choices
    /// matter most.
    pub fn news_site(origin: &str) -> Page {
        let first = Self::template_name(origin);
        let cdn = Self::template_name("cdn.example-static.net");
        let ads = Self::template_name("ads.example-exchange.com");
        let metrics = Self::template_name("telemetry.example-metrics.io");
        let social = Self::template_name("embed.example-social.org");
        let o = |domain: &Name, bytes: usize, deps: Vec<usize>| PageObject {
            domain: domain.clone(),
            bytes,
            depends_on: deps,
        };
        Page {
            label: format!("news site on {origin}"),
            objects: vec![
                o(&first, 80_000, vec![]),   // 0: HTML
                o(&cdn, 150_000, vec![0]),   // 1: framework JS
                o(&cdn, 70_000, vec![0]),    // 2: CSS
                o(&first, 50_000, vec![2]),  // 3: article images
                o(&ads, 30_000, vec![1]),    // 4: ad loader
                o(&ads, 90_000, vec![4]),    // 5: ad creative
                o(&metrics, 5_000, vec![1]), // 6: beacon
                o(&social, 60_000, vec![1]), // 7: embed
                o(&cdn, 110_000, vec![3]),   // 8: lazy images
            ],
        }
    }

    /// A randomised page in the news-site shape: `n_objects` objects over
    /// `n_domains` synthetic domains with a layered dependency structure.
    pub fn synthetic(n_objects: usize, n_domains: usize, rng: &mut SimRng) -> Page {
        assert!(n_objects >= 1 && n_domains >= 1);
        let domains: Vec<Name> = (0..n_domains)
            .map(|i| Self::template_name(&format!("host-{i}.page.example.com")))
            .collect();
        let mut objects = vec![PageObject {
            domain: domains[0].clone(),
            bytes: 60_000,
            depends_on: vec![],
        }];
        for i in 1..n_objects {
            // Depend on an earlier object; bias toward the root layers.
            let dep = (rng.uniform() * rng.uniform() * i as f64) as usize;
            objects.push(PageObject {
                domain: domains[rng.below(n_domains)].clone(),
                bytes: 5_000 + (rng.uniform() * 150_000.0) as usize,
                depends_on: vec![dep.min(i - 1)],
            });
        }
        Page {
            label: format!("synthetic({n_objects} objects, {n_domains} domains)"),
            objects,
        }
    }

    /// Validates that the dependency graph is acyclic-by-construction
    /// (every edge points to a lower index) — call in tests.
    pub fn validate(&self) -> Result<(), String> {
        for (i, o) in self.objects.iter().enumerate() {
            for &d in &o.depends_on {
                if d >= i {
                    return Err(format!("object {i} depends on later object {d}"));
                }
            }
            if o.bytes == 0 {
                return Err(format!("object {i} is empty"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_pages_are_valid() {
        assert!(Page::simple("example.com").validate().is_ok());
        let news = Page::news_site("news.example.com");
        assert!(news.validate().is_ok());
        assert_eq!(news.domains().len(), 5);
        assert_eq!(news.objects.len(), 9);
    }

    #[test]
    fn simple_page_is_single_domain() {
        let p = Page::simple("example.com");
        assert_eq!(p.domains().len(), 1);
    }

    #[test]
    fn synthetic_pages_are_valid_and_deterministic() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        let pa = Page::synthetic(40, 8, &mut a);
        let pb = Page::synthetic(40, 8, &mut b);
        assert!(pa.validate().is_ok());
        assert_eq!(pa.objects.len(), pb.objects.len());
        for (x, y) in pa.objects.iter().zip(&pb.objects) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.depends_on, y.depends_on);
        }
    }

    #[test]
    fn validate_catches_bad_graphs() {
        let mut p = Page::simple("example.com");
        p.objects[1].depends_on = vec![3];
        assert!(p.validate().is_err());
        let mut p = Page::simple("example.com");
        p.objects[0].bytes = 0;
        assert!(p.validate().is_err());
    }
}
