//! The page loader: walks a page's dependency DAG and computes load time,
//! charging DNS resolution (through a chosen encrypted resolver), web
//! connection setup and transfer for every object.
//!
//! Browser-faithful details:
//!
//! * DNS connection reuse runs through the measurement stack's session
//!   layer ([`measure::SessionState`], under the resolver's own
//!   [`catalog::ReusePolicy`]): the first resolution opens the encrypted
//!   channel cold and pays the full connection response time, later
//!   resolutions reuse the pooled connection and pay only the query round
//!   trip — and a failed resolution invalidates the pool, so the next
//!   domain re-pays the cold setup exactly as a browser would;
//! * each domain's first object pays TCP+TLS to the web server; later
//!   objects reuse the connection;
//! * transfers share the client's downstream bandwidth serially along the
//!   critical path (a deliberate simplification that WProf shows is close
//!   for small object counts).

use std::collections::HashMap;

use dns_wire::Name;
use measure::{
    ConnectionMode, ProbeConfig, ProbeOutcome, ProbeTarget, Prober, SessionConfig, SessionState,
};
use netsim::{Host, SimRng, SimTime};

use crate::page::Page;

/// Web-server model: every origin sits on a CDN PoP near the client.
#[derive(Debug, Clone, Copy)]
pub struct WebConfig {
    /// Median RTT to web origins, ms.
    pub web_rtt_ms: f64,
    /// RTT jitter sigma (log-space).
    pub web_rtt_sigma: f64,
    /// Round trips to establish the web connection (TCP+TLS 1.3 = 2).
    pub connect_rtts: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            web_rtt_ms: 14.0,
            web_rtt_sigma: 0.15,
            connect_rtts: 2.0,
        }
    }
}

/// The outcome of loading one page.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total page load time, ms.
    pub plt_ms: f64,
    /// Page load time with free (zero-cost) DNS, ms.
    pub plt_no_dns_ms: f64,
    /// Milliseconds of DNS on the critical path.
    pub dns_critical_ms: f64,
    /// Per-domain DNS resolution times, ms.
    pub dns_times_ms: HashMap<Name, f64>,
    /// Domains that failed to resolve (their objects never load).
    pub failed_domains: Vec<Name>,
}

impl LoadReport {
    /// Fraction of the page load spent waiting on DNS along the critical
    /// path (WProf reports up to 13 % for uncached names).
    pub fn dns_share(&self) -> f64 {
        if self.plt_ms <= 0.0 {
            0.0
        } else {
            self.dns_critical_ms / self.plt_ms
        }
    }
}

/// Loads pages against one resolver.
pub struct Loader {
    prober: Prober,
    web: WebConfig,
}

impl Default for Loader {
    fn default() -> Self {
        Loader {
            prober: Prober::new(),
            web: WebConfig::default(),
        }
    }
}

impl Loader {
    /// A loader with a custom web-server model.
    pub fn with_web(web: WebConfig) -> Self {
        Loader {
            prober: Prober::new(),
            web,
        }
    }

    /// Resolves every domain of `page` through `resolver` and computes the
    /// dependency-aware page load time.
    pub fn load(
        &self,
        page: &Page,
        client: &Host,
        is_home: bool,
        resolver: &mut ProbeTarget,
        now: SimTime,
        rng: &mut SimRng,
    ) -> LoadReport {
        // Resolve each distinct domain once, in first-use order, through a
        // browser-like session: full reuse under the resolver's own
        // policy. A cold probe is charged its whole response time, a warm
        // one only the query exchange; failures tear the session down so
        // the next resolution reopens the channel.
        let mut dns_times_ms = HashMap::new();
        let mut failed_domains = Vec::new();
        let cfg = ProbeConfig::default();
        let scfg = SessionConfig::warm();
        let mut session = SessionState::new(
            0xD05,
            "webperf",
            resolver.entry.hostname,
            resolver.entry.reuse_policy(),
            resolver.entry.coalesce_key(),
        );
        for domain in page.domains() {
            let forced_cold = session.draw_forced_cold(&scfg);
            let mode = session.decide(now, cfg.protocol, true, forced_cold);
            let (outcome, _) = self
                .prober
                .probe(client, resolver, &domain, now, is_home, cfg, rng);
            match outcome {
                ProbeOutcome::Success { timings, .. } => {
                    let ms = match mode {
                        ConnectionMode::Cold => timings.total().as_millis_f64(),
                        ConnectionMode::Resumed | ConnectionMode::Reused => {
                            timings.exchange().as_millis_f64()
                        }
                    };
                    session.on_success(now, cfg.protocol, mode, timings.connect);
                    dns_times_ms.insert(domain, ms);
                }
                ProbeOutcome::Failure { .. } => {
                    session.on_failure();
                    failed_domains.push(domain);
                }
            }
        }

        let plt_ms = self.simulate(page, &dns_times_ms, client, true);
        let plt_no_dns_ms = self.simulate(page, &dns_times_ms, client, false);
        LoadReport {
            plt_ms,
            plt_no_dns_ms,
            dns_critical_ms: (plt_ms - plt_no_dns_ms).max(0.0),
            dns_times_ms,
            failed_domains,
        }
    }

    /// Walks the DAG computing finish times. `charge_dns` toggles DNS cost
    /// (the counterfactual for critical-path attribution). Web-side jitter
    /// comes from a stream derived from the page label so the DNS and
    /// no-DNS passes — and different resolvers on the same page — see
    /// identical web conditions (a paired experimental design).
    fn simulate(
        &self,
        page: &Page,
        dns_times_ms: &HashMap<Name, f64>,
        client: &Host,
        charge_dns: bool,
    ) -> f64 {
        let mut web_rng = SimRng::derived(0xCAFE, &page.label);
        let mut domain_ready: HashMap<&Name, f64> = HashMap::new();
        let mut finish = vec![f64::INFINITY; page.objects.len()];

        for (i, obj) in page.objects.iter().enumerate() {
            let deps_done = obj
                .depends_on
                .iter()
                .map(|&d| finish[d])
                .fold(0.0f64, f64::max);
            if deps_done.is_infinite() {
                continue; // a dependency failed
            }
            let ready = match domain_ready.get(&obj.domain) {
                Some(&t) => t.max(deps_done),
                None => {
                    let Some(&dns) = dns_times_ms.get(&obj.domain) else {
                        continue; // resolution failed: object never loads
                    };
                    let rtt = web_rng.lognormal_median(self.web.web_rtt_ms, self.web.web_rtt_sigma);
                    let setup = (if charge_dns { dns } else { 0.0 }) + self.web.connect_rtts * rtt;
                    let t = deps_done + setup;
                    domain_ready.insert(&obj.domain, t);
                    t
                }
            };
            let rtt = web_rng.lognormal_median(self.web.web_rtt_ms, self.web.web_rtt_sigma);
            let transfer = rtt + client.access.serialization_ms(obj.bytes, false);
            finish[i] = ready + transfer;
        }
        finish
            .into_iter()
            .filter(|f| f.is_finite())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::cities;
    use netsim::{AccessProfile, HostId};

    fn client() -> Host {
        Host::in_city(HostId(0), "c", cities::CHICAGO, AccessProfile::home_cable())
    }

    fn target(hostname: &str) -> ProbeTarget {
        ProbeTarget::from_entry(catalog::resolvers::find(hostname).unwrap())
    }

    #[test]
    fn page_loads_and_dns_contributes() {
        let loader = Loader::default();
        let page = Page::news_site("example.com");
        let mut resolver = target("dns.google");
        let mut rng = SimRng::from_seed(1);
        let report = loader.load(
            &page,
            &client(),
            true,
            &mut resolver,
            SimTime::ZERO,
            &mut rng,
        );
        assert!(report.failed_domains.is_empty());
        assert!(report.plt_ms > 100.0, "plt {}", report.plt_ms);
        assert!(report.plt_no_dns_ms < report.plt_ms);
        assert!(
            (0.01..0.6).contains(&report.dns_share()),
            "dns share {}",
            report.dns_share()
        );
        assert_eq!(report.dns_times_ms.len(), 5);
    }

    #[test]
    fn slow_resolver_slows_the_page() {
        let loader = Loader::default();
        let page = Page::news_site("example.com");
        let mut rng = SimRng::from_seed(2);
        let mut fast = target("dns.google");
        let fast_plt = loader
            .load(&page, &client(), true, &mut fast, SimTime::ZERO, &mut rng)
            .plt_ms;
        let mut slow = target("dns.bebasid.com"); // Indonesia, from Chicago
        let slow_plt = loader
            .load(&page, &client(), true, &mut slow, SimTime::ZERO, &mut rng)
            .plt_ms;
        assert!(
            slow_plt > fast_plt + 200.0,
            "fast {fast_plt} vs slow {slow_plt}"
        );
    }

    #[test]
    fn single_domain_page_pays_dns_once() {
        let loader = Loader::default();
        let page = Page::simple("example.com");
        let mut resolver = target("dns.quad9.net");
        let mut rng = SimRng::from_seed(3);
        let report = loader.load(
            &page,
            &client(),
            true,
            &mut resolver,
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(report.dns_times_ms.len(), 1);
        assert!(report.dns_critical_ms > 0.0);
    }

    #[test]
    fn dead_resolver_fails_the_whole_page() {
        let loader = Loader::default();
        let page = Page::news_site("example.com");
        let mut resolver = target("chewbacca.meganerd.nl");
        let mut rng = SimRng::from_seed(4);
        let report = loader.load(
            &page,
            &client(),
            true,
            &mut resolver,
            SimTime::ZERO,
            &mut rng,
        );
        // Mostly-down: most domains fail to resolve; the page is crippled.
        assert!(!report.failed_domains.is_empty(), "expected failed domains");
    }

    #[test]
    fn synthetic_pages_load() {
        let loader = Loader::default();
        let mut rng = SimRng::from_seed(5);
        let page = Page::synthetic(30, 6, &mut rng);
        let mut resolver = target("dns.google");
        let report = loader.load(
            &page,
            &client(),
            true,
            &mut resolver,
            SimTime::ZERO,
            &mut rng,
        );
        assert!(report.plt_ms > 0.0);
    }
}
