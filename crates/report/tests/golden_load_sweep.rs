//! Golden-fixture regression for the load-sweep table: the fixed-seed
//! roster swept over the standard multiplier ladder must reproduce
//! `tests/golden/load_sweep_seed4.txt` byte-for-byte — pinning the class
//! labels, column layout, float formatting, and the load model's effect
//! on the underlying campaign all at once. The 0.00x rows double as a
//! zero-load transparency witness: they are computed from a config with
//! **no** load model, so if a loaded rung ever contaminated the unloaded
//! path, the fixture (regenerated under the 4-thread ≡ serial assertion)
//! would drift.
//!
//! After an *intentional* format change, regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin golden_regen
//! ```

use measure::{Campaign, CampaignConfig, LoadModel};
use report::LoadSweep;

fn entries() -> Vec<catalog::ResolverEntry> {
    // Must mirror the load-sweep roster in bench's golden_regen bin.
    [
        "dns.google",
        "dns.quad9.net",
        "doh.ffmuc.net",
        "chewbacca.meganerd.nl",
    ]
    .into_iter()
    .map(|h| catalog::resolvers::find(h).unwrap())
    .collect()
}

#[test]
fn load_sweep_matches_golden_bytes() {
    let golden = include_str!("golden/load_sweep_seed4.txt");
    let mut sweep = LoadSweep::new();
    for multiplier in [0.0, 2.0, 8.0] {
        let mut config = CampaignConfig::quick(4, 3);
        if multiplier > 0.0 {
            config = config.with_load(LoadModel::standard(4).with_multiplier(multiplier));
        }
        let result = Campaign::with_resolvers(config, entries()).run();
        sweep.add_point(multiplier, &entries(), &result.records);
    }
    assert_eq!(
        sweep.render(),
        golden,
        "load-sweep table drifted from the golden fixture; if intentional, \
         regenerate with `cargo run --release -p bench --bin golden_regen`"
    );
}

#[test]
fn golden_load_sweep_shows_the_expected_shape() {
    // The fixture itself must keep telling the story the sweep exists to
    // tell: parse it back and cross-check the qualitative shape rather
    // than trusting bytes alone.
    let golden = include_str!("golden/load_sweep_seed4.txt");
    let rows: Vec<Vec<&str>> = golden
        .lines()
        .skip_while(|l| !l.starts_with('-'))
        .skip(1)
        .map(|l| l.split_whitespace().collect())
        .collect();
    assert_eq!(rows.len(), 6, "3 multipliers x 2 classes");

    let avail = |mult: &str, class: &str| -> f64 {
        let row = rows
            .iter()
            .find(|r| r[0] == mult && r[1] == class)
            .unwrap_or_else(|| panic!("missing row {mult} {class}"));
        row[3].parse().unwrap()
    };
    // Production anycast holds availability across the whole ladder...
    let prod_idle = avail("0.00", "production-anycast");
    assert!(prod_idle > 95.0);
    assert_eq!(prod_idle, avail("8.00", "production-anycast"));
    // ...while the overloaded single-site class sheds most of its load.
    let single_idle = avail("0.00", "single-site");
    assert!(
        avail("8.00", "single-site") < single_idle - 20.0,
        "single-site availability must collapse past saturation"
    );
}
