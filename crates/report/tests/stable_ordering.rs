//! Regression: report and metrics-export *structure* must not depend on the
//! campaign seed. Values differ between seeds, but every section, row and
//! key must appear in the same order — the property the BTreeMap switches
//! and the detlint `hash-iter` rule exist to protect.

use measure::{metrics_of, Campaign, CampaignConfig, CampaignResult};
use report::{metrics_csv, metrics_json, Dataset};

const HOSTS: [&str; 4] = [
    "dns.google",
    "dns.quad9.net",
    "doh.ffmuc.net",
    "dns.alidns.com",
];

fn run(seed: u64) -> CampaignResult {
    let entries = HOSTS
        .iter()
        .filter_map(|h| catalog::resolvers::find(h))
        .collect();
    Campaign::with_resolvers(CampaignConfig::quick(seed, 2), entries).run()
}

/// The ordered key skeleton of a JSON document: every object key in
/// document order, values discarded.
fn key_skeleton(json: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            // A string followed by ':' is an object key.
            if bytes.get(j + 1) == Some(&b':') {
                keys.push(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

#[test]
fn dataset_orderings_are_seed_independent() {
    let a = Dataset::new(run(11).records);
    let b = Dataset::new(run(97).records);
    assert_eq!(
        a.resolvers(),
        b.resolvers(),
        "resolver order must be stable"
    );
    for region in [
        netsim::Region::NorthAmerica,
        netsim::Region::Europe,
        netsim::Region::Asia,
    ] {
        assert_eq!(
            a.figure_rows(region),
            b.figure_rows(region),
            "figure row order must be stable for {region:?}"
        );
    }
}

#[test]
fn metrics_export_structure_is_seed_independent() {
    let a = metrics_of(&run(11).records);
    let b = metrics_of(&run(97).records);

    // CSV: identical header, and identical (resolver, vantage, protocol)
    // key-column sequence row for row.
    let rows_a = report::csv::parse(&metrics_csv(&a).render());
    let rows_b = report::csv::parse(&metrics_csv(&b).render());
    let keys = |rows: &[Vec<String>]| -> Vec<Vec<String>> {
        rows.iter().map(|r| r[..3].to_vec()).collect()
    };
    assert_eq!(rows_a[0], rows_b[0], "csv header must be stable");
    assert_eq!(
        keys(&rows_a),
        keys(&rows_b),
        "csv cell order must be stable"
    );

    // JSON: the ordered key skeleton (sections, cells, field names) must be
    // identical even though every value differs between the two seeds.
    let ja = metrics_json(&a).to_string_compact();
    let jb = metrics_json(&b).to_string_compact();
    assert_ne!(ja, jb, "different seeds must produce different values");
    assert_eq!(
        key_skeleton(&ja),
        key_skeleton(&jb),
        "json key order must be stable across seeds"
    );
}

#[test]
fn health_report_structure_is_seed_independent() {
    // The flight recorder's health table must keep identical
    // (resolver, day) row skeletons across seeds: only the measured
    // values may differ.
    let skeleton = |seed: u64| -> (Vec<(String, String)>, String) {
        let entries = HOSTS
            .iter()
            .filter_map(|h| catalog::resolvers::find(h))
            .collect();
        let c = Campaign::with_resolvers(CampaignConfig::quick(seed, 2), entries);
        let result = c.run();
        let rows = measure::HealthSeries::of(&c, &result.records).resolver_rows();
        let text = report::health_report::health_table(&rows).render();
        let keys = text
            .lines()
            .skip(2) // header + separator
            .filter_map(|l| {
                let mut cols = l.split_whitespace();
                Some((cols.next()?.to_string(), cols.next()?.to_string()))
            })
            .collect();
        (keys, text)
    };
    let (keys_a, text_a) = skeleton(11);
    let (keys_b, text_b) = skeleton(97);
    assert!(!keys_a.is_empty());
    assert_eq!(
        keys_a, keys_b,
        "health (resolver, day) row order must be stable"
    );
    assert_ne!(
        text_a, text_b,
        "different seeds must produce different values"
    );
}

#[test]
fn sketch_table_structure_is_seed_independent() {
    // The sketch-backed summary tables must keep identical row labels and
    // column structure across seeds: only the measured values may differ.
    let skeleton = |seed: u64| -> (Vec<String>, Vec<String>, String, String) {
        let entries = HOSTS
            .iter()
            .filter_map(|h| catalog::resolvers::find(h))
            .collect();
        let c = Campaign::with_resolvers(CampaignConfig::quick(seed, 2), entries);
        let result = c.run();
        let agg = measure::CampaignAggregates::of(&c, &result.records);
        let first_column = |text: &str| -> Vec<String> {
            text.lines()
                .filter_map(|l| l.split_whitespace().next())
                .map(str::to_string)
                .collect()
        };
        let resolver = report::sketch_report::resolver_table(&agg).render();
        let vantage = report::sketch_report::vantage_table(&agg).render();
        (
            first_column(&resolver),
            first_column(&vantage),
            resolver,
            vantage,
        )
    };
    let (res_a, van_a, full_res_a, full_van_a) = skeleton(11);
    let (res_b, van_b, full_res_b, full_van_b) = skeleton(97);
    assert_eq!(res_a, res_b, "resolver row order must be stable");
    assert_eq!(van_a, van_b, "vantage row order must be stable");
    assert_ne!(
        (full_res_a, full_van_a),
        (full_res_b, full_van_b),
        "different seeds must produce different values"
    );
}
