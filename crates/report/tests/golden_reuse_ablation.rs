//! Golden-fixture regression for the reuse-ablation table: the fixed-seed
//! roster probed per connection-oriented protocol under the interleaved
//! session model must reproduce `tests/golden/reuse_ablation_seed4.txt`
//! byte-for-byte — pinning the mode labels, column layout, float
//! formatting, and the session layer's effect on the underlying campaign
//! all at once. The fixture is regenerated under the 4-thread ≡ serial
//! assertion, so it can never be written from a thread count that would
//! change its bytes.
//!
//! After an *intentional* format change, regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin golden_regen
//! ```

use measure::{Campaign, CampaignConfig, Protocol, SessionConfig};
use report::ReuseAblation;

fn entries() -> Vec<catalog::ResolverEntry> {
    // Must mirror the roster in bench's golden_regen bin.
    [
        "dns.google",
        "dns.quad9.net",
        "doh.ffmuc.net",
        "chewbacca.meganerd.nl",
    ]
    .into_iter()
    .map(|h| catalog::resolvers::find(h).unwrap())
    .collect()
}

#[test]
fn reuse_ablation_matches_golden_bytes() {
    let golden = include_str!("golden/reuse_ablation_seed4.txt");
    let mut ablation = ReuseAblation::new();
    for protocol in [Protocol::DoH, Protocol::DoT, Protocol::DoQ] {
        let mut config = CampaignConfig::quick(4, 3).with_session(SessionConfig::interleaved(0.3));
        config.probe.protocol = protocol;
        let result = Campaign::with_resolvers(config, entries()).run();
        ablation.add_campaign(&result.records);
    }
    assert_eq!(
        ablation.render(),
        golden,
        "reuse-ablation table drifted from the golden fixture; if intentional, \
         regenerate with `cargo run --release -p bench --bin golden_regen`"
    );
}

#[test]
fn golden_reuse_ablation_shows_the_expected_shape() {
    // The fixture itself must keep telling the story the ablation exists
    // to tell: parse it back and cross-check the qualitative shape rather
    // than trusting bytes alone.
    let golden = include_str!("golden/reuse_ablation_seed4.txt");
    let rows: Vec<Vec<&str>> = golden
        .lines()
        .skip_while(|l| !l.starts_with('-'))
        .skip(1)
        .map(|l| l.split_whitespace().collect())
        .collect();
    assert_eq!(rows.len(), 9, "3 protocols x 3 modes");

    let cell = |proto: &str, mode: &str, col: usize| -> f64 {
        let row = rows
            .iter()
            .find(|r| r[0] == proto && r[1] == mode)
            .unwrap_or_else(|| panic!("missing row {proto} {mode}"));
        row[col].parse().unwrap()
    };
    // DoH session resumption saves the TLS round trips: cheaper setup and
    // a faster median than the cold baseline.
    assert!(cell("doh", "resumed", 6) < cell("doh", "cold", 6));
    assert!(cell("doh", "resumed", 4) < cell("doh", "cold", 4));
    // DoQ 0-RTT saves every connect round: setup is zero outright.
    assert_eq!(cell("doq", "resumed", 6), 0.0);
    // A pooled connection pays no setup at all, on every protocol.
    for proto in ["doh", "dot", "doq"] {
        assert_eq!(cell(proto, "reused", 6), 0.0, "{proto} reused setup");
    }
}
