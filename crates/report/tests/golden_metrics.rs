//! Golden-fixture regression for the metrics exports: a fixed-seed
//! campaign must reproduce `tests/golden/metrics_seed4.{json,csv}`
//! byte-for-byte. Any drift — key order, float formatting, CSV quoting,
//! a renamed counter — fails here before it silently invalidates
//! downstream tooling that parses these documents.
//!
//! After an *intentional* format change, regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin golden_regen
//! ```

use measure::{metrics_of, Campaign, CampaignConfig};
use report::{metrics_csv, metrics_json};

fn snapshot() -> obs::MetricsSnapshot {
    // Must mirror the baseline campaign in bench's golden_regen bin.
    let entries = [
        "dns.google",
        "dns.quad9.net",
        "doh.ffmuc.net",
        "chewbacca.meganerd.nl",
    ]
    .into_iter()
    .map(|h| catalog::resolvers::find(h).unwrap())
    .collect();
    let result = Campaign::with_resolvers(CampaignConfig::quick(4, 3), entries).run();
    metrics_of(&result.records)
}

#[test]
fn metrics_json_matches_golden_bytes() {
    let golden = include_str!("golden/metrics_seed4.json");
    let mut json = metrics_json(&snapshot()).to_string_compact();
    json.push('\n');
    assert_eq!(
        json, golden,
        "metrics JSON drifted from the golden fixture; if intentional, \
         regenerate with `cargo run --release -p bench --bin golden_regen`"
    );
}

#[test]
fn metrics_csv_matches_golden_bytes() {
    let golden = include_str!("golden/metrics_seed4.csv");
    assert_eq!(
        metrics_csv(&snapshot()).render(),
        golden,
        "metrics CSV drifted from the golden fixture; if intentional, \
         regenerate with `cargo run --release -p bench --bin golden_regen`"
    );
}

#[test]
fn golden_json_is_parseable_and_self_consistent() {
    // The fixture itself must stay a valid document: parse it back and
    // cross-check a structural invariant rather than trusting bytes alone.
    let golden = include_str!("golden/metrics_seed4.json");
    let doc = measure::json::parse(golden.trim_end()).expect("golden JSON must parse");
    let cells = doc
        .get("cells")
        .and_then(|c| c.as_array())
        .expect("golden JSON must carry a cells array");
    assert!(!cells.is_empty());
    let csv_rows = report::csv::parse(include_str!("golden/metrics_seed4.csv"));
    // One CSV data row per JSON cell (the CSV adds a header line).
    assert_eq!(csv_rows.len(), cells.len() + 1);
}
