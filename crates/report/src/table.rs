//! Plain-text table rendering for the regenerated paper tables.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len().max(r.len()), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Resolver", "Median (ms)"]);
        t.row(["dns.google", "17.2"]);
        t.row(["doh.ffmuc.net", "112.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Resolver"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "Median" column starts at same offset in all rows.
        let col = lines[0].find("Median").unwrap();
        assert_eq!(&lines[2][col..col + 2], "17");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn empty_table_renders_without_panicking() {
        let empty: [&str; 0] = [];
        let t = TextTable::new(empty);
        let s = t.render();
        assert!(t.is_empty());
        assert!(s.contains('\n'));
    }

    #[test]
    fn unicode_width_by_chars() {
        let mut t = TextTable::new(["città", "x"]);
        t.row(["é", "y"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }
}
