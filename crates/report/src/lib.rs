//! # report
//!
//! Regenerates every table and figure of the paper from campaign output:
//!
//! | Experiment | Module |
//! |---|---|
//! | Table 1 (browser × provider matrix) | [`experiments::table1`] |
//! | §4 availability (success/error counts, dominant error class) | [`experiments::availability`] |
//! | Figure 1 (NA resolvers from Ohio) | [`experiments::figures::figure1`] |
//! | Figures 2–4 (NA/EU/Asia resolvers × 4 vantage groups) | [`experiments::figures`] |
//! | Tables 2–3 (local-vs-remote median gaps) | [`experiments::tables23`] |
//! | §4 headline claims (crossovers, worst medians) | [`experiments::headline`] |
//!
//! Figures render as text panels of paired box plots (response time + ping
//! per resolver, axis truncated at 600 ms as in the paper); tables render
//! via [`TextTable`] and can be exported with [`csv`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod csv;
pub mod experiments;
pub mod export;
pub mod figure;
pub mod health_report;
pub mod load_sweep;
pub mod metrics_export;
pub mod reuse_ablation;
pub mod sketch_report;
pub mod table;

pub use analysis::{Dataset, VantageGroup};
pub use figure::{FigurePanel, FigureRow, AXIS_MAX_MS};
pub use load_sweep::{LoadClass, LoadSweep, LoadSweepRow};
pub use metrics_export::{metrics_csv, metrics_json};
pub use reuse_ablation::{ReuseAblation, ReuseAblationRow};
pub use table::TextTable;
