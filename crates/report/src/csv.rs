//! Minimal CSV output (RFC 4180 quoting) for exporting regenerated table
//! and figure data to external plotting tools.

/// Escapes one CSV field.
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A CSV document under construction.
#[derive(Debug, Default, Clone)]
pub struct Csv {
    lines: Vec<String>,
}

impl Csv {
    /// Starts a document with a header row.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut c = Csv::default();
        c.row(header);
        c
    }

    /// Appends a row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let line: Vec<String> = cells.into_iter().map(|c| field(c.as_ref())).collect();
        self.lines.push(line.join(","));
        self
    }

    /// Number of rows including the header.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when not even a header exists.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The finished document (CRLF line endings per RFC 4180).
    pub fn render(&self) -> String {
        let mut out = self.lines.join("\r\n");
        out.push_str("\r\n");
        out
    }
}

/// Parses a CSV document (quoted fields, embedded commas/newlines/quotes).
pub fn parse(doc: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut cell = String::new();
    let mut chars = doc.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                c => cell.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut cell)),
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                c => cell.push(c),
            }
        }
    }
    if !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_round_trip() {
        let mut c = Csv::new(["resolver", "median_ms"]);
        c.row(["dns.google", "17.5"]);
        let doc = c.render();
        let rows = parse(&doc);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["dns.google", "17.5"]);
    }

    #[test]
    fn quoting_round_trips() {
        let mut c = Csv::new(["a"]);
        c.row(["with,comma"]);
        c.row(["with\"quote"]);
        c.row(["with\nnewline"]);
        let rows = parse(&c.render());
        assert_eq!(rows[1][0], "with,comma");
        assert_eq!(rows[2][0], "with\"quote");
        assert_eq!(rows[3][0], "with\nnewline");
    }

    #[test]
    fn crlf_line_endings() {
        let c = Csv::new(["x"]);
        assert!(c.render().ends_with("\r\n"));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn parse_handles_trailing_unterminated_row() {
        let rows = parse("a,b\r\n1,2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }
}
