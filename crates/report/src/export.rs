//! Machine-readable export: every regenerated experiment as a JSON document
//! (using the measurement tool's own JSON model), so external tooling can
//! consume the reproduction without parsing text tables.

use measure::json::Json;
use netsim::Region;

use crate::analysis::Dataset;
use crate::experiments::{availability, cdfs, figures, headline, tables23};

fn f(v: f64) -> Json {
    Json::Float(v)
}

/// The availability experiment as JSON.
pub fn availability_json(dataset: &Dataset) -> Json {
    let r = availability::run(dataset);
    Json::object([
        ("successes", Json::Int(r.successes as i64)),
        ("errors", Json::Int(r.errors as i64)),
        ("error_rate", f(r.error_rate())),
        ("connection_error_share", f(r.connection_error_share)),
        (
            "dominant_error",
            r.dominant_error
                .clone()
                .map(Json::Str)
                .unwrap_or(Json::Null),
        ),
        (
            "mostly_unavailable",
            Json::Array(
                r.mostly_unavailable
                    .iter()
                    .cloned()
                    .map(Json::Str)
                    .collect(),
            ),
        ),
    ])
}

/// One figure (all four panels) as JSON: per-resolver medians and quartiles.
pub fn figure_json(dataset: &Dataset, region: Region) -> Json {
    let panels = figures::figure(dataset, region)
        .into_iter()
        .map(|panel| {
            let rows = panel
                .rows
                .iter()
                .map(|row| {
                    let mut pairs = vec![
                        ("resolver", Json::Str(row.resolver.clone())),
                        ("mainstream", Json::Bool(row.mainstream)),
                    ];
                    match &row.response {
                        Some(b) => {
                            pairs.push(("median_ms", f(b.summary.median)));
                            pairs.push(("q1_ms", f(b.summary.q1)));
                            pairs.push(("q3_ms", f(b.summary.q3)));
                            pairs.push(("samples", Json::Int(b.summary.count as i64)));
                        }
                        None => pairs.push(("median_ms", Json::Null)),
                    }
                    match &row.ping {
                        Some(b) => pairs.push(("ping_median_ms", f(b.summary.median))),
                        None => pairs.push(("ping_median_ms", Json::Null)),
                    }
                    Json::object(pairs)
                })
                .collect();
            Json::object([
                ("vantage", Json::Str(panel.title)),
                ("rows", Json::Array(rows)),
            ])
        })
        .collect();
    Json::object([
        ("region", Json::Str(region.to_string())),
        ("panels", Json::Array(panels)),
    ])
}

fn gap_rows_json(rows: &[tables23::GapRow], local: &str, remote: &str) -> Json {
    Json::Array(
        rows.iter()
            .map(|r| {
                Json::object([
                    ("resolver", Json::Str(r.resolver.clone())),
                    (
                        match local {
                            "seoul" => "seoul_ms",
                            _ => "frankfurt_ms",
                        },
                        f(r.local_ms),
                    ),
                    (
                        match remote {
                            "seoul" => "seoul_ms",
                            _ => "frankfurt_ms",
                        },
                        f(r.remote_ms),
                    ),
                    ("gap_ms", f(r.gap_ms())),
                ])
            })
            .collect(),
    )
}

/// Tables 2 and 3 as JSON.
pub fn tables_json(dataset: &Dataset) -> Json {
    Json::object([
        (
            "table2_asia",
            gap_rows_json(&tables23::table2(dataset), "seoul", "frankfurt"),
        ),
        (
            "table3_europe",
            gap_rows_json(&tables23::table3(dataset), "frankfurt", "seoul"),
        ),
    ])
}

/// The headline findings as JSON.
pub fn headline_json(dataset: &Dataset) -> Json {
    let h = headline::run(dataset);
    Json::object([
        (
            "mainstream_advantage_ms",
            Json::Array(
                h.mainstream_advantage_ms
                    .iter()
                    .map(|(v, gap)| {
                        Json::object([("vantage", Json::Str(v.clone())), ("gap_ms", f(*gap))])
                    })
                    .collect(),
            ),
        ),
        ("he_wins_at_home", Json::Bool(h.he_wins_at_home)),
        ("controld_wins_at_ohio", Json::Bool(h.controld_wins_at_ohio)),
        (
            "brahma_wins_at_frankfurt",
            Json::Bool(h.brahma_wins_at_frankfurt),
        ),
        ("alidns_wins_at_seoul", Json::Bool(h.alidns_wins_at_seoul)),
        (
            "worst_medians",
            Json::Array(
                h.worst_medians
                    .iter()
                    .map(|(v, r, m)| {
                        Json::object([
                            ("vantage", Json::Str(v.clone())),
                            ("resolver", Json::Str(r.clone())),
                            ("median_ms", f(*m)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// CDF comparisons as JSON.
pub fn cdfs_json(dataset: &Dataset) -> Json {
    Json::Array(
        cdfs::run(dataset)
            .into_iter()
            .map(|cmp| {
                Json::object([
                    ("vantage", Json::Str(cmp.vantage.clone())),
                    (
                        "ks_distance",
                        cmp.ks_distance().map(f).unwrap_or(Json::Null),
                    ),
                    (
                        "median_gap_ms",
                        cmp.median_gap_ms().map(f).unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect(),
    )
}

/// Everything, as one document keyed by experiment id.
pub fn all_experiments_json(dataset: &Dataset) -> Json {
    Json::object([
        ("availability", availability_json(dataset)),
        (
            "figure2_north_america",
            figure_json(dataset, Region::NorthAmerica),
        ),
        ("figure3_europe", figure_json(dataset, Region::Europe)),
        ("figure4_asia", figure_json(dataset, Region::Asia)),
        ("tables", tables_json(dataset)),
        ("headline", headline_json(dataset)),
        ("cdf_comparison", cdfs_json(dataset)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn dataset() -> Dataset {
        let mut entries = catalog::resolvers::mainstream();
        for h in [
            "ordns.he.net",
            "freedns.controld.com",
            "dns.brahma.world",
            "dns.alidns.com",
            "doh.ffmuc.net",
            "dns0.eu",
            "open.dns0.eu",
            "kids.dns0.eu",
            "dns.njal.la",
            "antivirus.bebasid.com",
            "dns.twnic.tw",
            "dnslow.me",
            "jp.tiar.app",
            "public.dns.iij.jp",
        ] {
            entries.push(catalog::resolvers::find(h).unwrap());
        }
        Dataset::new(
            Campaign::with_resolvers(CampaignConfig::quick(71, 6), entries)
                .run()
                .records,
        )
    }

    #[test]
    fn all_experiments_serialise_and_parse_back() {
        let d = dataset();
        let doc = all_experiments_json(&d);
        let text = doc.to_string_compact();
        let back = measure::json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Spot fields.
        assert!(back.get("availability").unwrap().get("successes").is_some());
        assert_eq!(
            back.get("headline")
                .unwrap()
                .get("he_wins_at_home")
                .unwrap()
                .as_bool(),
            Some(true)
        );
    }

    #[test]
    fn figure_json_has_four_panels_with_rows() {
        let d = dataset();
        let fig = figure_json(&d, Region::Asia);
        let panels = fig.get("panels").unwrap().as_array().unwrap();
        assert_eq!(panels.len(), 4);
        let rows = panels[0].get("rows").unwrap().as_array().unwrap();
        assert!(!rows.is_empty());
        assert!(rows[0].get("resolver").is_some());
        assert!(rows[0].get("median_ms").is_some());
    }

    #[test]
    fn tables_json_round_trips_values() {
        let d = dataset();
        let t = tables_json(&d);
        let t2 = t.get("table2_asia").unwrap().as_array().unwrap();
        assert_eq!(t2.len(), 5);
        for row in t2 {
            let gap = row.get("gap_ms").unwrap().as_f64().unwrap();
            assert!(gap > 0.0, "Asia rows are faster from Seoul");
        }
    }

    #[test]
    fn availability_json_fields() {
        let d = dataset();
        let a = availability_json(&d);
        let rate = a.get("error_rate").unwrap().as_f64().unwrap();
        assert!((0.0..0.3).contains(&rate));
        assert!(a.get("connection_error_share").unwrap().as_f64().unwrap() > 0.3);
    }
}
