//! Sketch-backed campaign summary tables.
//!
//! Unlike the [`crate::analysis::Dataset`] path, which holds every
//! [`measure::ProbeRecord`] in memory, these tables render straight from
//! the bounded-memory [`CampaignAggregates`] a sharded longitudinal run
//! maintains — one availability ledger and two latency sketches per
//! (vantage, resolver) pair, regardless of how many probes the campaign
//! accumulated. Quantiles come from the sketch's fixed bucket histogram,
//! so a multi-month campaign reports p50/p95 without ever re-reading its
//! JSONL stream.

use measure::{AggregateCell, CampaignAggregates};

use crate::table::TextTable;

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    }
}

fn fmt_pct(cell: &AggregateCell) -> String {
    format!("{:.1}%", cell.availability.availability() * 100.0)
}

fn push_row(table: &mut TextTable, label: &str, cell: &AggregateCell) {
    table.row([
        label.to_string(),
        cell.probes().to_string(),
        fmt_pct(cell),
        fmt_ms(cell.response.mean()),
        fmt_ms(cell.response.quantile(0.5)),
        fmt_ms(cell.response.quantile(0.95)),
        fmt_ms(cell.ping.quantile(0.5)),
    ]);
}

fn summary_table(groups: &[(&'static str, AggregateCell)], label: &str) -> TextTable {
    let mut table = TextTable::new([
        label, "probes", "avail", "mean ms", "p50 ms", "p95 ms", "ping p50",
    ]);
    for (name, cell) in groups {
        push_row(&mut table, name, cell);
    }
    table
}

/// Per-resolver availability and latency summary, one row per resolver in
/// stable hostname order, with an `overall` footer row.
pub fn resolver_table(aggregates: &CampaignAggregates) -> TextTable {
    let mut table = summary_table(&aggregates.by_resolver(), "resolver");
    push_row(&mut table, "overall", &aggregates.overall());
    table
}

/// Per-vantage availability and latency summary, one row per vantage in
/// stable label order.
pub fn vantage_table(aggregates: &CampaignAggregates) -> TextTable {
    summary_table(&aggregates.by_vantage(), "vantage")
}

/// Renders both summary tables as a single report section.
pub fn render(aggregates: &CampaignAggregates) -> String {
    format!(
        "== by resolver ==\n{}\n== by vantage ==\n{}",
        resolver_table(aggregates).render(),
        vantage_table(aggregates).render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn aggregates(seed: u64) -> CampaignAggregates {
        let entries = ["dns.google", "dns.quad9.net", "doh.ffmuc.net"]
            .into_iter()
            .filter_map(catalog::resolvers::find)
            .collect();
        let c = Campaign::with_resolvers(CampaignConfig::quick(seed, 2), entries);
        let result = c.run();
        CampaignAggregates::of(&c, &result.records)
    }

    #[test]
    fn resolver_table_has_one_row_per_resolver_plus_overall() {
        let table = resolver_table(&aggregates(7));
        assert_eq!(table.len(), 4);
        let text = table.render();
        assert!(text.contains("dns.google"));
        assert!(text.contains("overall"));
    }

    #[test]
    fn vantage_table_covers_all_seven_vantages() {
        assert_eq!(vantage_table(&aggregates(7)).len(), 7);
    }

    #[test]
    fn render_contains_both_sections() {
        let text = render(&aggregates(7));
        assert!(text.contains("== by resolver =="));
        assert!(text.contains("== by vantage =="));
    }
}
