//! The reuse-ablation table: response time as a function of how the
//! probe's transport came to exist — cold handshake, session resumption,
//! or a kept-alive pooled connection.
//!
//! The paper's methodology is cold-only: every probe pays the full
//! connection setup its protocol demands. A session-enabled campaign
//! (`CampaignConfig::with_session`) interleaves cold, resumed and reused
//! probes on a seeded schedule and stamps each record with its
//! [`measure::ConnectionMode`]; this table aggregates those records per
//! (protocol, mode) and reports probe counts, availability, p50/p99 of
//! successful response times, and the median connection-setup cost
//! (connect + TLS legs) — making the ablation's claim quantitative: DoH
//! warm starts save the TCP and TLS rounds, DoQ 0-RTT saves every connect
//! round, and reused connections save the setup entirely.
//!
//! Records from cold-only campaigns carry no mode and count as cold, so a
//! legacy baseline campaign can feed the same table as the warm runs.

use std::collections::BTreeMap;

use measure::{ConnectionMode, ProbeOutcome, ProbeRecord, Protocol};

use crate::table::TextTable;

/// One (protocol, mode) cell of the ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseAblationRow {
    /// Protocol the campaign probed.
    pub protocol: Protocol,
    /// How these probes' transports came to exist.
    pub mode: ConnectionMode,
    /// Probes aggregated into this cell.
    pub probes: usize,
    /// Fraction of probes that succeeded.
    pub availability: f64,
    /// Median successful response time, ms (`None` if nothing succeeded).
    pub p50_ms: Option<f64>,
    /// 99th percentile, ms.
    pub p99_ms: Option<f64>,
    /// Median connection-setup cost (connect + TLS legs), ms.
    pub setup_p50_ms: Option<f64>,
}

/// Accumulates campaign results across protocols and connection modes.
#[derive(Debug, Default)]
pub struct ReuseAblation {
    cells: BTreeMap<(&'static str, ConnectionMode), Cell>,
}

#[derive(Debug, Default)]
struct Cell {
    protocol: Option<Protocol>,
    probes: usize,
    ok: usize,
    latencies: Vec<f64>,
    setups: Vec<f64>,
}

impl ReuseAblation {
    /// An empty ablation.
    pub fn new() -> Self {
        ReuseAblation::default()
    }

    /// Folds in one campaign's records. Records without a stamped mode
    /// (cold-only or pre-session campaigns) count as cold, so the legacy
    /// baseline and the warm runs aggregate into the same table.
    pub fn add_campaign(&mut self, records: &[ProbeRecord]) {
        for r in records {
            let mode = r.conn_mode.unwrap_or(ConnectionMode::Cold);
            let cell = self.cells.entry((r.protocol.label(), mode)).or_default();
            cell.protocol = Some(r.protocol);
            cell.probes += 1;
            if let ProbeOutcome::Success { timings, .. } = &r.outcome {
                cell.ok += 1;
                cell.latencies.push(timings.total().as_millis_f64());
                cell.setups
                    .push((timings.connect + timings.tls_handshake).as_millis_f64());
            }
        }
    }

    /// The aggregated rows, ordered by (protocol label, mode): cold, then
    /// resumed, then reused within each protocol.
    pub fn rows(&self) -> Vec<ReuseAblationRow> {
        self.cells
            .iter()
            .map(|(&(_, mode), cell)| {
                let quantile = |sorted: &[f64], q: f64| -> Option<f64> {
                    if sorted.is_empty() {
                        return None;
                    }
                    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
                    Some(sorted[idx])
                };
                let mut lat = cell.latencies.clone();
                lat.sort_by(f64::total_cmp);
                let mut setup = cell.setups.clone();
                setup.sort_by(f64::total_cmp);
                ReuseAblationRow {
                    // detlint:allow(unwrap, a cell only exists once a record set its protocol)
                    protocol: cell.protocol.expect("cell has records"),
                    mode,
                    probes: cell.probes,
                    availability: cell.ok as f64 / cell.probes.max(1) as f64,
                    p50_ms: quantile(&lat, 0.50),
                    p99_ms: quantile(&lat, 0.99),
                    setup_p50_ms: quantile(&setup, 0.50),
                }
            })
            .collect()
    }

    /// The rows of one mode across protocols (e.g. all cold baselines).
    pub fn mode_rows(&self, mode: ConnectionMode) -> Vec<ReuseAblationRow> {
        self.rows().into_iter().filter(|r| r.mode == mode).collect()
    }

    /// Renders the ablation as a [`TextTable`].
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "Protocol",
            "Mode",
            "Probes",
            "Avail %",
            "p50 ms",
            "p99 ms",
            "setup p50 ms",
        ]);
        let ms = |v: Option<f64>| match v {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        };
        for r in self.rows() {
            t.row([
                r.protocol.label().to_string(),
                r.mode.label().to_string(),
                r.probes.to_string(),
                format!("{:.2}", 100.0 * r.availability),
                ms(r.p50_ms),
                ms(r.p99_ms),
                ms(r.setup_p50_ms),
            ]);
        }
        t
    }

    /// Renders the table with its section heading — the form the golden
    /// fixture pins.
    pub fn render(&self) -> String {
        format!(
            "Reuse ablation: response time by connection mode\n\n{}",
            self.table().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::ResolverEntry;
    use measure::{Campaign, CampaignConfig, SessionConfig};

    fn entries() -> Vec<ResolverEntry> {
        ["dns.google", "dns.quad9.net", "doh.ffmuc.net"]
            .into_iter()
            .map(|h| catalog::resolvers::find(h).unwrap())
            .collect()
    }

    fn session_records(protocol: Protocol) -> Vec<ProbeRecord> {
        let mut config = CampaignConfig::quick(4, 3).with_session(SessionConfig::interleaved(0.3));
        config.probe.protocol = protocol;
        Campaign::with_resolvers(config, entries()).run().records
    }

    #[test]
    fn warm_modes_beat_cold_per_protocol() {
        let mut ablation = ReuseAblation::new();
        for protocol in [Protocol::DoH, Protocol::DoT, Protocol::DoQ] {
            ablation.add_campaign(&session_records(protocol));
        }
        let rows = ablation.rows();
        // Every protocol must show a cold baseline and at least one warm
        // mode, and every warm median must beat its cold median: warm
        // starts skip handshake rounds.
        for protocol in [Protocol::DoH, Protocol::DoT, Protocol::DoQ] {
            let of = |mode| {
                rows.iter()
                    .find(|r| r.protocol == protocol && r.mode == mode)
                    .cloned()
            };
            let cold = of(ConnectionMode::Cold).expect("cold baseline present");
            let warm: Vec<_> = [ConnectionMode::Resumed, ConnectionMode::Reused]
                .into_iter()
                .filter_map(of)
                .collect();
            assert!(!warm.is_empty(), "{protocol:?} never went warm: {rows:?}");
            for w in warm {
                assert!(
                    w.p50_ms.unwrap() < cold.p50_ms.unwrap(),
                    "{protocol:?} {:?} p50 {:?} !< cold {:?}",
                    w.mode,
                    w.p50_ms,
                    cold.p50_ms
                );
                assert!(
                    w.setup_p50_ms.unwrap() < cold.setup_p50_ms.unwrap(),
                    "{protocol:?} {:?} setup not cheaper",
                    w.mode
                );
            }
        }
    }

    #[test]
    fn reused_saves_entire_setup() {
        let mut ablation = ReuseAblation::new();
        ablation.add_campaign(&session_records(Protocol::DoH));
        let reused = ablation
            .mode_rows(ConnectionMode::Reused)
            .into_iter()
            .next()
            .expect("DoH pool produced reused probes");
        assert_eq!(
            reused.setup_p50_ms,
            Some(0.0),
            "a pooled connection pays no connect or TLS leg"
        );
    }

    #[test]
    fn cold_only_records_count_as_cold() {
        let mut config = CampaignConfig::quick(4, 2);
        config.probe.protocol = Protocol::DoH;
        let records = Campaign::with_resolvers(config, entries()).run().records;
        let mut ablation = ReuseAblation::new();
        ablation.add_campaign(&records);
        let rows = ablation.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].mode, ConnectionMode::Cold);
        assert_eq!(rows[0].probes, records.len());
    }

    #[test]
    fn table_renders_all_modes() {
        let mut ablation = ReuseAblation::new();
        ablation.add_campaign(&session_records(Protocol::DoQ));
        let rendered = ablation.render();
        assert!(rendered.contains("Reuse ablation"));
        assert!(rendered.contains("cold"));
        assert!(rendered.contains("resumed"));
    }
}
