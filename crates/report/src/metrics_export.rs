//! Exports an [`obs::MetricsSnapshot`] as JSON and CSV.
//!
//! Both exports walk the snapshot's cells in their canonical (resolver,
//! vantage, protocol) order, so two same-seed campaigns export
//! byte-identical documents.

use std::collections::BTreeMap;

use measure::json::Json;
use obs::{Histogram, MetricsSnapshot, Phase, LATENCY_BUCKETS_MS};

use crate::csv::Csv;

fn histogram_json(h: &Histogram) -> Json {
    Json::object([
        ("count", Json::Int(h.count() as i64)),
        ("sum_ms", Json::Float(h.sum())),
        ("mean_ms", Json::Float(h.mean())),
        ("p50_ms", Json::Float(h.quantile(0.50))),
        ("p95_ms", Json::Float(h.quantile(0.95))),
        (
            "buckets",
            Json::Array(
                h.bucket_counts()
                    .iter()
                    .map(|&c| Json::Int(c as i64))
                    .collect(),
            ),
        ),
    ])
}

/// The whole snapshot as one JSON document: bucket bounds once at the top,
/// then one entry per cell with counters, error tallies, and the response /
/// ping / per-phase histograms.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> Json {
    let cells = snapshot
        .cells
        .iter()
        .map(|cell| {
            let m = &cell.metrics;
            let errors: BTreeMap<String, Json> = m
                .errors
                .iter()
                .map(|(&label, &n)| (label.to_string(), Json::Int(n as i64)))
                .collect();
            let phases: BTreeMap<String, Json> = Phase::ALL
                .iter()
                .map(|&p| (p.name().to_string(), histogram_json(&m.phase_ms[p.index()])))
                .collect();
            Json::object([
                ("resolver", Json::Str(cell.key.resolver.clone())),
                ("vantage", Json::Str(cell.key.vantage.clone())),
                ("protocol", Json::Str(cell.key.protocol.clone())),
                ("probes", Json::Int(m.probes.get() as i64)),
                ("successes", Json::Int(m.successes.get() as i64)),
                ("cache_hits", Json::Int(m.cache_hits.get() as i64)),
                ("errors", Json::Object(errors)),
                ("response_ms", histogram_json(&m.response_ms)),
                ("ping_ms", histogram_json(&m.ping_ms)),
                ("phases", Json::Object(phases)),
                ("last_response_ms", Json::Float(m.last_response_ms.get())),
            ])
        })
        .collect();
    Json::object([
        (
            "buckets_ms",
            Json::Array(LATENCY_BUCKETS_MS.iter().map(|&b| Json::Float(b)).collect()),
        ),
        ("total_probes", Json::Int(snapshot.total_probes() as i64)),
        (
            "total_successes",
            Json::Int(snapshot.total_successes() as i64),
        ),
        ("cells", Json::Array(cells)),
    ])
}

/// One CSV row per cell: counters, error total, and summary statistics
/// (p50/p95/mean) for the response, ping and each phase histogram.
pub fn metrics_csv(snapshot: &MetricsSnapshot) -> Csv {
    let mut header = vec![
        "resolver".to_string(),
        "vantage".to_string(),
        "protocol".to_string(),
        "probes".to_string(),
        "successes".to_string(),
        "cache_hits".to_string(),
        "errors".to_string(),
        "response_p50_ms".to_string(),
        "response_p95_ms".to_string(),
        "response_mean_ms".to_string(),
        "ping_p50_ms".to_string(),
    ];
    for p in Phase::ALL {
        header.push(format!("{}_p50_ms", p.name()));
    }
    let mut csv = Csv::new(header);
    for cell in &snapshot.cells {
        let m = &cell.metrics;
        let mut row = vec![
            cell.key.resolver.clone(),
            cell.key.vantage.clone(),
            cell.key.protocol.clone(),
            m.probes.get().to_string(),
            m.successes.get().to_string(),
            m.cache_hits.get().to_string(),
            m.errors.values().sum::<u64>().to_string(),
            format!("{:.3}", m.response_ms.quantile(0.50)),
            format!("{:.3}", m.response_ms.quantile(0.95)),
            format!("{:.3}", m.response_ms.mean()),
            format!("{:.3}", m.ping_ms.quantile(0.50)),
        ];
        for p in Phase::ALL {
            row.push(format!("{:.3}", m.phase_ms[p.index()].quantile(0.50)));
        }
        csv.row(row);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn snapshot() -> MetricsSnapshot {
        let entries = ["dns.google", "dns.quad9.net", "doh.ffmuc.net"]
            .into_iter()
            .map(|h| catalog::resolvers::find(h).unwrap())
            .collect();
        Campaign::with_resolvers(CampaignConfig::quick(19, 3), entries)
            .run()
            .metrics()
    }

    #[test]
    fn json_parses_back_and_counts_match() {
        let snap = snapshot();
        let doc = metrics_json(&snap);
        let back = measure::json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("total_probes").unwrap().as_i64().unwrap() as u64,
            snap.total_probes()
        );
        let cells = back.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), snap.cells.len());
        let first = &cells[0];
        assert!(first.get("resolver").is_some());
        let phases = first.get("phases").unwrap();
        for p in Phase::ALL {
            assert!(phases.get(p.name()).is_some(), "missing phase {}", p.name());
        }
        // Bucket counts in each histogram sum to its count.
        let resp = first.get("response_ms").unwrap();
        let total: i64 = resp
            .get("buckets")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|b| b.as_i64().unwrap())
            .sum();
        assert_eq!(total, resp.get("count").unwrap().as_i64().unwrap());
    }

    #[test]
    fn csv_has_one_row_per_cell_and_phase_columns() {
        let snap = snapshot();
        let doc = metrics_csv(&snap).render();
        let rows = crate::csv::parse(&doc);
        assert_eq!(rows.len(), snap.cells.len() + 1);
        let header = &rows[0];
        assert_eq!(header.len(), 11 + Phase::COUNT);
        assert!(header.contains(&"tls_handshake_p50_ms".to_string()));
        // Every data row is full-width and starts with its cell key.
        for (row, cell) in rows[1..].iter().zip(&snap.cells) {
            assert_eq!(row.len(), header.len());
            assert_eq!(row[0], cell.key.resolver);
            assert_eq!(row[1], cell.key.vantage);
        }
    }

    #[test]
    fn same_snapshot_exports_identically() {
        let a = snapshot();
        let b = snapshot();
        assert_eq!(
            metrics_json(&a).to_string_compact(),
            metrics_json(&b).to_string_compact()
        );
        assert_eq!(metrics_csv(&a).render(), metrics_csv(&b).render());
    }
}
