//! Dataset views over campaign records: filtering by vantage group and
//! resolver, extracting response-time and ping series, medians.

use measure::{ProbeOutcome, ProbeRecord};
use netsim::Region;

/// A vantage-point grouping for analysis.
///
/// The paper aggregates its four home devices into one "U.S. Home Networks"
/// panel and keeps each EC2 instance separate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VantageGroup {
    /// All `home-*` devices.
    Home,
    /// A single vantage by label (e.g. `"ec2-ohio"`).
    Label(&'static str),
}

impl VantageGroup {
    /// Whether a record's vantage label belongs to this group.
    pub fn matches(&self, label: &str) -> bool {
        match self {
            VantageGroup::Home => label.starts_with("home-"),
            VantageGroup::Label(l) => label == *l,
        }
    }

    /// Human-readable panel title.
    pub fn title(&self) -> &'static str {
        match self {
            VantageGroup::Home => "U.S. Home Networks",
            VantageGroup::Label("ec2-ohio") => "Ohio EC2",
            VantageGroup::Label("ec2-frankfurt") => "Frankfurt EC2",
            VantageGroup::Label("ec2-seoul") => "Seoul EC2",
            VantageGroup::Label(l) => l,
        }
    }

    /// The four panels of each paper figure, in sub-figure order.
    pub fn panels() -> [VantageGroup; 4] {
        [
            VantageGroup::Home,
            VantageGroup::Label("ec2-ohio"),
            VantageGroup::Label("ec2-frankfurt"),
            VantageGroup::Label("ec2-seoul"),
        ]
    }
}

/// An analysable set of probe records.
#[derive(Debug)]
pub struct Dataset {
    /// The records.
    pub records: Vec<ProbeRecord>,
}

impl Dataset {
    /// Wraps campaign output.
    pub fn new(records: Vec<ProbeRecord>) -> Self {
        Dataset { records }
    }

    /// Distinct resolver hostnames present, sorted.
    pub fn resolvers(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .records
            .iter()
            .map(|r| r.resolver().to_string())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Records for one (group, resolver) cell.
    pub fn cell<'a>(
        &'a self,
        group: &'a VantageGroup,
        resolver: &'a str,
    ) -> impl Iterator<Item = &'a ProbeRecord> {
        self.records
            .iter()
            .filter(move |r| r.resolver() == resolver && group.matches(r.vantage()))
    }

    /// Successful end-to-end response times in milliseconds.
    pub fn response_series(&self, group: &VantageGroup, resolver: &str) -> Vec<f64> {
        self.cell(group, resolver)
            .filter_map(|r| r.outcome.response_time())
            .map(|d| d.as_millis_f64())
            .collect()
    }

    /// ICMP round-trip times in milliseconds (absent for ping-filtered
    /// resolvers).
    pub fn ping_series(&self, group: &VantageGroup, resolver: &str) -> Vec<f64> {
        self.cell(group, resolver)
            .filter_map(|r| r.ping)
            .map(|d| d.as_millis_f64())
            .collect()
    }

    /// Median response time for a cell, if any probe succeeded.
    pub fn median_response_ms(&self, group: &VantageGroup, resolver: &str) -> Option<f64> {
        edns_stats::median(&self.response_series(group, resolver))
    }

    /// Resolver hostnames the paper's figure for `region` plots: resolvers
    /// geolocated there, plus the mainstream reference set ("mainstream
    /// resolvers are shown in boldface across all three sub-figures").
    pub fn figure_rows(&self, region: Region) -> Vec<String> {
        let mut rows: Vec<String> = self
            .records
            .iter()
            .filter(|r| r.resolver_region == region || r.mainstream)
            .map(|r| r.resolver().to_string())
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Rows of a figure panel ordered by ascending median response time
    /// (resolvers with no successes sink to the bottom).
    pub fn panel_order(&self, region: Region, group: &VantageGroup) -> Vec<String> {
        let mut rows: Vec<(String, f64)> = self
            .figure_rows(region)
            .into_iter()
            .map(|r| {
                let m = self.median_response_ms(group, &r).unwrap_or(f64::INFINITY);
                (r, m)
            })
            .collect();
        rows.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        rows.into_iter().map(|(r, _)| r).collect()
    }

    /// Success / failure counts.
    pub fn availability(&self) -> edns_stats::Availability {
        let mut a = edns_stats::Availability::default();
        for r in &self.records {
            match &r.outcome {
                ProbeOutcome::Success { .. } => a.success(),
                ProbeOutcome::Failure { kind, .. } => a.error(kind.label()),
            }
        }
        a
    }

    /// Retry-layer outcome tallies: probes that failed at least once but
    /// recovered within their retry budget, and probes that exhausted it.
    /// Both are zero for datasets recorded with retries disabled, whose
    /// records carry no attempt accounting.
    pub fn retry_outcomes(&self) -> (u64, u64) {
        let mut recovered = 0u64;
        let mut exhausted = 0u64;
        for r in &self.records {
            if let Some(retry) = &r.retry {
                match &r.outcome {
                    ProbeOutcome::Success { .. } if retry.recovered() => recovered += 1,
                    ProbeOutcome::Failure { .. } if retry.exhausted() => exhausted += 1,
                    _ => {}
                }
            }
        }
        (recovered, exhausted)
    }

    /// Per-resolver availability ledger.
    pub fn availability_by_resolver(&self) -> edns_stats::AvailabilityLedger {
        let mut l = edns_stats::AvailabilityLedger::new();
        for r in &self.records {
            match &r.outcome {
                ProbeOutcome::Success { .. } => l.success(r.resolver()),
                ProbeOutcome::Failure { kind, .. } => l.error(r.resolver(), kind.label()),
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn dataset() -> Dataset {
        let entries = ["dns.google", "doh.ffmuc.net", "dns.alidns.com"]
            .into_iter()
            .map(|h| catalog::resolvers::find(h).unwrap())
            .collect();
        let result = Campaign::with_resolvers(CampaignConfig::quick(5, 4), entries).run();
        Dataset::new(result.records)
    }

    #[test]
    fn groups_match_labels() {
        assert!(VantageGroup::Home.matches("home-3"));
        assert!(!VantageGroup::Home.matches("ec2-ohio"));
        assert!(VantageGroup::Label("ec2-ohio").matches("ec2-ohio"));
        assert_eq!(VantageGroup::panels().len(), 4);
        assert_eq!(VantageGroup::Home.title(), "U.S. Home Networks");
    }

    #[test]
    fn series_extraction() {
        let d = dataset();
        let home = d.response_series(&VantageGroup::Home, "dns.google");
        // 4 home devices × 4 rounds × 3 domains, minus rare failures.
        assert!(home.len() > 40, "{}", home.len());
        assert!(home.iter().all(|&x| x > 0.0));
        let ping = d.ping_series(&VantageGroup::Label("ec2-ohio"), "dns.google");
        assert!(!ping.is_empty());
    }

    #[test]
    fn medians_reflect_distance() {
        let d = dataset();
        let ohio = &VantageGroup::Label("ec2-ohio");
        let google = d.median_response_ms(ohio, "dns.google").unwrap();
        let ffmuc = d.median_response_ms(ohio, "doh.ffmuc.net").unwrap();
        assert!(ffmuc > google, "Munich unicast {ffmuc} vs anycast {google}");
    }

    #[test]
    fn figure_rows_include_region_plus_mainstream() {
        let d = dataset();
        let rows = d.figure_rows(Region::Europe);
        assert!(rows.contains(&"doh.ffmuc.net".to_string()), "EU resolver");
        assert!(rows.contains(&"dns.google".to_string()), "mainstream ref");
        assert!(
            !rows.contains(&"dns.alidns.com".to_string()),
            "non-mainstream Asia resolver must not appear in the EU figure"
        );
    }

    #[test]
    fn panel_order_is_fastest_first() {
        let d = dataset();
        let order = d.panel_order(Region::Europe, &VantageGroup::Label("ec2-frankfurt"));
        let medians: Vec<f64> = order
            .iter()
            .map(|r| {
                d.median_response_ms(&VantageGroup::Label("ec2-frankfurt"), r)
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        for w in medians.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn availability_tallies() {
        let d = dataset();
        let a = d.availability();
        assert_eq!(a.total() as usize, d.records.len());
        let ledger = d.availability_by_resolver();
        assert!(ledger.get("dns.google").unwrap().availability() > 0.95);
    }
}
