//! Per-(resolver, day) health tables for longitudinal campaigns.
//!
//! Renders the flight recorder's [`measure::HealthSeries`] — the
//! bounded-memory per-day fold a sharded run maintains — as text tables:
//! one row per resolver-day with availability, error mix, and
//! response-time quantiles, plus a companion table of the drift findings
//! the detector raised against the trailing-window baseline. Rows come
//! out in the series' canonical (resolver hostname, day) order, so two
//! same-seed campaigns render byte-identical reports.

use measure::{DriftFinding, DriftKind, HealthRow};

use crate::table::TextTable;

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    }
}

fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// One row per (resolver, day): probe volume, availability, dominant
/// error class, and response-time mean/p50/p95 from the day's sketch.
pub fn health_table(rows: &[HealthRow]) -> TextTable {
    let mut table = TextTable::new([
        "resolver",
        "day",
        "probes",
        "avail",
        "mean ms",
        "p50 ms",
        "p95 ms",
        "top error",
    ]);
    for row in rows {
        let cell = &row.cell;
        table.row([
            row.resolver.to_string(),
            row.day.to_string(),
            cell.probes().to_string(),
            fmt_pct(cell.availability.availability()),
            fmt_ms(cell.response.mean()),
            fmt_ms(cell.response.quantile(0.5)),
            fmt_ms(cell.response.quantile(0.95)),
            cell.availability
                .dominant_error()
                .unwrap_or("-")
                .to_string(),
        ]);
    }
    table
}

/// One row per drift finding, in the detector's canonical (resolver,
/// day, kind) order: the flagged value against its trailing baseline.
pub fn drift_table(findings: &[DriftFinding]) -> TextTable {
    let mut table = TextTable::new(["resolver", "day", "finding", "value", "baseline"]);
    for f in findings {
        let (value, baseline) = match f.kind {
            DriftKind::AvailabilityBurn => (fmt_pct(f.value), fmt_pct(f.baseline)),
            DriftKind::LatencyDrift => (fmt_ms(Some(f.value)), fmt_ms(Some(f.baseline))),
            DriftKind::ErrorMixShift => (
                f.to_error.map(|l| l.to_string()).unwrap_or_default(),
                f.from_error.map(|l| l.to_string()).unwrap_or_default(),
            ),
        };
        table.row([
            f.resolver.to_string(),
            f.day.to_string(),
            f.kind.code().to_string(),
            value,
            baseline,
        ]);
    }
    table
}

/// Renders the health series and its drift findings as one report
/// section (a quiet campaign reports `no drift detected`).
pub fn render(rows: &[HealthRow], findings: &[DriftFinding]) -> String {
    let drift = if findings.is_empty() {
        "no drift detected\n".to_string()
    } else {
        drift_table(findings).render()
    };
    format!(
        "== health by resolver-day ==\n{}\n== drift findings ==\n{}",
        health_table(rows).render(),
        drift
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{detect_drift, Campaign, CampaignConfig, DriftConfig, HealthSeries};

    fn rows(seed: u64) -> Vec<HealthRow> {
        let entries = ["dns.google", "dns.quad9.net", "doh.ffmuc.net"]
            .into_iter()
            .filter_map(catalog::resolvers::find)
            .collect();
        let c = Campaign::with_resolvers(CampaignConfig::quick(seed, 2), entries);
        let result = c.run();
        HealthSeries::of(&c, &result.records).resolver_rows()
    }

    #[test]
    fn health_table_has_one_row_per_resolver_day() {
        let rows = rows(7);
        let table = health_table(&rows);
        assert_eq!(table.len(), rows.len());
        assert!(table.render().contains("dns.google"));
    }

    #[test]
    fn quiet_campaign_renders_no_drift() {
        let rows = rows(7);
        let findings = detect_drift(&rows, &DriftConfig::default());
        let text = render(&rows, &findings);
        assert!(text.contains("== health by resolver-day =="));
        assert!(text.contains("== drift findings =="));
        assert!(text.contains("no drift detected"));
    }

    #[test]
    fn drift_table_renders_every_finding_kind() {
        let f = |kind| DriftFinding {
            resolver: measure::Label::intern("dns.example"),
            day: 9,
            kind,
            value: 0.5,
            baseline: 1.0,
            from_error: Some(measure::Label::intern("connect_timeout")),
            to_error: Some(measure::Label::intern("tls_failure")),
        };
        let findings = [
            f(DriftKind::AvailabilityBurn),
            f(DriftKind::LatencyDrift),
            f(DriftKind::ErrorMixShift),
        ];
        let text = drift_table(&findings).render();
        assert!(text.contains("availability_burn"), "{text}");
        assert!(text.contains("p95_drift"), "{text}");
        assert!(text.contains("error_mix_shift"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("tls_failure"), "{text}");
    }
}
