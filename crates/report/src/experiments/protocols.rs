//! Protocol comparison: Do53 vs DoT vs DoH vs DoQ vs ODoH on identical
//! paths — the related-work axis (Zhu et al., Böttger et al., Hounsel et
//! al.) that the paper's released tool supports. Runs one campaign per
//! protocol with the same seed so path draws differ only by protocol
//! behaviour.

use measure::{Campaign, CampaignConfig, Protocol};

use crate::analysis::{Dataset, VantageGroup};
use crate::table::TextTable;

/// Median response time per (protocol, vantage group).
#[derive(Debug, Clone)]
pub struct ProtocolRow {
    /// The protocol.
    pub protocol: Protocol,
    /// `(vantage title, median ms)` per vantage group.
    pub medians: Vec<(String, f64)>,
}

/// The protocols compared, in cost order on cold connections.
pub const PROTOCOLS: [Protocol; 5] = [
    Protocol::Do53,
    Protocol::DoT,
    Protocol::DoH,
    Protocol::DoQ,
    Protocol::ODoH,
];

/// Runs the comparison over `hostnames` with `rounds` rounds per day.
pub fn run(seed: u64, rounds: u32, hostnames: &[&str]) -> Vec<ProtocolRow> {
    let entries: Vec<catalog::ResolverEntry> = hostnames
        .iter()
        .filter_map(|h| catalog::resolvers::find(h))
        .collect();
    PROTOCOLS
        .iter()
        .map(|&protocol| {
            let mut config = CampaignConfig::quick(seed, rounds);
            config.probe.protocol = protocol;
            let dataset = Dataset::new(
                Campaign::with_resolvers(config, entries.clone())
                    .run()
                    .records,
            );
            let medians = VantageGroup::panels()
                .iter()
                .filter_map(|g| {
                    let all: Vec<f64> = entries
                        .iter()
                        .filter_map(|e| dataset.median_response_ms(g, e.hostname))
                        .collect();
                    Some((g.title().to_string(), edns_stats::median(&all)?))
                })
                .collect();
            ProtocolRow { protocol, medians }
        })
        .collect()
}

/// Renders the comparison table.
pub fn render(seed: u64, rounds: u32, hostnames: &[&str]) -> String {
    let rows = run(seed, rounds, hostnames);
    let mut header = vec!["Protocol".to_string()];
    if let Some(first) = rows.first() {
        header.extend(first.medians.iter().map(|(v, _)| v.clone()));
    }
    let mut t = TextTable::new(header);
    for row in &rows {
        let mut cells = vec![row.protocol.label().to_string()];
        cells.extend(row.medians.iter().map(|(_, m)| format!("{m:.1}")));
        t.row(cells);
    }
    format!(
        "Median cold-connection response time (ms) by protocol, over {} resolvers:\n\n{}",
        hostnames.len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SET: [&str; 3] = ["dns.google", "dns.quad9.net", "security.cloudflare-dns.com"];

    #[test]
    fn cold_protocol_ordering_matches_handshake_counts() {
        let rows = run(91, 4, &SET);
        assert_eq!(rows.len(), 5);
        let med = |p: Protocol, vantage: &str| -> f64 {
            rows.iter()
                .find(|r| r.protocol == p)
                .and_then(|r| {
                    r.medians
                        .iter()
                        .find(|(v, _)| v == vantage)
                        .map(|(_, m)| *m)
                })
                .unwrap()
        };
        for vantage in ["Ohio EC2", "Frankfurt EC2"] {
            let do53 = med(Protocol::Do53, vantage);
            let dot = med(Protocol::DoT, vantage);
            let doh = med(Protocol::DoH, vantage);
            let doq = med(Protocol::DoQ, vantage);
            // 1 RTT < 2 RTT (QUIC) < 3 RTT (TCP+TLS+query).
            assert!(do53 < doq, "{vantage}: do53 {do53} vs doq {doq}");
            assert!(doq < dot, "{vantage}: doq {doq} vs dot {dot}");
            // DoT and DoH both pay 3 flights; they should be close.
            assert!(
                (dot - doh).abs() < dot * 0.3,
                "{vantage}: dot {dot} vs doh {doh}"
            );
        }
    }

    #[test]
    fn render_lists_every_protocol() {
        let s = render(92, 2, &SET);
        for p in PROTOCOLS {
            assert!(s.contains(p.label()), "missing {p}");
        }
        assert!(s.contains("Ohio EC2"));
    }
}
