//! Table 1: "Modern browsers provide only a few choices for encrypted DNS
//! resolver, which we define as mainstream resolvers."

use catalog::browsers::{offers, Browser, Provider};

use crate::table::TextTable;

/// Regenerates Table 1 as a check-mark matrix.
pub fn run() -> TextTable {
    let mut header: Vec<String> = vec!["Browser".to_string()];
    header.extend(Provider::all().iter().map(|p| p.to_string()));
    let mut t = TextTable::new(header);
    for b in Browser::all() {
        let mut row = vec![b.to_string()];
        for p in Provider::all() {
            row.push(if offers(b, p) {
                "v".to_string()
            } else {
                String::new()
            });
        }
        t.row(row);
    }
    t
}

/// Renders the table with the paper's caption.
pub fn render() -> String {
    format!(
        "Table 1: Modern browsers provide only a few choices for encrypted DNS\n\
         resolver, which we define as mainstream resolvers.\n\n{}",
        run().render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_five_browsers_and_six_providers() {
        let t = run();
        assert_eq!(t.len(), 5);
        let s = t.render();
        assert!(s.contains("Cloudflare"));
        assert!(s.contains("OpenDNS"));
        assert!(s.contains("Brave"));
    }

    #[test]
    fn check_counts_match_paper() {
        let s = run().render();
        // 5 + 2 + 6 + 2 + 6 = 21 check marks in Table 1. Every check cell
        // is preceded by column-separator spaces; the only other 'v' (in
        // "Brave") is preceded by a letter.
        let checks = s.matches(" v").count();
        assert_eq!(checks, 21, "in table:\n{s}");
    }

    #[test]
    fn render_includes_caption() {
        assert!(render().starts_with("Table 1"));
    }
}
