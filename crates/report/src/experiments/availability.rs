//! The §4 availability analysis: "we received 5,098,281 successful
//! responses and 311,351 errors. The most common errors we received ...
//! were related to a failure to establish a connection."

use crate::analysis::Dataset;
use crate::table::TextTable;

/// The regenerated availability result.
#[derive(Debug, Clone)]
pub struct AvailabilityReport {
    /// Successful probes.
    pub successes: u64,
    /// Failed probes.
    pub errors: u64,
    /// Share of errors that are connection-establishment failures.
    pub connection_error_share: f64,
    /// The single most common error label.
    pub dominant_error: Option<String>,
    /// Probes that failed at least once but succeeded within their retry
    /// budget — transient faults the retry layer absorbed. These count as
    /// successes above; the paper's error tally only sees exhausted probes.
    pub transient_recovered: u64,
    /// Probes that burned every retry attempt and still failed.
    pub exhausted: u64,
    /// Resolvers with availability below 50 % from any vantage (the
    /// effectively-dead services).
    pub mostly_unavailable: Vec<String>,
}

impl AvailabilityReport {
    /// Overall probe error rate.
    pub fn error_rate(&self) -> f64 {
        let total = self.successes + self.errors;
        if total == 0 {
            0.0
        } else {
            self.errors as f64 / total as f64
        }
    }
}

/// Runs the availability analysis over a campaign dataset.
pub fn run(dataset: &Dataset) -> AvailabilityReport {
    let agg = dataset.availability();
    let conn_errors: u64 = agg
        .errors
        .iter()
        .filter(|(label, _)| {
            measure::ProbeErrorKind::from_label(label)
                .map(|k| k.is_connection_failure())
                .unwrap_or(false)
        })
        .map(|(_, &c)| c)
        .sum();
    let total_errors = agg.error_count();
    let ledger = dataset.availability_by_resolver();
    let (transient_recovered, exhausted) = dataset.retry_outcomes();
    AvailabilityReport {
        successes: agg.successes,
        errors: total_errors,
        transient_recovered,
        exhausted,
        connection_error_share: if total_errors == 0 {
            0.0
        } else {
            conn_errors as f64 / total_errors as f64
        },
        dominant_error: agg.dominant_error().map(str::to_string),
        mostly_unavailable: ledger
            .worst(0.5)
            .into_iter()
            .map(|(k, _)| k.to_string())
            .collect(),
    }
}

/// Renders the report with an error-class breakdown table.
pub fn render(dataset: &Dataset) -> String {
    let report = run(dataset);
    let agg = dataset.availability();
    let mut t = TextTable::new(["Error class", "Count", "Share of errors"]);
    let mut classes: Vec<(&String, &u64)> = agg.errors.iter().collect();
    classes.sort_by(|a, b| b.1.cmp(a.1));
    for (label, count) in classes {
        t.row([
            label.clone(),
            count.to_string(),
            format!(
                "{:.1}%",
                100.0 * *count as f64 / report.errors.max(1) as f64
            ),
        ]);
    }
    let retry_lines = if report.transient_recovered > 0 || report.exhausted > 0 {
        format!(
            "transient failures recovered by retry: {}\n\
             probes exhausting their retry budget: {}\n",
            report.transient_recovered, report.exhausted,
        )
    } else {
        String::new()
    };
    format!(
        "Availability (paper: 5,098,281 successes / 311,351 errors = 5.76% error rate,\n\
         dominated by connection-establishment failures)\n\n\
         successes: {}\nerrors:    {}\nerror rate: {:.2}%\n\
         connection-failure share of errors: {:.1}%\n\
         {}resolvers under 50% availability: {}\n\n{}",
        report.successes,
        report.errors,
        100.0 * report.error_rate(),
        100.0 * report.connection_error_share,
        retry_lines,
        report.mostly_unavailable.join(", "),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn dataset() -> Dataset {
        // Mix of reliability classes, including a mostly-dead resolver.
        let entries = [
            "dns.google",
            "dns.quad9.net",
            "doh.ffmuc.net",
            "dohtrial.att.net",
            "chewbacca.meganerd.nl",
        ]
        .into_iter()
        .map(|h| catalog::resolvers::find(h).unwrap())
        .collect();
        let result = Campaign::with_resolvers(CampaignConfig::quick(11, 12), entries).run();
        Dataset::new(result.records)
    }

    #[test]
    fn errors_dominated_by_connection_failures() {
        let report = run(&dataset());
        assert!(report.errors > 0);
        assert!(
            report.connection_error_share > 0.6,
            "connection failures should dominate: {}",
            report.connection_error_share
        );
    }

    #[test]
    fn dead_resolver_identified() {
        let report = run(&dataset());
        assert!(report
            .mostly_unavailable
            .contains(&"chewbacca.meganerd.nl".to_string()));
        assert!(!report
            .mostly_unavailable
            .contains(&"dns.google".to_string()));
    }

    #[test]
    fn render_mentions_the_papers_numbers() {
        let s = render(&dataset());
        assert!(s.contains("5,098,281"));
        assert!(s.contains("error rate"));
        assert!(s.contains("connect"));
    }

    #[test]
    fn error_rate_bounds() {
        let report = run(&dataset());
        let rate = report.error_rate();
        assert!(rate > 0.0 && rate < 0.5, "rate {rate}");
    }

    #[test]
    fn retries_disabled_report_no_retry_outcomes() {
        let report = run(&dataset());
        assert_eq!(report.transient_recovered, 0);
        assert_eq!(report.exhausted, 0);
        assert!(!render(&dataset()).contains("retry budget"));
    }

    #[test]
    fn retry_layer_distinguishes_recovered_from_exhausted() {
        let entries = [
            "dns.google",
            "dns.quad9.net",
            "doh.ffmuc.net",
            "dohtrial.att.net",
            "chewbacca.meganerd.nl",
        ]
        .into_iter()
        .map(|h| catalog::resolvers::find(h).unwrap())
        .collect();
        let config = CampaignConfig::quick(11, 12).with_default_faults();
        let result = Campaign::with_resolvers(config, entries).run();
        let d = Dataset::new(result.records);
        let report = run(&d);
        assert!(
            report.exhausted > 0,
            "a mostly-dead resolver must exhaust retry budgets"
        );
        assert_eq!(
            report.exhausted, report.errors,
            "with retries on, every surviving error exhausted its budget"
        );
        let rendered = render(&d);
        assert!(rendered.contains("recovered by retry"));
        assert!(rendered.contains("retry budget"));
    }
}
