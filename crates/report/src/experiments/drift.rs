//! Temporal drift: the paper re-measured for 1–3 days per month after its
//! main EC2 span "to ensure that resolver performance did not change
//! drastically since October 2023". This experiment compares per-resolver
//! medians between time windows and reports the drift.

use std::collections::BTreeMap;

use netsim::SimTime;

use crate::analysis::{Dataset, VantageGroup};

/// Median response times for one resolver in each time window.
#[derive(Debug, Clone)]
pub struct DriftRow {
    /// Resolver hostname.
    pub resolver: String,
    /// `(window_start_day, median_ms)` per window, in time order.
    pub window_medians: Vec<(u64, f64)>,
}

impl DriftRow {
    /// Largest relative change between consecutive windows
    /// (`|m2 − m1| / m1`), or `None` with fewer than two windows.
    pub fn max_relative_drift(&self) -> Option<f64> {
        let mut max: Option<f64> = None;
        for w in self.window_medians.windows(2) {
            let (_, m1) = w[0];
            let (_, m2) = w[1];
            if m1 > 0.0 {
                let d = (m2 - m1).abs() / m1;
                max = Some(max.map_or(d, |m| m.max(d)));
            }
        }
        max
    }
}

/// Splits the dataset's records into windows by the day boundaries in
/// `window_starts` (days since the campaign epoch; each window extends to
/// the next boundary) and computes medians per resolver per window for the
/// given vantage group.
pub fn drift(dataset: &Dataset, group: &VantageGroup, window_starts: &[u64]) -> Vec<DriftRow> {
    assert!(!window_starts.is_empty(), "need at least one window");
    let day = |t: SimTime| t.as_secs() / 86_400;
    let window_of = |t: SimTime| -> u64 {
        let d = day(t);
        let mut current = window_starts[0];
        for &s in window_starts {
            if d >= s {
                current = s;
            }
        }
        current
    };

    // resolver -> window -> samples
    let mut samples: BTreeMap<String, BTreeMap<u64, Vec<f64>>> = BTreeMap::new();
    for r in &dataset.records {
        if !group.matches(r.vantage()) {
            continue;
        }
        if let Some(rt) = r.outcome.response_time() {
            samples
                .entry(r.resolver().to_string())
                .or_default()
                .entry(window_of(r.at))
                .or_default()
                .push(rt.as_millis_f64());
        }
    }
    samples
        .into_iter()
        .map(|(resolver, windows)| DriftRow {
            resolver,
            window_medians: windows
                .into_iter()
                .filter_map(|(w, xs)| Some((w, edns_stats::median(&xs)?)))
                .collect(),
        })
        .collect()
}

/// Renders the drift table, flagging resolvers whose medians moved more
/// than `threshold` (fraction) between windows.
pub fn render(
    dataset: &Dataset,
    group: &VantageGroup,
    window_starts: &[u64],
    threshold: f64,
) -> String {
    let rows = drift(dataset, group, window_starts);
    let mut out = format!(
        "Temporal drift from {} across {} windows (threshold {:.0}%):\n\n",
        group.title(),
        window_starts.len(),
        threshold * 100.0
    );
    let mut stable = 0;
    let mut drifted = Vec::new();
    for row in &rows {
        match row.max_relative_drift() {
            Some(d) if d > threshold => drifted.push((row.resolver.clone(), d)),
            Some(_) => stable += 1,
            None => {}
        }
    }
    out.push_str(&format!(
        "{} resolvers stable, {} drifted beyond threshold\n",
        stable,
        drifted.len()
    ));
    drifted.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (resolver, d) in drifted.iter().take(10) {
        out.push_str(&format!("  {resolver:<42} {:+.0}%\n", d * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig, Span};

    /// A config with two separated EC2 windows, like the paper's main span
    /// plus a follow-up.
    fn two_window_config(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            domains: measure::standard_domains(),
            probe: measure::ProbeConfig::default(),
            faults: netsim::faults::FaultPlan::EMPTY,
            load: None,
            session: None,
            spans: vec![
                Span {
                    start_day: 0,
                    days: 3,
                    rounds_per_day: 4,
                    vantages: vec!["ec2-ohio", "ec2-frankfurt", "ec2-seoul"],
                },
                Span {
                    start_day: 120,
                    days: 2,
                    rounds_per_day: 4,
                    vantages: vec!["ec2-ohio", "ec2-frankfurt", "ec2-seoul"],
                },
            ],
        }
    }

    fn dataset() -> Dataset {
        let entries = [
            "dns.google",
            "dns.quad9.net",
            "doh.ffmuc.net",
            "dns.alidns.com",
        ]
        .into_iter()
        .map(|h| catalog::resolvers::find(h).unwrap())
        .collect();
        Dataset::new(
            Campaign::with_resolvers(two_window_config(81), entries)
                .run()
                .records,
        )
    }

    #[test]
    fn performance_is_stable_across_windows() {
        // The paper's motivation held: nothing changed drastically. Our
        // simulated deployments are stationary, so drift must be small.
        let d = dataset();
        let rows = drift(&d, &VantageGroup::Label("ec2-ohio"), &[0, 120]);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.window_medians.len(), 2, "{row:?}");
            let drift = row.max_relative_drift().unwrap();
            assert!(
                drift < 0.25,
                "{} drifted {:.0}%",
                row.resolver,
                drift * 100.0
            );
        }
    }

    #[test]
    fn windows_partition_records() {
        let d = dataset();
        let rows = drift(&d, &VantageGroup::Label("ec2-seoul"), &[0, 120]);
        for row in rows {
            let days: Vec<u64> = row.window_medians.iter().map(|(w, _)| *w).collect();
            assert_eq!(days, vec![0, 120]);
        }
    }

    #[test]
    fn render_reports_stability() {
        let d = dataset();
        let s = render(&d, &VantageGroup::Label("ec2-ohio"), &[0, 120], 0.25);
        assert!(s.contains("resolvers stable"));
        assert!(s.contains("Ohio EC2"));
    }

    #[test]
    fn single_window_has_no_drift() {
        let d = dataset();
        let rows = drift(&d, &VantageGroup::Label("ec2-ohio"), &[0]);
        for row in rows {
            assert_eq!(row.max_relative_drift(), None);
        }
    }
}
