//! Tables 2 and 3: the non-mainstream resolvers with the largest
//! median-response-time gap between a local and a remote vantage point.
//!
//! * Table 2 — Asia resolvers measured from Seoul (local) vs Frankfurt
//!   (remote): `antivirus.bebasid.com`, `dns.twnic.tw`, `dnslow.me`,
//!   `jp.tiar.app`, `public.dns.iij.jp`.
//! * Table 3 — Europe resolvers measured from Frankfurt (local) vs Seoul
//!   (remote): `doh.ffmuc.net`, `dns0.eu`, `open.dns0.eu`, `kids.dns0.eu`,
//!   `dns.njal.la`.

use crate::analysis::{Dataset, VantageGroup};
use crate::table::TextTable;

/// One row of a vantage-gap table.
#[derive(Debug, Clone, PartialEq)]
pub struct GapRow {
    /// Resolver hostname.
    pub resolver: String,
    /// Median response time from the local vantage point, ms.
    pub local_ms: f64,
    /// Median response time from the remote vantage point, ms.
    pub remote_ms: f64,
}

impl GapRow {
    /// remote − local gap.
    pub fn gap_ms(&self) -> f64 {
        self.remote_ms - self.local_ms
    }
}

/// The resolvers Table 2 lists (Asia).
pub const TABLE2_RESOLVERS: [&str; 5] = [
    "antivirus.bebasid.com",
    "dns.twnic.tw",
    "dnslow.me",
    "jp.tiar.app",
    "public.dns.iij.jp",
];

/// The resolvers Table 3 lists (Europe).
pub const TABLE3_RESOLVERS: [&str; 5] = [
    "doh.ffmuc.net",
    "dns0.eu",
    "open.dns0.eu",
    "kids.dns0.eu",
    "dns.njal.la",
];

fn gap_rows(
    dataset: &Dataset,
    resolvers: &[&str],
    local: &VantageGroup,
    remote: &VantageGroup,
) -> Vec<GapRow> {
    resolvers
        .iter()
        .filter_map(|r| {
            let local_ms = dataset.median_response_ms(local, r)?;
            let remote_ms = dataset.median_response_ms(remote, r)?;
            Some(GapRow {
                resolver: r.to_string(),
                local_ms,
                remote_ms,
            })
        })
        .collect()
}

/// Table 2 rows: Asia resolvers, Seoul local / Frankfurt remote.
pub fn table2(dataset: &Dataset) -> Vec<GapRow> {
    gap_rows(
        dataset,
        &TABLE2_RESOLVERS,
        &VantageGroup::Label("ec2-seoul"),
        &VantageGroup::Label("ec2-frankfurt"),
    )
}

/// Table 3 rows: Europe resolvers, Frankfurt local / Seoul remote.
pub fn table3(dataset: &Dataset) -> Vec<GapRow> {
    gap_rows(
        dataset,
        &TABLE3_RESOLVERS,
        &VantageGroup::Label("ec2-frankfurt"),
        &VantageGroup::Label("ec2-seoul"),
    )
}

/// Finds the `n` non-mainstream resolvers of `region` with the largest
/// vantage gap — the selection rule behind both tables, runnable over the
/// whole population rather than just the paper's published five.
pub fn largest_gaps(
    dataset: &Dataset,
    region: netsim::Region,
    local: &VantageGroup,
    remote: &VantageGroup,
    n: usize,
) -> Vec<GapRow> {
    let mut rows: Vec<GapRow> = dataset
        .records
        .iter()
        .filter(|r| r.resolver_region == region && !r.mainstream)
        .map(|r| r.resolver().to_string())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .filter_map(|resolver| {
            let local_ms = dataset.median_response_ms(local, &resolver)?;
            let remote_ms = dataset.median_response_ms(remote, &resolver)?;
            Some(GapRow {
                resolver,
                local_ms,
                remote_ms,
            })
        })
        .collect();
    rows.sort_by(|a, b| b.gap_ms().total_cmp(&a.gap_ms()));
    rows.truncate(n);
    rows
}

fn render_table(caption: &str, local_name: &str, remote_name: &str, rows: &[GapRow]) -> String {
    let mut t = TextTable::new([
        "Resolver",
        &format!("{local_name} (ms)"),
        &format!("{remote_name} (ms)"),
        "Gap (ms)",
    ]);
    for r in rows {
        t.row([
            r.resolver.clone(),
            format!("{:.0}", r.local_ms),
            format!("{:.0}", r.remote_ms),
            format!("{:.0}", r.gap_ms()),
        ]);
    }
    format!("{caption}\n\n{}", t.render())
}

/// Renders Table 2.
pub fn render_table2(dataset: &Dataset) -> String {
    render_table(
        "Table 2: Median DNS response times for non-mainstream resolvers (Asia).",
        "Seoul",
        "Frankfurt",
        &table2(dataset),
    )
}

/// Renders Table 3.
pub fn render_table3(dataset: &Dataset) -> String {
    render_table(
        "Table 3: Median DNS response times for non-mainstream resolvers (Europe).",
        "Frankfurt",
        "Seoul",
        &table3(dataset),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn dataset() -> Dataset {
        let mut hosts: Vec<&str> = TABLE2_RESOLVERS.to_vec();
        hosts.extend(TABLE3_RESOLVERS);
        let entries = hosts
            .into_iter()
            .map(|h| catalog::resolvers::find(h).unwrap())
            .collect();
        let result = Campaign::with_resolvers(CampaignConfig::quick(31, 8), entries).run();
        Dataset::new(result.records)
    }

    #[test]
    fn table2_local_beats_remote_for_every_row() {
        let rows = table2(&dataset());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.local_ms < r.remote_ms,
                "{}: Seoul {} should beat Frankfurt {}",
                r.resolver,
                r.local_ms,
                r.remote_ms
            );
        }
    }

    #[test]
    fn table3_local_beats_remote_for_every_row() {
        let rows = table3(&dataset());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.local_ms < r.remote_ms,
                "{}: Frankfurt {} should beat Seoul {}",
                r.resolver,
                r.local_ms,
                r.remote_ms
            );
        }
    }

    #[test]
    fn gaps_are_hundreds_of_ms() {
        // The paper's gaps range from ~200 to ~500 ms.
        for r in table2(&dataset()).iter().chain(&table3(&dataset())) {
            assert!(
                r.gap_ms() > 80.0,
                "{} gap only {:.0} ms",
                r.resolver,
                r.gap_ms()
            );
            assert!(
                r.gap_ms() < 1500.0,
                "{} gap {:.0} ms",
                r.resolver,
                r.gap_ms()
            );
        }
    }

    #[test]
    fn renders_contain_captions_and_rows() {
        let d = dataset();
        let s2 = render_table2(&d);
        assert!(s2.contains("Table 2"));
        assert!(s2.contains("dns.twnic.tw"));
        let s3 = render_table3(&d);
        assert!(s3.contains("Table 3"));
        assert!(s3.contains("dns0.eu"));
    }

    #[test]
    fn largest_gaps_selection_rule() {
        let d = dataset();
        let top = largest_gaps(
            &d,
            netsim::Region::Europe,
            &VantageGroup::Label("ec2-frankfurt"),
            &VantageGroup::Label("ec2-seoul"),
            3,
        );
        assert_eq!(top.len(), 3);
        // Sorted descending by gap.
        for w in top.windows(2) {
            assert!(w[0].gap_ms() >= w[1].gap_ms());
        }
    }
}
