//! ECDF comparison: mainstream versus non-mainstream response-time
//! distributions per vantage point — the distributional view behind the
//! paper's per-resolver box plots, with a Kolmogorov–Smirnov distance to
//! quantify the separation.

use edns_stats::Ecdf;

use crate::analysis::{Dataset, VantageGroup};

/// The two-population comparison for one vantage group.
#[derive(Debug)]
pub struct CdfComparison {
    /// Vantage title.
    pub vantage: String,
    /// ECDF of all mainstream response times.
    pub mainstream: Option<Ecdf>,
    /// ECDF of all non-mainstream response times.
    pub non_mainstream: Option<Ecdf>,
}

impl CdfComparison {
    /// KS distance between the two populations (None if either is empty).
    pub fn ks_distance(&self) -> Option<f64> {
        Some(
            self.mainstream
                .as_ref()?
                .ks_distance(self.non_mainstream.as_ref()?),
        )
    }

    /// Median gap (non-mainstream − mainstream), ms.
    pub fn median_gap_ms(&self) -> Option<f64> {
        Some(self.non_mainstream.as_ref()?.inverse(0.5) - self.mainstream.as_ref()?.inverse(0.5))
    }
}

/// Builds the comparison for one vantage group.
pub fn compare(dataset: &Dataset, group: &VantageGroup) -> CdfComparison {
    let mut mainstream = Vec::new();
    let mut non_mainstream = Vec::new();
    for r in &dataset.records {
        if !group.matches(r.vantage()) {
            continue;
        }
        if let Some(rt) = r.outcome.response_time() {
            if r.mainstream {
                mainstream.push(rt.as_millis_f64());
            } else {
                non_mainstream.push(rt.as_millis_f64());
            }
        }
    }
    CdfComparison {
        vantage: group.title().to_string(),
        mainstream: Ecdf::new(&mainstream),
        non_mainstream: Ecdf::new(&non_mainstream),
    }
}

/// Runs the comparison for every vantage group.
pub fn run(dataset: &Dataset) -> Vec<CdfComparison> {
    VantageGroup::panels()
        .iter()
        .map(|g| compare(dataset, g))
        .collect()
}

/// Renders ASCII CDF curves (percentile table) for each vantage group.
pub fn render(dataset: &Dataset) -> String {
    let mut out = String::from(
        "Response-time distributions: mainstream vs non-mainstream\n\
         (percentiles in ms; KS = max CDF separation)\n\n",
    );
    for cmp in run(dataset) {
        out.push_str(&format!("== {} ==\n", cmp.vantage));
        match (&cmp.mainstream, &cmp.non_mainstream) {
            (Some(m), Some(n)) => {
                out.push_str("        p10     p25     p50     p75     p90     p99\n");
                for (label, e) in [("mainstream", m), ("non-mainstr", n)] {
                    out.push_str(&format!(
                        "{label:<11}{:7.1} {:7.1} {:7.1} {:7.1} {:7.1} {:7.1}\n",
                        e.inverse(0.10),
                        e.inverse(0.25),
                        e.inverse(0.50),
                        e.inverse(0.75),
                        e.inverse(0.90),
                        e.inverse(0.99),
                    ));
                }
                out.push_str(&format!(
                    "KS distance {:.3}, median gap {:+.1} ms\n",
                    cmp.ks_distance().unwrap_or(f64::NAN),
                    cmp.median_gap_ms().unwrap_or(f64::NAN),
                ));
                out.push_str(&crate::figure::render_cdf_curves(
                    &[("mainstream", m), ("non-mainstream", n)],
                    crate::figure::AXIS_MAX_MS,
                    64,
                    10,
                ));
                out.push('\n');
            }
            _ => out.push_str("(insufficient data)\n\n"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn dataset() -> Dataset {
        let mut entries = catalog::resolvers::mainstream();
        for h in [
            "doh.ffmuc.net",
            "dns.bebasid.com",
            "helios.plan9-dns.com",
            "ordns.he.net",
        ] {
            entries.push(catalog::resolvers::find(h).unwrap());
        }
        Dataset::new(
            Campaign::with_resolvers(CampaignConfig::quick(61, 6), entries)
                .run()
                .records,
        )
    }

    #[test]
    fn mainstream_distribution_stochastically_dominates() {
        let d = dataset();
        for cmp in run(&d) {
            let gap = cmp.median_gap_ms().unwrap();
            assert!(
                gap > 0.0,
                "{}: non-mainstream median should be higher (gap {gap:+.1})",
                cmp.vantage
            );
            let ks = cmp.ks_distance().unwrap();
            assert!(
                ks > 0.2,
                "{}: populations should separate clearly (KS {ks:.3})",
                cmp.vantage
            );
        }
    }

    #[test]
    fn seoul_separation_is_the_largest() {
        // From Seoul, non-mainstream (mostly NA/EU unicast in this subset)
        // moves far right while anycast mainstream stays put.
        let d = dataset();
        let comps = run(&d);
        let gap = |title: &str| {
            comps
                .iter()
                .find(|c| c.vantage == title)
                .and_then(|c| c.median_gap_ms())
                .unwrap()
        };
        assert!(gap("Seoul EC2") > gap("Ohio EC2"));
    }

    #[test]
    fn render_contains_percentile_rows() {
        let d = dataset();
        let s = render(&d);
        assert!(s.contains("p50"));
        assert!(s.contains("KS distance"));
        assert!(s.contains("Seoul EC2"));
        assert!(s.matches("mainstream").count() >= 4);
    }
}
