//! One module per paper artifact, each regenerating its table or figure
//! from campaign output. See `DESIGN.md`'s per-experiment index.

pub mod availability;
pub mod cdfs;
pub mod drift;
pub mod figures;
pub mod headline;
pub mod protocols;
pub mod table1;
pub mod tables23;
