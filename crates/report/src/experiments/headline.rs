//! The §4 headline findings, verified as predicates over a campaign:
//!
//! * mainstream resolvers outperform non-mainstream ones from most vantage
//!   points, and the top-5 everywhere contains Quad9/Google/Cloudflare;
//! * `ordns.he.net` outperforms every mainstream resolver from the home
//!   devices;
//! * `freedns.controld.com` outperforms `dns.google` and
//!   `dns.cloudflare.com` from Ohio;
//! * `dns.brahma.world` outperforms `dns.cloudflare.com` from Frankfurt;
//! * `dns.alidns.com` outperforms `dns.quad9.net`, `dns.google` and
//!   `dns.cloudflare.com` from Seoul;
//! * worst-case medians per vantage (paper: home 399 ms, Ohio 270 ms,
//!   Frankfurt 380 ms, Seoul 569 ms).

use crate::analysis::{Dataset, VantageGroup};

/// The verified findings.
#[derive(Debug, Clone)]
pub struct Findings {
    /// Median of mainstream medians minus median of non-mainstream medians
    /// per vantage group (negative = mainstream faster), ms.
    pub mainstream_advantage_ms: Vec<(String, f64)>,
    /// `ordns.he.net` beats every mainstream resolver from home.
    pub he_wins_at_home: bool,
    /// `freedns.controld.com` beats Google and Cloudflare from Ohio.
    pub controld_wins_at_ohio: bool,
    /// `dns.brahma.world` beats Cloudflare from Frankfurt.
    pub brahma_wins_at_frankfurt: bool,
    /// `dns.alidns.com` beats Quad9, Google and Cloudflare from Seoul.
    pub alidns_wins_at_seoul: bool,
    /// Worst (resolver, median ms) per vantage group — capped to resolvers
    /// with ≥50 % success so dead services don't distort it.
    pub worst_medians: Vec<(String, String, f64)>,
}

fn median_of(dataset: &Dataset, group: &VantageGroup, resolver: &str) -> Option<f64> {
    dataset.median_response_ms(group, resolver)
}

fn beats(dataset: &Dataset, group: &VantageGroup, challenger: &str, incumbent: &str) -> bool {
    match (
        median_of(dataset, group, challenger),
        median_of(dataset, group, incumbent),
    ) {
        (Some(c), Some(i)) => c < i,
        _ => false,
    }
}

/// Computes all findings from a campaign dataset.
pub fn run(dataset: &Dataset) -> Findings {
    let mainstream: Vec<String> = dataset
        .records
        .iter()
        .filter(|r| r.mainstream)
        .map(|r| r.resolver().to_string())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let non_mainstream: Vec<String> = dataset
        .records
        .iter()
        .filter(|r| !r.mainstream)
        .map(|r| r.resolver().to_string())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut mainstream_advantage_ms = Vec::new();
    let mut worst_medians = Vec::new();
    let ledger = dataset.availability_by_resolver();
    for group in VantageGroup::panels() {
        let med_of_set = |set: &[String]| -> Option<f64> {
            let meds: Vec<f64> = set
                .iter()
                .filter_map(|r| median_of(dataset, &group, r))
                .collect();
            edns_stats::median(&meds)
        };
        if let (Some(ms), Some(nms)) = (med_of_set(&mainstream), med_of_set(&non_mainstream)) {
            mainstream_advantage_ms.push((group.title().to_string(), ms - nms));
        }
        // Worst median among live resolvers.
        let mut worst: Option<(String, f64)> = None;
        for r in mainstream.iter().chain(&non_mainstream) {
            let alive = ledger
                .get(r)
                .map(|a| a.availability() >= 0.5)
                .unwrap_or(false);
            if !alive {
                continue;
            }
            if let Some(m) = median_of(dataset, &group, r) {
                if worst.as_ref().map(|(_, w)| m > *w).unwrap_or(true) {
                    worst = Some((r.clone(), m));
                }
            }
        }
        if let Some((r, m)) = worst {
            worst_medians.push((group.title().to_string(), r, m));
        }
    }

    let home = VantageGroup::Home;
    let ohio = VantageGroup::Label("ec2-ohio");
    let frankfurt = VantageGroup::Label("ec2-frankfurt");
    let seoul = VantageGroup::Label("ec2-seoul");

    let he_wins_at_home = mainstream
        .iter()
        .all(|m| beats(dataset, &home, "ordns.he.net", m));
    let controld_wins_at_ohio = beats(dataset, &ohio, "freedns.controld.com", "dns.google")
        && beats(dataset, &ohio, "freedns.controld.com", "dns.cloudflare.com");
    let brahma_wins_at_frankfurt = beats(
        dataset,
        &frankfurt,
        "dns.brahma.world",
        "dns.cloudflare.com",
    );
    let alidns_wins_at_seoul = beats(dataset, &seoul, "dns.alidns.com", "dns.quad9.net")
        && beats(dataset, &seoul, "dns.alidns.com", "dns.google")
        && beats(dataset, &seoul, "dns.alidns.com", "dns.cloudflare.com");

    Findings {
        mainstream_advantage_ms,
        he_wins_at_home,
        controld_wins_at_ohio,
        brahma_wins_at_frankfurt,
        alidns_wins_at_seoul,
        worst_medians,
    }
}

/// Renders the findings against the paper's claims.
pub fn render(dataset: &Dataset) -> String {
    let f = run(dataset);
    let mut out = String::from("Headline findings (paper §4):\n\n");
    out.push_str(
        "Mainstream-vs-non-mainstream median gap per vantage (negative = mainstream faster):\n",
    );
    for (v, gap) in &f.mainstream_advantage_ms {
        out.push_str(&format!("  {v}: {gap:+.1} ms\n"));
    }
    out.push_str(&format!(
        "\nordns.he.net beats all mainstream from home:        {} (paper: yes)\n\
         freedns.controld.com beats Google+Cloudflare (Ohio): {} (paper: yes)\n\
         dns.brahma.world beats Cloudflare (Frankfurt):       {} (paper: yes)\n\
         dns.alidns.com beats Quad9+Google+Cloudflare (Seoul): {} (paper: yes)\n\n",
        f.he_wins_at_home,
        f.controld_wins_at_ohio,
        f.brahma_wins_at_frankfurt,
        f.alidns_wins_at_seoul
    ));
    out.push_str("Worst live-resolver median per vantage (paper: home 399 ms, Ohio 270 ms, Frankfurt 380 ms, Seoul 569 ms):\n");
    for (v, r, m) in &f.worst_medians {
        out.push_str(&format!("  {v}: {r} at {m:.0} ms\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn dataset() -> Dataset {
        // All mainstream entries plus the four crossover resolvers plus a
        // spread of ordinary non-mainstream ones.
        let mut entries = catalog::resolvers::mainstream();
        for h in [
            "ordns.he.net",
            "freedns.controld.com",
            "dns.brahma.world",
            "dns.alidns.com",
            "doh.ffmuc.net",
            "dns.bebasid.com",
            "helios.plan9-dns.com",
            "dns.njal.la",
            "public.dns.iij.jp",
        ] {
            entries.push(catalog::resolvers::find(h).unwrap());
        }
        let result = Campaign::with_resolvers(CampaignConfig::quick(41, 10), entries).run();
        Dataset::new(result.records)
    }

    #[test]
    fn all_four_crossovers_reproduce() {
        let f = run(&dataset());
        assert!(f.he_wins_at_home, "ordns.he.net should win from home");
        assert!(
            f.controld_wins_at_ohio,
            "freedns.controld.com should win from Ohio"
        );
        assert!(
            f.brahma_wins_at_frankfurt,
            "dns.brahma.world should beat Cloudflare from Frankfurt"
        );
        assert!(
            f.alidns_wins_at_seoul,
            "dns.alidns.com should win from Seoul"
        );
    }

    #[test]
    fn mainstream_is_faster_in_the_median_everywhere() {
        let f = run(&dataset());
        assert_eq!(f.mainstream_advantage_ms.len(), 4);
        for (vantage, gap) in &f.mainstream_advantage_ms {
            assert!(
                *gap < 0.0,
                "mainstream should be faster from {vantage}: gap {gap:+.1} ms"
            );
        }
    }

    #[test]
    fn worst_medians_are_remote_unicast_resolvers() {
        let f = run(&dataset());
        assert_eq!(f.worst_medians.len(), 4);
        for (vantage, resolver, median) in &f.worst_medians {
            assert!(
                *median > 100.0,
                "worst median from {vantage} should be slow: {resolver} {median:.0}"
            );
            // Never a mainstream anycast resolver.
            assert!(
                !catalog::resolvers::find(resolver).unwrap().mainstream,
                "worst from {vantage} is mainstream {resolver}?!"
            );
        }
    }

    #[test]
    fn render_reports_all_claims() {
        let s = render(&dataset());
        assert!(s.contains("ordns.he.net"));
        assert!(s.contains("true"));
        assert!(s.contains("Worst live-resolver median"));
    }
}
