//! Figures 1–4: per-region panels of paired response-time / ping box plots
//! from each vantage point.
//!
//! * Figure 1 — North-America resolvers from the Ohio EC2 instance (the
//!   paper's headline figure; identical to Figure 2b).
//! * Figure 2 — North-America resolvers from all four vantage groups.
//! * Figure 3 — Europe resolvers from all four vantage groups.
//! * Figure 4 — Asia resolvers from all four vantage groups.
//!
//! Each panel plots the region's resolvers plus the mainstream reference
//! set, fastest median first.

use edns_stats::BoxPlot;
use netsim::Region;

use crate::analysis::{Dataset, VantageGroup};
use crate::figure::{FigurePanel, FigureRow};

/// Builds one panel: `region`'s resolvers (plus mainstream) as seen from
/// `group`.
pub fn panel(dataset: &Dataset, region: Region, group: &VantageGroup) -> FigurePanel {
    // BTreeSet, not HashSet: only membership is tested today, but an ordered
    // set keeps any future iteration deterministic for free (detlint hash-iter).
    let mainstream: std::collections::BTreeSet<String> = dataset
        .records
        .iter()
        .filter(|r| r.mainstream)
        .map(|r| r.resolver().to_string())
        .collect();
    let rows = dataset
        .panel_order(region, group)
        .into_iter()
        .map(|resolver| {
            let response =
                BoxPlot::of(resolver.clone(), &dataset.response_series(group, &resolver));
            let ping = BoxPlot::of(resolver.clone(), &dataset.ping_series(group, &resolver));
            FigureRow {
                mainstream: mainstream.contains(&resolver),
                resolver,
                response,
                ping,
            }
        })
        .collect();
    FigurePanel {
        title: format!("{region} resolvers — {}", group.title()),
        rows,
    }
}

/// Figure 1: North-America resolvers from Ohio.
pub fn figure1(dataset: &Dataset) -> FigurePanel {
    panel(
        dataset,
        Region::NorthAmerica,
        &VantageGroup::Label("ec2-ohio"),
    )
}

/// Figures 2–4: one panel per vantage group for the given region.
pub fn figure(dataset: &Dataset, region: Region) -> Vec<FigurePanel> {
    VantageGroup::panels()
        .iter()
        .map(|g| panel(dataset, region, g))
        .collect()
}

/// Renders a full figure (all four panels).
pub fn render(dataset: &Dataset, region: Region, width: usize) -> String {
    figure(dataset, region)
        .iter()
        .map(|p| p.render(width))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig};

    fn dataset() -> Dataset {
        let entries = [
            "dns.google",        // mainstream NA
            "dns.quad9.net",     // mainstream NA
            "ordns.he.net",      // NA non-mainstream anycast
            "doh.la.ahadns.net", // NA unicast
            "doh.ffmuc.net",     // EU unicast
            "dns.brahma.world",  // EU fast
            "dns.alidns.com",    // Asia anycast
            "dns.twnic.tw",      // Asia unicast
        ]
        .into_iter()
        .map(|h| catalog::resolvers::find(h).unwrap())
        .collect();
        let result = Campaign::with_resolvers(CampaignConfig::quick(21, 6), entries).run();
        Dataset::new(result.records)
    }

    #[test]
    fn figure1_contains_na_resolvers_plus_mainstream_only() {
        let d = dataset();
        let p = figure1(&d);
        let names: Vec<&str> = p.rows.iter().map(|r| r.resolver.as_str()).collect();
        assert!(names.contains(&"ordns.he.net"));
        assert!(names.contains(&"dns.google"));
        assert!(
            !names.contains(&"doh.ffmuc.net"),
            "EU resolver in NA figure"
        );
        assert!(
            !names.contains(&"dns.twnic.tw"),
            "Asia resolver in NA figure"
        );
    }

    #[test]
    fn panels_are_sorted_fastest_first() {
        let d = dataset();
        let p = figure1(&d);
        let medians: Vec<f64> = p
            .rows
            .iter()
            .map(|r| {
                r.response
                    .as_ref()
                    .map(|b| b.summary.median)
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        for w in medians.windows(2) {
            assert!(w[0] <= w[1], "panel not sorted: {medians:?}");
        }
    }

    #[test]
    fn four_panels_per_figure() {
        let d = dataset();
        let f3 = figure(&d, Region::Europe);
        assert_eq!(f3.len(), 4);
        assert!(f3[0].title.contains("Home"));
        assert!(f3[3].title.contains("Seoul"));
    }

    #[test]
    fn mainstream_rows_flagged() {
        let d = dataset();
        let p = figure1(&d);
        let g = p.rows.iter().find(|r| r.resolver == "dns.google").unwrap();
        assert!(g.mainstream);
        let he = p
            .rows
            .iter()
            .find(|r| r.resolver == "ordns.he.net")
            .unwrap();
        assert!(!he.mainstream);
    }

    #[test]
    fn remote_vantage_shifts_unicast_medians_right() {
        let d = dataset();
        let panels = figure(&d, Region::Europe);
        let med = |panel: &FigurePanel, name: &str| {
            panel
                .rows
                .iter()
                .find(|r| r.resolver == name)
                .and_then(|r| r.response.as_ref().map(|b| b.summary.median))
                .unwrap()
        };
        // doh.ffmuc.net (Munich unicast): fast from Frankfurt, slow from Seoul.
        let from_frankfurt = med(&panels[2], "doh.ffmuc.net");
        let from_seoul = med(&panels[3], "doh.ffmuc.net");
        assert!(
            from_seoul > from_frankfurt * 3.0,
            "Frankfurt {from_frankfurt} vs Seoul {from_seoul}"
        );
        // dns.google (anycast) stays tame from everywhere: its nearest
        // site is local (Frankfurt) or one short hop away (Tokyo for the
        // Seoul instance).
        let g_seoul = med(&panels[3], "dns.google");
        assert!(
            g_seoul < 120.0,
            "anycast should stay under ~120 ms from Seoul: {g_seoul}"
        );
        assert!(
            g_seoul < from_seoul / 3.0,
            "anycast {g_seoul} vs unicast {from_seoul}"
        );
    }

    #[test]
    fn render_produces_full_figure_text() {
        let d = dataset();
        let s = render(&d, Region::Asia, 70);
        assert!(s.contains("Asia resolvers"));
        assert!(s.contains("dns.alidns.com"));
        assert!(s.matches("===").count() >= 4);
    }
}
