//! The load-sweep table: tail latency and availability as a function of
//! offered load — the capacity dimension the poster's idle-resolver
//! methodology cannot see.
//!
//! A sweep runs the same campaign at a ladder of load multipliers
//! (`measure::LoadModel::with_multiplier`) and feeds each result in via
//! [`LoadSweep::add_point`]. Records are grouped into deployment classes
//! (production anycast vs midsize vs single-site hobbyist, from the
//! catalog profile); per (multiplier, class) the table reports p50/p99/
//! p999 of successful response times plus availability. The expected
//! shape — pinned by the golden fixture and asserted by the `load_sweep`
//! bench — is the paper's contrast restated as a capacity story: anycast
//! classes stay flat across the ladder while single-site classes degrade
//! monotonically and then shed.

use std::collections::BTreeMap;

use catalog::{ProfileClass, ResolverEntry};
use measure::{ProbeOutcome, ProbeRecord};

use crate::table::TextTable;

/// The deployment class a resolver's records aggregate under.
///
/// Ordered from most to least provisioned — the order rows render in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LoadClass {
    /// Production-grade anycast (the mainstream operators).
    ProductionAnycast,
    /// Competent mid-size deployments.
    Midsize,
    /// Single-site hobbyist / community boxes.
    SingleSite,
    /// ODoH targets behind a relay.
    OdohTarget,
}

impl LoadClass {
    /// Classifies a catalog entry.
    pub fn of(entry: &ResolverEntry) -> LoadClass {
        match entry.profile {
            ProfileClass::Production => LoadClass::ProductionAnycast,
            ProfileClass::Midsize => LoadClass::Midsize,
            ProfileClass::Hobbyist => LoadClass::SingleSite,
            ProfileClass::OdohTarget => LoadClass::OdohTarget,
        }
    }

    /// Human-readable row label.
    pub fn label(&self) -> &'static str {
        match self {
            LoadClass::ProductionAnycast => "production-anycast",
            LoadClass::Midsize => "midsize",
            LoadClass::SingleSite => "single-site",
            LoadClass::OdohTarget => "odoh-target",
        }
    }
}

/// One (multiplier, class) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSweepRow {
    /// The load multiplier this campaign ran at.
    pub multiplier: f64,
    /// The deployment class aggregated here.
    pub class: LoadClass,
    /// Probes issued against the class.
    pub probes: usize,
    /// Fraction of probes that succeeded.
    pub availability: f64,
    /// Median successful response time, ms (`None` if nothing succeeded).
    pub p50_ms: Option<f64>,
    /// 99th percentile, ms.
    pub p99_ms: Option<f64>,
    /// 99.9th percentile, ms.
    pub p999_ms: Option<f64>,
}

/// Accumulates campaign results across a ladder of load multipliers.
#[derive(Debug, Default)]
pub struct LoadSweep {
    rows: Vec<LoadSweepRow>,
}

impl LoadSweep {
    /// An empty sweep.
    pub fn new() -> Self {
        LoadSweep::default()
    }

    /// Folds in one campaign result, run at `multiplier`, over the given
    /// catalog entries. Appends one row per deployment class present, in
    /// class order (deterministic regardless of record order).
    pub fn add_point(
        &mut self,
        multiplier: f64,
        entries: &[ResolverEntry],
        records: &[ProbeRecord],
    ) {
        let class_of: BTreeMap<&str, LoadClass> = entries
            .iter()
            .map(|e| (e.hostname, LoadClass::of(e)))
            .collect();
        let mut probes: BTreeMap<LoadClass, usize> = BTreeMap::new();
        let mut ok: BTreeMap<LoadClass, usize> = BTreeMap::new();
        let mut latencies: BTreeMap<LoadClass, Vec<f64>> = BTreeMap::new();
        for r in records {
            let Some(&class) = class_of.get(r.resolver()) else {
                continue;
            };
            *probes.entry(class).or_default() += 1;
            if let ProbeOutcome::Success { .. } = r.outcome {
                *ok.entry(class).or_default() += 1;
            }
            if let Some(t) = r.outcome.response_time() {
                latencies.entry(class).or_default().push(t.as_millis_f64());
            }
        }
        for (class, &n) in &probes {
            let tails = latencies
                .get(class)
                .and_then(|l| edns_stats::tail_quantiles(l));
            self.rows.push(LoadSweepRow {
                multiplier,
                class: *class,
                probes: n,
                availability: ok.get(class).copied().unwrap_or(0) as f64 / n as f64,
                p50_ms: tails.map(|t| t.0),
                p99_ms: tails.map(|t| t.1),
                p999_ms: tails.map(|t| t.2),
            });
        }
    }

    /// The accumulated rows, in (insertion, class) order.
    pub fn rows(&self) -> &[LoadSweepRow] {
        &self.rows
    }

    /// The rows of one class, in insertion (multiplier-ladder) order.
    pub fn class_rows(&self, class: LoadClass) -> Vec<&LoadSweepRow> {
        self.rows.iter().filter(|r| r.class == class).collect()
    }

    /// Renders the sweep as a [`TextTable`].
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "Load x", "Class", "Probes", "Avail %", "p50 ms", "p99 ms", "p999 ms",
        ]);
        let ms = |v: Option<f64>| match v {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        };
        for r in &self.rows {
            t.row([
                format!("{:.2}", r.multiplier),
                r.class.label().to_string(),
                r.probes.to_string(),
                format!("{:.2}", 100.0 * r.availability),
                ms(r.p50_ms),
                ms(r.p99_ms),
                ms(r.p999_ms),
            ]);
        }
        t
    }

    /// Renders the table with its section heading — the form the golden
    /// fixture pins.
    pub fn render(&self) -> String {
        format!(
            "Load sweep: tail latency and availability vs offered load\n\n{}",
            self.table().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::{Campaign, CampaignConfig, LoadModel};

    fn entries() -> Vec<ResolverEntry> {
        ["dns.google", "doh.safesurfer.io", "doh.ffmuc.net"]
            .into_iter()
            .map(|h| catalog::resolvers::find(h).unwrap())
            .collect()
    }

    fn sweep_point(multiplier: f64) -> Vec<ProbeRecord> {
        let mut config = CampaignConfig::quick(11, 2);
        if multiplier > 0.0 {
            config = config.with_load(LoadModel::standard(11).with_multiplier(multiplier));
        }
        Campaign::with_resolvers(config, entries()).run().records
    }

    #[test]
    fn classes_cover_catalog() {
        let e = entries();
        assert_eq!(LoadClass::of(&e[0]), LoadClass::ProductionAnycast);
        assert_eq!(LoadClass::of(&e[2]), LoadClass::SingleSite);
        assert!(LoadClass::ProductionAnycast < LoadClass::SingleSite);
    }

    #[test]
    fn sweep_rows_are_deterministic_and_classed() {
        let mut sweep = LoadSweep::new();
        let records = sweep_point(0.0);
        sweep.add_point(0.0, &entries(), &records);
        let rows = sweep.rows();
        assert_eq!(rows.len(), 3, "one row per class present: {rows:?}");
        assert_eq!(rows[0].class, LoadClass::ProductionAnycast);
        assert_eq!(rows[1].class, LoadClass::Midsize);
        assert_eq!(rows[2].class, LoadClass::SingleSite);
        assert!(rows.iter().all(|r| r.probes > 0));
        assert!(rows[0].availability > 0.9, "production idle: {rows:?}");

        let mut again = LoadSweep::new();
        again.add_point(0.0, &entries(), &sweep_point(0.0));
        assert_eq!(sweep.rows(), again.rows(), "same inputs, same rows");
    }

    #[test]
    fn single_site_degrades_under_load_production_stays_flat() {
        // Below a site's admission cap nothing sheds, so the success set
        // is identical across multipliers and p99 shifts by exactly the
        // deterministic queueing delay; past the cap, availability
        // collapses. Compare the warm point (2x, near-saturated hobbyist
        // queue, no shedding yet) and the hot point (8x, deep overload).
        let mut sweep = LoadSweep::new();
        for m in [0.0, 2.0, 8.0] {
            let records = sweep_point(m);
            sweep.add_point(m, &entries(), &records);
        }
        let single: Vec<_> = sweep.class_rows(LoadClass::SingleSite);
        let idle_p99 = single[0].p99_ms.unwrap();
        let warm_p99 = single[1].p99_ms.unwrap();
        assert!(
            warm_p99 > idle_p99,
            "hobbyist p99 must degrade under queueing: {idle_p99} -> {warm_p99}"
        );
        assert!(
            single[2].availability < single[0].availability - 0.2,
            "saturated single-site must shed: {single:?}"
        );
        let prod: Vec<_> = sweep.class_rows(LoadClass::ProductionAnycast);
        let idle = prod[0].p99_ms.unwrap();
        let hot = prod[2].p99_ms.unwrap();
        assert!(
            (hot - idle).abs() < idle * 0.05,
            "production p99 must stay flat: {idle} -> {hot}"
        );
        assert!(prod[2].availability > 0.9, "production keeps serving");
    }

    #[test]
    fn table_renders_all_rows() {
        let mut sweep = LoadSweep::new();
        sweep.add_point(1.0, &entries(), &sweep_point(1.0));
        let rendered = sweep.render();
        assert!(rendered.contains("Load sweep"));
        assert!(rendered.contains("production-anycast"));
        assert!(rendered.contains("single-site"));
        assert_eq!(sweep.table().len(), 3);
    }
}
