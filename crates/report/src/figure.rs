//! Figure rendering: each paper figure panel is a column of resolvers, each
//! with paired box plots — DNS response time and ICMP ping time — on a
//! shared axis truncated at 600 ms, "since responses beyond this range will
//! not result in good application performance".

use edns_stats::BoxPlot;

/// The axis truncation the paper applies to its plots.
pub const AXIS_MAX_MS: f64 = 600.0;

/// One figure row: a resolver with its two distributions.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Resolver hostname.
    pub resolver: String,
    /// Bold in the paper (mainstream).
    pub mainstream: bool,
    /// Response-time box (absent when every probe failed).
    pub response: Option<BoxPlot>,
    /// Ping box (absent when the resolver filters ICMP).
    pub ping: Option<BoxPlot>,
}

/// One rendered panel (sub-figure).
#[derive(Debug, Clone)]
pub struct FigurePanel {
    /// Panel title, e.g. `"Ohio EC2"`.
    pub title: String,
    /// Rows in display order (fastest median first).
    pub rows: Vec<FigureRow>,
}

impl FigurePanel {
    /// Renders the panel as text: two lines per resolver (`R:` response,
    /// `P:` ping), axis from 0 to [`AXIS_MAX_MS`].
    pub fn render(&self, width: usize) -> String {
        let label_w = self
            .rows
            .iter()
            .map(|r| r.resolver.len() + 2)
            .max()
            .unwrap_or(10)
            .max(10);
        let mut out = String::new();
        out.push_str(&format!(
            "=== {} (axis 0..{} ms; M=median, ===box, |--| whiskers, o outliers) ===\n",
            self.title, AXIS_MAX_MS
        ));
        for row in &self.rows {
            let name = if row.mainstream {
                format!("**{}**", row.resolver)
            } else {
                row.resolver.clone()
            };
            match &row.response {
                Some(b) => {
                    out.push_str(&format!(
                        "{name:<label_w$} R [{}] med={:.1}ms\n",
                        b.render_row(0.0, AXIS_MAX_MS, width),
                        b.summary.median
                    ));
                }
                None => out.push_str(&format!("{name:<label_w$} R (no successful probes)\n")),
            }
            match &row.ping {
                Some(b) => out.push_str(&format!(
                    "{:<label_w$} P [{}] med={:.1}ms\n",
                    "",
                    b.render_row(0.0, AXIS_MAX_MS, width),
                    b.summary.median
                )),
                None => out.push_str(&format!("{:<label_w$} P (no ICMP replies)\n", "")),
            }
        }
        out
    }
}

/// Renders one or more ECDF curves as an ASCII plot: x = value (ms),
/// y = cumulative probability. Each curve is drawn with its own glyph.
pub fn render_cdf_curves(
    curves: &[(&str, &edns_stats::Ecdf)],
    x_max: f64,
    width: usize,
    height: usize,
) -> String {
    let width = width.max(20);
    let height = height.max(5);
    let glyphs = ['*', '+', 'o', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];

    for (ci, (_, ecdf)) in curves.iter().enumerate() {
        let glyph = glyphs[ci % glyphs.len()];
        // Indexing by col is deliberate: the row is computed per column.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let x = x_max * col as f64 / (width - 1) as f64;
            let p = ecdf.at(x);
            // Row 0 is the top (p = 1).
            let row = ((1.0 - p) * (height - 1) as f64).round() as usize;
            let row = row.min(height - 1);
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let p = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{p:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("     +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "      0 ms{}{x_max:.0} ms\n",
        " ".repeat(width.saturating_sub(10 + format!("{x_max:.0}").len()))
    ));
    for (ci, (label, _)) in curves.iter().enumerate() {
        out.push_str(&format!("      {} {label}\n", glyphs[ci % glyphs.len()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel() -> FigurePanel {
        let fast: Vec<f64> = (0..40).map(|i| 15.0 + (i % 7) as f64).collect();
        let slow: Vec<f64> = (0..40).map(|i| 180.0 + (i % 30) as f64 * 4.0).collect();
        FigurePanel {
            title: "Test Panel".into(),
            rows: vec![
                FigureRow {
                    resolver: "dns.google".into(),
                    mainstream: true,
                    response: BoxPlot::of("dns.google", &fast),
                    ping: BoxPlot::of("dns.google", &fast),
                },
                FigureRow {
                    resolver: "slow.example".into(),
                    mainstream: false,
                    response: BoxPlot::of("slow.example", &slow),
                    ping: None,
                },
                FigureRow {
                    resolver: "dead.example".into(),
                    mainstream: false,
                    response: None,
                    ping: None,
                },
            ],
        }
    }

    #[test]
    fn render_marks_mainstream_bold() {
        let s = panel().render(80);
        assert!(s.contains("**dns.google**"));
        assert!(s.contains("slow.example"));
        assert!(!s.contains("**slow.example**"));
    }

    #[test]
    fn render_handles_missing_data() {
        let s = panel().render(80);
        assert!(s.contains("(no ICMP replies)"));
        assert!(s.contains("(no successful probes)"));
    }

    #[test]
    fn medians_annotated() {
        let s = panel().render(80);
        assert!(s.contains("med="));
        assert!(s.contains("Test Panel"));
    }

    #[test]
    fn cdf_curves_render_with_legend_and_monotone_shape() {
        let fast: Vec<f64> = (0..100).map(|i| 10.0 + (i % 20) as f64).collect();
        let slow: Vec<f64> = (0..100).map(|i| 150.0 + (i % 60) as f64).collect();
        let ef = edns_stats::Ecdf::new(&fast).unwrap();
        let es = edns_stats::Ecdf::new(&slow).unwrap();
        let s = render_cdf_curves(&[("fast", &ef), ("slow", &es)], 300.0, 60, 12);
        assert!(s.contains("* fast"));
        assert!(s.contains("+ slow"));
        assert!(s.contains("1.00 |"));
        assert!(s.contains("0.00 |"));
        // The fast curve must reach the top (p=1) earlier (further left):
        let top_row = s.lines().next().unwrap();
        let fast_top = top_row.find('*');
        let slow_top = top_row.find('+');
        match (fast_top, slow_top) {
            (Some(f), Some(sl)) => assert!(f < sl, "{top_row}"),
            (Some(_), None) => {} // slow never reaches top within axis: fine
            other => panic!("unexpected top row {other:?}: {top_row}"),
        }
    }

    #[test]
    fn fast_box_sits_left_of_slow_box() {
        let s = panel().render(100);
        let lines: Vec<&str> = s.lines().collect();
        // Line 1: google response row; line 3: slow response row.
        let g = lines[1].find('M').unwrap();
        let sl = lines[3].find('M').unwrap();
        assert!(g < sl, "fast median marker should be further left");
    }
}
