//! Marker attributes for the detlint static-analysis pass.
//!
//! These attributes expand to nothing — they exist so that source code can
//! carry machine-checkable annotations that `cargo xtask lint` (the
//! `xtask` crate's *detlint* pass) understands. Keeping them as real
//! attributes (rather than comments) means the annotation moves with the
//! item through refactors and shows up in rustdoc.
//!
//! Only the built-in `proc_macro` crate is used: this workspace builds
//! with no crates.io access, so there is no `syn`/`quote` here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Marks a function as part of the allocation-free hot path.
///
/// The attribute itself is an identity transform — it does not change the
/// function at all. Its meaning is enforced by two independent layers:
///
/// * **statically** — detlint's `deny-alloc` rule rejects allocating
///   constructs (`format!`, `vec!`, `String::from`, `.to_string()`,
///   `.to_owned()`, `.clone()`, `Box::new`, …) anywhere in the body of an
///   annotated function;
/// * **dynamically** — the counting-allocator tests
///   (`crates/measure/tests/hot_path_alloc.rs`,
///   `crates/measure/tests/serialize_alloc.rs`, `crates/obs/tests/zero_alloc.rs`)
///   assert zero allocations at runtime for the same paths.
///
/// One-time capacity reservations (`Vec::with_capacity`,
/// `String::with_capacity`) are deliberately *not* rejected statically:
/// they are amortised setup, and the counting-allocator tests are the
/// authority on whether they stay off the per-record path.
#[proc_macro_attribute]
pub fn deny_alloc(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Marks a function as neutral with respect to the probe RNG stream.
///
/// The campaign's byte-identical-replay guarantee requires that the
/// fault layer, the load model and the journal never consume a draw from
/// the probe stream: an extra draw shifts every subsequent probe's
/// jitter, and the whole run diverges. Annotated functions must decide
/// via the hash-based splitmix path (`netsim::faults::hash_decision`,
/// `netsim::rng::derive_seed`) or a dedicated forked stream instead.
///
/// Like [`macro@deny_alloc`], the attribute is an identity transform.
/// Enforcement is static: detlint's transitive `rng-stream` rule rejects
/// any call path from an annotated function to a `SimRng` draw method
/// (`uniform`, `chance`, `exponential`, …), workspace-wide through the
/// call graph, unless a `detlint:allow(rng-stream, reason)` hatch
/// documents why the reached draw is not on the probe stream.
#[proc_macro_attribute]
pub fn rng_neutral(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
